//! Audit a synthetic component the way §IV-C audits ysoserial components:
//! build its CPG, search for chains, and score them against ground truth
//! and the PoC oracle.
//!
//! ```text
//! cargo run --example audit_component [component-name]
//! ```
//!
//! Defaults to `commons-colletions(3.2.1)` (the paper's spelling). Run with
//! `--list` to see all 26 Table IX components.

use tabby::prelude::*;
use tabby::workloads::{components, oracle, ChainClass};

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--list") {
        for c in components::all() {
            println!("{}", c.name);
        }
        return;
    }
    let name = arg.unwrap_or_else(|| "commons-colletions(3.2.1)".to_owned());
    let component = components::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown component {name:?}; try --list");
        std::process::exit(1);
    });

    println!("auditing {} — {}", component.name, component.notes);
    println!(
        "classes: {}, methods: {}",
        component.program.classes().len(),
        component.program.method_count()
    );

    let report = tabby::scan(&component.program, &ScanOptions::default());
    let chains = component.filter_chains(report.chains);
    println!(
        "\nCPG: {} nodes / {} edges; {} chain(s) pass the component filter\n",
        report.cpg.graph.node_count(),
        report.cpg.graph.edge_count(),
        chains.len()
    );

    let mut counts = [0usize; 3];
    for chain in &chains {
        let class = component.truth.classify(chain);
        let oracle_says = oracle::chain_is_effective(&component.program, &report.cpg, chain);
        let tag = match class {
            ChainClass::Known => "KNOWN  ",
            ChainClass::Unknown => "UNKNOWN",
            ChainClass::Fake => "FAKE   ",
        };
        counts[class as usize] += 1;
        println!(
            "[{tag}] oracle={} {} -> {} ({} hops)",
            if oracle_says { "effective " } else { "inert" },
            chain.source(),
            chain.sink(),
            chain.len()
        );
    }
    let eval = component.truth.evaluate(&chains);
    println!(
        "\nresult={} fake={} known={} unknown={}  FPR={:.1}%  FNR={:.1}%",
        eval.result,
        eval.fake,
        eval.known,
        eval.unknown,
        eval.fpr().unwrap_or(0.0),
        eval.fnr().unwrap_or(0.0),
    );
    if let Some(paper) = component.paper {
        println!(
            "paper (Table IX, Tabby columns): result={} fake={} known={} unknown={}",
            paper.tb.result, paper.tb.fake, paper.tb.known, paper.tb.unknown
        );
    }
}
