//! The full class-file pipeline: author a library in IR, compile it to
//! genuine `.class` bytes, parse + lift the bytes back (the Soot front-end
//! role), and scan the lifted program — demonstrating that detection works
//! from bytecode, not just from the authored IR.
//!
//! ```text
//! cargo run --example classfile_pipeline
//! ```

use tabby::classfile::parse_class;
use tabby::ir::compile::compile_program;
use tabby::prelude::*;
use tabby::workloads::jdk::add_jdk_model;

fn main() {
    // 1. Author: the JDK model (which contains the URLDNS chain) plus a
    //    one-class component.
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let mut cb = pb.class("com.example.Loader").serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let class_ty = cb.object_type("java.lang.Class");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("target", object.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let t = mb.fresh();
    mb.get_field(t, this, "com.example.Loader", "target", object.clone());
    let name = mb.fresh();
    mb.cast(name, string.clone(), t);
    let for_name = mb.sig("java.lang.Class", "forName", &[string.clone()], class_ty);
    let c = mb.fresh();
    mb.call_static(Some(c), for_name, &[name.into()]);
    mb.finish();
    cb.finish();
    let authored = pb.build();

    // 2. Compile to real .class bytes.
    let compiled = compile_program(&authored);
    let total: usize = compiled.iter().map(|(_, b)| b.len()).sum();
    println!(
        "compiled {} classes to {} bytes of class-file data",
        compiled.len(),
        total
    );
    for (name, bytes) in compiled.iter().take(3) {
        let cf = parse_class(bytes).expect("parseable");
        println!(
            "  {:50} {:5} bytes, constant pool {:3} entries",
            name,
            bytes.len(),
            cf.constant_pool.count()
        );
    }

    // 3. Lift the bytes back and scan.
    let blobs: Vec<Vec<u8>> = compiled.into_iter().map(|(_, b)| b).collect();
    let report = tabby::scan_class_bytes(&blobs, &ScanOptions::default()).expect("lift + scan");
    println!(
        "\n{} chain(s) found from lifted bytecode:",
        report.chains.len()
    );
    for chain in &report.chains {
        println!(
            "  [{}] {}",
            chain.sink_category,
            chain.signatures.join(" -> ")
        );
    }

    // Both the component chain and the JDK-resident URLDNS chain must
    // survive the compile → parse → lift round trip.
    assert!(report
        .chains
        .iter()
        .any(|c| c.source() == "com.example.Loader.readObject"
            && c.sink() == "java.lang.Class.forName"));
    assert!(report
        .chains
        .iter()
        .any(|c| c.source() == "java.util.HashMap.readObject"
            && c.sink() == "java.net.InetAddress.getByName"));
    println!("\nok: chains found from genuine class-file bytes");
}
