//! Quickstart: build the paper's Figure 1 program and find its gadget chain.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program models `EvilObjectA`/`EvilObjectB` exactly as Fig. 1 shows:
//! `readObject` restores `val1` and calls `val1.toString()`; if `val1` is an
//! `EvilObjectB`, its `toString()` executes `Runtime.exec(val2.toString())`
//! — the chain of Table I.

use tabby::prelude::*;

fn build_fig1() -> tabby::ir::Program {
    let mut pb = ProgramBuilder::new();

    // class EvilObjectA implements Serializable {
    //     Object val1;
    //     void readObject(ObjectInputStream is) { val1.toString(); }
    // }
    let mut cb = pb.class("example.EvilObjectA").serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("val1", object.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let val1 = mb.fresh();
    mb.get_field(val1, this, "example.EvilObjectA", "val1", object.clone());
    let to_string = mb.sig("java.lang.Object", "toString", &[], string.clone());
    mb.call_virtual(None, val1, to_string, &[]);
    mb.finish();
    cb.finish();

    // class EvilObjectB implements Serializable {
    //     Object val2;
    //     String toString() { Runtime.getRuntime().exec(val2.toString()); }
    // }
    let mut cb = pb.class("example.EvilObjectB").serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let runtime = cb.object_type("java.lang.Runtime");
    let process = cb.object_type("java.lang.Process");
    cb.field("val2", object.clone());
    let mut mb = cb.method("toString", vec![], string.clone());
    let this = mb.this();
    let val2 = mb.fresh();
    mb.get_field(val2, this, "example.EvilObjectB", "val2", object.clone());
    let ts = mb.sig("java.lang.Object", "toString", &[], string.clone());
    let cmd = mb.fresh();
    mb.call_virtual(Some(cmd), val2, ts, &[]);
    let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
    let rt = mb.fresh();
    mb.call_static(Some(rt), get_rt, &[]);
    let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], process);
    mb.call_virtual(None, rt, exec, &[cmd.into()]);
    mb.ret(mb.c_null());
    mb.finish();
    cb.finish();

    pb.build()
}

fn main() {
    let program = build_fig1();
    println!("== the program under audit (Jimple-style) ==\n");
    println!("{}", tabby::ir::printer::print_program(&program));

    let report = tabby::scan(&program, &ScanOptions::default());
    println!(
        "== {} gadget chain(s) found (CPG: {} nodes, {} edges) ==\n",
        report.chains.len(),
        report.cpg.graph.node_count(),
        report.cpg.graph.edge_count()
    );
    for (i, chain) in report.chains.iter().enumerate() {
        println!("--- chain #{} [{}] ---", i + 1, chain.sink_category);
        println!("{chain}\n");
    }
    assert!(
        report
            .chains
            .iter()
            .any(|c| c.source() == "example.EvilObjectA.readObject"
                && c.sink() == "java.lang.Runtime.exec"),
        "the Table I chain must be found"
    );
    println!("ok: the Table I chain was recovered");
}
