//! Custom graph queries over a persisted CPG — the workflow §II-B
//! motivates: semantic extraction happens once, then researchers iterate
//! with queries instead of re-analyzing the source.
//!
//! ```text
//! cargo run --example custom_query
//! ```
//!
//! This example builds the CPG of the JDK model, serializes it to JSON
//! (the "store it in the database" step), re-loads it, and runs three
//! custom queries: a sink inventory, a custom source→sink search
//! (`hashCode` entry points to SSRF sinks only), and a reachability probe.

use std::collections::HashSet;
use tabby::core::{AnalysisConfig, Cpg, CpgSchema};
use tabby::graph::{algo, Direction, Graph, NodePattern, Query, Value};
use tabby::pathfinder::{find_chains_raw, SearchConfig, SinkCatalog, TriggerCondition};
use tabby::workloads::jdk::add_jdk_model;
use tabby_ir::ProgramBuilder;

fn main() {
    // 1. Extract semantics once.
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    let mut cpg = Cpg::build(&program, AnalysisConfig::default());
    let sinks = SinkCatalog::paper().annotate(&mut cpg);
    println!(
        "CPG built: {} nodes, {} edges, {} sink method(s) annotated",
        cpg.graph.node_count(),
        cpg.graph.edge_count(),
        sinks.len()
    );

    // 2. Persist and re-load (the Neo4j round trip of the paper).
    let json = serde_json::to_string(&cpg.graph).expect("serialize CPG");
    println!("persisted CPG: {} bytes of JSON", json.len());
    let mut graph: Graph = serde_json::from_str(&json).expect("reload CPG");
    graph.rebuild_after_deserialize();
    let schema = CpgSchema::install(&mut graph);

    // 3a. Query: inventory of CALL edges by edge type.
    println!("\nedge histogram:");
    for (ty, count) in graph.edge_type_histogram() {
        println!("  {ty:10} {count}");
    }

    // 3b. Query: custom search — which hashCode entry points reach SSRF
    // sinks? (the URLDNS question, asked directly of the graph)
    let method_label = schema.method_label;
    let name_key = schema.name;
    let sources: HashSet<_> = graph
        .nodes_by(method_label, name_key, &Value::from("readObject"))
        .into_iter()
        .collect();
    let ssrf_sinks: Vec<_> = graph
        .nodes_by(method_label, name_key, &Value::from("getByName"))
        .into_iter()
        .map(|n| (n, TriggerCondition::from([1u16])))
        .collect();
    let categories = ssrf_sinks
        .iter()
        .map(|(n, _)| (*n, "SSRF".to_owned()))
        .collect();
    let chains = find_chains_raw(
        &graph,
        &schema,
        ssrf_sinks,
        categories,
        &sources,
        &SearchConfig::default(),
    );
    println!("\ncustom SSRF query found {} chain(s):", chains.len());
    for chain in &chains {
        println!("  {}", chain.signatures.join(" -> "));
    }
    assert!(
        chains
            .iter()
            .any(|c| c.source() == "java.util.HashMap.readObject"),
        "URLDNS must be reachable through the persisted graph"
    );

    // 3c. Declarative pattern query — which classes declare a method that
    // CALLs into java.net? (a Cypher-style MATCH over the reloaded graph)
    let class_name_key = schema.class_name;
    let rows = Query::new(NodePattern::label(method_label))
        .out(
            schema.call,
            NodePattern::label(method_label).filter(move |g, n| {
                g.node_prop(n, class_name_key)
                    .and_then(|v| v.as_str())
                    .map(|c| c.starts_with("java.net."))
                    .unwrap_or(false)
            }),
        )
        .run(&graph);
    println!(
        "\npattern query: {} CALL edge(s) into java.net.*:",
        rows.len()
    );
    for row in &rows {
        let describe = |n| {
            format!(
                "{}.{}",
                graph
                    .node_prop(n, class_name_key)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?"),
                graph
                    .node_prop(n, name_key)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
            )
        };
        println!("  {} -> {}", describe(row.first()), describe(row.end()));
    }
    assert!(!rows.is_empty());

    // 3d. Query: plain reachability — how much of the call graph does
    // HashMap.readObject touch?
    let ro = graph
        .nodes_by(method_label, name_key, &Value::from("readObject"))
        .into_iter()
        .find(|n| {
            graph
                .node_prop(*n, schema.class_name)
                .and_then(|v| v.as_str())
                == Some("java.util.HashMap")
        })
        .expect("HashMap.readObject node");
    let reach = algo::reachable(
        &graph,
        ro,
        &[
            (schema.call, Direction::Outgoing),
            (schema.alias, Direction::Both),
        ],
    );
    println!(
        "\nHashMap.readObject reaches {} method node(s) over CALL/ALIAS",
        reach.len()
    );
}
