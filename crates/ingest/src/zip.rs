//! In-house zip/jar container support: a central-directory reader with
//! hostile-input guards, and a writer used by the corpus generator and
//! the corruption tests.
//!
//! The reader trusts nothing: entry names are validated against zip-slip
//! shapes when the archive is opened, per-entry inflation is capped by
//! the caller's [`crate::IngestLimits`], declared compression ratios
//! beyond the budget are rejected *before* any inflation happens, and
//! every decompressed entry is CRC-checked against the central directory.
//! Zip64 archives (>65535 entries or >4 GiB members) are rejected with a
//! distinct error rather than misparsed — corpora that large are packed
//! as nested jars, which is also what real fat jars and wars do.
//!
//! The writer is intentionally *unvalidating*: tests use it to craft
//! archives with `../../evil.class` names, wrong CRCs, and genuine
//! ratio bombs, which the reader must then refuse.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::crc::crc32;
use crate::inflate::{inflate, InflateError};
use crate::IngestLimits;

const EOCD_SIG: u32 = 0x0605_4b50;
const CDIR_SIG: u32 = 0x0201_4b50;
const LOCAL_SIG: u32 = 0x0403_4b50;
/// EOCD fixed part is 22 bytes; the comment can add up to 65535 more.
const EOCD_SCAN_MAX: u64 = 22 + 65_535;

/// Structured failure opening or reading a zip archive. Every variant
/// names the entry where applicable so daemon clients can report exactly
/// which member of a corpus was hostile or corrupt.
#[derive(Debug)]
pub enum ZipError {
    /// No end-of-central-directory record — not a zip, or truncated
    /// before the EOCD.
    MissingEndOfCentralDirectory,
    /// The central directory is cut short or structurally invalid.
    TruncatedCentralDirectory(&'static str),
    /// Zip64 features (>65535 entries, >4 GiB members, multi-disk) are
    /// deliberately unsupported; pack large corpora as nested jars.
    Zip64Unsupported(&'static str),
    /// Entry uses traditional or strong encryption.
    Encrypted { name: String },
    /// Compression method other than stored (0) or DEFLATE (8).
    UnsupportedMethod { name: String, method: u16 },
    /// Entry name would escape the archive root when treated as a path.
    SlipPath { name: String },
    /// Declared uncompressed size exceeds the per-entry budget.
    EntryTooLarge { name: String, size: u64, limit: u64 },
    /// Declared compression ratio exceeds the bomb budget.
    RatioBomb {
        name: String,
        compressed: u64,
        inflated: u64,
        limit: u64,
    },
    /// The deflate stream was malformed or inflated past its declared
    /// size.
    Inflate { name: String, source: InflateError },
    /// Decompressed bytes do not match the central-directory CRC-32.
    CrcMismatch {
        name: String,
        expected: u32,
        actual: u32,
    },
    /// Stored entry whose compressed and uncompressed sizes disagree, a
    /// bad local-header signature, or similar structural damage.
    Malformed { name: String, what: &'static str },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ZipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipError::MissingEndOfCentralDirectory => {
                write!(f, "no end-of-central-directory record (not a zip, or truncated)")
            }
            ZipError::TruncatedCentralDirectory(what) => {
                write!(f, "truncated central directory: {what}")
            }
            ZipError::Zip64Unsupported(what) => {
                write!(f, "zip64 unsupported ({what}); pack large corpora as nested jars")
            }
            ZipError::Encrypted { name } => write!(f, "entry '{name}' is encrypted"),
            ZipError::UnsupportedMethod { name, method } => {
                write!(f, "entry '{name}' uses unsupported compression method {method}")
            }
            ZipError::SlipPath { name } => {
                write!(f, "entry '{name}' has a path-traversal (zip-slip) name")
            }
            ZipError::EntryTooLarge { name, size, limit } => write!(
                f,
                "entry '{name}' declares {size} bytes, over the {limit}-byte per-entry budget"
            ),
            ZipError::RatioBomb {
                name,
                compressed,
                inflated,
                limit,
            } => write!(
                f,
                "entry '{name}' declares a {compressed}->{inflated} byte expansion, over the {limit}:1 ratio budget (zip bomb?)"
            ),
            ZipError::Inflate { name, source } => {
                write!(f, "entry '{name}' failed to decompress: {source}")
            }
            ZipError::CrcMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "entry '{name}' CRC mismatch: central directory says {expected:#010x}, data hashes to {actual:#010x}"
            ),
            ZipError::Malformed { name, what } => write!(f, "entry '{name}' is malformed: {what}"),
            ZipError::Io(e) => write!(f, "archive I/O error: {e}"),
        }
    }
}

impl std::error::Error for ZipError {}

impl From<std::io::Error> for ZipError {
    fn from(e: std::io::Error) -> ZipError {
        ZipError::Io(e)
    }
}

/// One central-directory entry.
#[derive(Debug, Clone)]
pub struct ZipEntry {
    /// Entry name exactly as stored (forward-slash separated).
    pub name: String,
    /// 0 = stored, 8 = DEFLATE.
    pub method: u16,
    pub compressed_size: u64,
    pub uncompressed_size: u64,
    pub crc32: u32,
    /// Offset of the local file header.
    local_header_offset: u64,
}

impl ZipEntry {
    /// Directory entries carry no data.
    pub fn is_dir(&self) -> bool {
        self.name.ends_with('/')
    }
}

/// Rejects entry names that would escape the archive root if treated as
/// relative paths: absolute paths, `..` components, backslashes, drive
/// letters, and NUL bytes. We never extract to disk, but a corpus that
/// ships such names is hostile and the whole archive is refused.
pub fn validate_entry_name(name: &str) -> Result<(), &'static str> {
    if name.is_empty() {
        return Err("empty name");
    }
    if name.contains('\0') {
        return Err("NUL byte in name");
    }
    if name.contains('\\') {
        return Err("backslash in name");
    }
    if name.starts_with('/') {
        return Err("absolute path");
    }
    let bytes = name.as_bytes();
    if bytes.len() >= 2 && bytes[1] == b':' && bytes[0].is_ascii_alphabetic() {
        return Err("drive-letter path");
    }
    if name.split('/').any(|component| component == "..") {
        return Err("'..' path component");
    }
    Ok(())
}

/// Reads a whole archive's central directory up front, then serves entry
/// bodies on demand with all guards applied.
pub struct ZipReader<R: Read + Seek> {
    reader: R,
    entries: Vec<ZipEntry>,
}

fn le16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn le32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

impl<R: Read + Seek> ZipReader<R> {
    /// Parses the EOCD and central directory, validating every entry
    /// name and compression declaration. Returns a structured error on
    /// anything hostile or unsupported; nothing is decompressed yet.
    pub fn open(mut reader: R) -> Result<ZipReader<R>, ZipError> {
        let file_len = reader.seek(SeekFrom::End(0))?;
        let scan_len = file_len.min(EOCD_SCAN_MAX);
        if file_len < 22 {
            return Err(ZipError::MissingEndOfCentralDirectory);
        }
        reader.seek(SeekFrom::Start(file_len - scan_len))?;
        let mut tail = vec![0u8; scan_len as usize];
        reader.read_exact(&mut tail)?;
        // The EOCD signature is unique enough to scan for backwards; the
        // last occurrence that leaves room for the fixed record wins.
        let eocd_at = (0..=tail.len().saturating_sub(22))
            .rev()
            .find(|&i| le32(&tail, i) == EOCD_SIG)
            .ok_or(ZipError::MissingEndOfCentralDirectory)?;
        let eocd = &tail[eocd_at..];
        let disk_number = le16(eocd, 4);
        let cd_disk = le16(eocd, 6);
        if disk_number != 0 || cd_disk != 0 {
            return Err(ZipError::Zip64Unsupported("multi-disk archive"));
        }
        let entry_count = le16(eocd, 10);
        let cd_size = u64::from(le32(eocd, 12));
        let cd_offset = u64::from(le32(eocd, 16));
        if entry_count == 0xffff || cd_size == 0xffff_ffff || cd_offset == 0xffff_ffff {
            return Err(ZipError::Zip64Unsupported("zip64 end-of-central-directory"));
        }
        if cd_offset
            .checked_add(cd_size)
            .map_or(true, |end| end > file_len)
        {
            return Err(ZipError::TruncatedCentralDirectory(
                "directory extends past end of file",
            ));
        }
        reader.seek(SeekFrom::Start(cd_offset))?;
        let mut cd = vec![0u8; cd_size as usize];
        reader.read_exact(&mut cd)?;

        let mut entries = Vec::with_capacity(entry_count as usize);
        let mut at = 0usize;
        for _ in 0..entry_count {
            if at + 46 > cd.len() {
                return Err(ZipError::TruncatedCentralDirectory(
                    "entry header cut short",
                ));
            }
            if le32(&cd, at) != CDIR_SIG {
                return Err(ZipError::TruncatedCentralDirectory("bad entry signature"));
            }
            let flags = le16(&cd, at + 8);
            let method = le16(&cd, at + 10);
            let crc = le32(&cd, at + 16);
            let compressed_size = u64::from(le32(&cd, at + 20));
            let uncompressed_size = u64::from(le32(&cd, at + 24));
            let name_len = le16(&cd, at + 28) as usize;
            let extra_len = le16(&cd, at + 30) as usize;
            let comment_len = le16(&cd, at + 32) as usize;
            let local_header_offset = u64::from(le32(&cd, at + 42));
            if at + 46 + name_len > cd.len() {
                return Err(ZipError::TruncatedCentralDirectory("entry name cut short"));
            }
            let name = String::from_utf8_lossy(&cd[at + 46..at + 46 + name_len]).into_owned();
            if compressed_size == 0xffff_ffff
                || uncompressed_size == 0xffff_ffff
                || local_header_offset == 0xffff_ffff
            {
                return Err(ZipError::Zip64Unsupported("zip64 entry sizes"));
            }
            if flags & 0x0001 != 0 || flags & 0x0040 != 0 {
                return Err(ZipError::Encrypted { name });
            }
            if method != 0 && method != 8 {
                return Err(ZipError::UnsupportedMethod { name, method });
            }
            if validate_entry_name(&name).is_err() && !name.ends_with('/') {
                return Err(ZipError::SlipPath { name });
            }
            // Directory names still must not traverse.
            if name.ends_with('/') && validate_entry_name(name.trim_end_matches('/')).is_err() {
                return Err(ZipError::SlipPath { name });
            }
            entries.push(ZipEntry {
                name,
                method,
                compressed_size,
                uncompressed_size,
                crc32: crc,
                local_header_offset,
            });
            at += 46 + name_len + extra_len + comment_len;
        }
        Ok(ZipReader { reader, entries })
    }

    /// Central-directory entries in archive order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Reads and decompresses entry `index`, enforcing the per-entry
    /// size budget, the compression-ratio budget, and the CRC.
    pub fn read_entry(&mut self, index: usize, limits: &IngestLimits) -> Result<Vec<u8>, ZipError> {
        let entry = self.entries[index].clone();
        if entry.uncompressed_size > limits.max_entry_inflated {
            return Err(ZipError::EntryTooLarge {
                name: entry.name,
                size: entry.uncompressed_size,
                limit: limits.max_entry_inflated,
            });
        }
        // Ratio check on the *declared* sizes, before touching the data:
        // only meaningful past a floor so tiny highly-compressible files
        // (a 40-byte manifest deflating to 8 bytes) are not flagged.
        if entry.method == 8
            && entry.uncompressed_size > limits.ratio_floor_bytes
            && entry.uncompressed_size > entry.compressed_size.max(1) * limits.max_compression_ratio
        {
            return Err(ZipError::RatioBomb {
                name: entry.name,
                compressed: entry.compressed_size,
                inflated: entry.uncompressed_size,
                limit: limits.max_compression_ratio,
            });
        }
        self.reader
            .seek(SeekFrom::Start(entry.local_header_offset))?;
        let mut local = [0u8; 30];
        self.reader.read_exact(&mut local)?;
        if le32(&local, 0) != LOCAL_SIG {
            return Err(ZipError::Malformed {
                name: entry.name,
                what: "bad local header signature",
            });
        }
        // Local name/extra lengths can differ from the central directory
        // (extra fields often do); re-read them to find the data start.
        let local_name_len = u64::from(le16(&local, 26));
        let local_extra_len = u64::from(le16(&local, 28));
        self.reader
            .seek(SeekFrom::Current((local_name_len + local_extra_len) as i64))?;
        let mut compressed = vec![0u8; entry.compressed_size as usize];
        self.reader.read_exact(&mut compressed)?;

        let data = match entry.method {
            0 => {
                if entry.compressed_size != entry.uncompressed_size {
                    return Err(ZipError::Malformed {
                        name: entry.name,
                        what: "stored entry with mismatched sizes",
                    });
                }
                compressed
            }
            8 => {
                // Cap at the declared size: a stream producing more is
                // lying about its expansion (bomb shape) and errors out.
                let out = inflate(&compressed, entry.uncompressed_size).map_err(|source| {
                    ZipError::Inflate {
                        name: entry.name.clone(),
                        source,
                    }
                })?;
                if out.len() as u64 != entry.uncompressed_size {
                    return Err(ZipError::Malformed {
                        name: entry.name,
                        what: "inflated size differs from declared size",
                    });
                }
                out
            }
            _ => unreachable!("open() rejects other methods"),
        };
        let actual = crc32(&data);
        if actual != entry.crc32 {
            return Err(ZipError::CrcMismatch {
                name: entry.name,
                expected: entry.crc32,
                actual,
            });
        }
        Ok(data)
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.reader
    }
}

/// Streaming zip writer. Entry names are *not* validated — the
/// corruption tests rely on writing hostile archives the reader must
/// refuse. `raw` variants let tests inject arbitrary compressed bytes
/// and CRC values.
pub struct ZipWriter<W: Write> {
    writer: W,
    offset: u64,
    central: Vec<u8>,
    count: u64,
}

impl<W: Write> ZipWriter<W> {
    pub fn new(writer: W) -> ZipWriter<W> {
        ZipWriter {
            writer,
            offset: 0,
            central: Vec::new(),
            count: 0,
        }
    }

    /// Adds an entry with method 0 (stored) — byte-identical on read.
    pub fn add_stored(&mut self, name: &str, data: &[u8]) -> Result<(), ZipError> {
        self.add_raw(name, 0, data, data.len() as u64, crc32(data))
    }

    /// Adds an entry with method 8 and caller-supplied raw deflate data,
    /// declared uncompressed size, and CRC. No consistency is enforced.
    pub fn add_deflate_raw(
        &mut self,
        name: &str,
        raw: &[u8],
        uncompressed_size: u64,
        crc: u32,
    ) -> Result<(), ZipError> {
        self.add_raw(name, 8, raw, uncompressed_size, crc)
    }

    fn add_raw(
        &mut self,
        name: &str,
        method: u16,
        data: &[u8],
        uncompressed_size: u64,
        crc: u32,
    ) -> Result<(), ZipError> {
        if self.count >= 65_535 {
            return Err(ZipError::Zip64Unsupported("more than 65535 entries"));
        }
        if data.len() as u64 > u64::from(u32::MAX) || uncompressed_size > u64::from(u32::MAX) {
            return Err(ZipError::Zip64Unsupported("entry larger than 4 GiB"));
        }
        let name_bytes = name.as_bytes();
        if name_bytes.len() > 65_535 {
            return Err(ZipError::Zip64Unsupported("entry name too long"));
        }
        let header_offset = self.offset;
        let mut local = Vec::with_capacity(30 + name_bytes.len());
        local.extend_from_slice(&LOCAL_SIG.to_le_bytes());
        local.extend_from_slice(&20u16.to_le_bytes()); // version needed
        local.extend_from_slice(&0u16.to_le_bytes()); // flags
        local.extend_from_slice(&method.to_le_bytes());
        local.extend_from_slice(&0u16.to_le_bytes()); // mod time
        local.extend_from_slice(&0u16.to_le_bytes()); // mod date
        local.extend_from_slice(&crc.to_le_bytes());
        local.extend_from_slice(&(data.len() as u32).to_le_bytes());
        local.extend_from_slice(&(uncompressed_size as u32).to_le_bytes());
        local.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        local.extend_from_slice(&0u16.to_le_bytes()); // extra len
        local.extend_from_slice(name_bytes);
        self.writer.write_all(&local)?;
        self.writer.write_all(data)?;
        self.offset += local.len() as u64 + data.len() as u64;

        self.central.extend_from_slice(&CDIR_SIG.to_le_bytes());
        self.central.extend_from_slice(&20u16.to_le_bytes()); // version made by
        self.central.extend_from_slice(&20u16.to_le_bytes()); // version needed
        self.central.extend_from_slice(&0u16.to_le_bytes()); // flags
        self.central.extend_from_slice(&method.to_le_bytes());
        self.central.extend_from_slice(&0u16.to_le_bytes()); // mod time
        self.central.extend_from_slice(&0u16.to_le_bytes()); // mod date
        self.central.extend_from_slice(&crc.to_le_bytes());
        self.central
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.central
            .extend_from_slice(&(uncompressed_size as u32).to_le_bytes());
        self.central
            .extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        self.central.extend_from_slice(&0u16.to_le_bytes()); // extra len
        self.central.extend_from_slice(&0u16.to_le_bytes()); // comment len
        self.central.extend_from_slice(&0u16.to_le_bytes()); // disk number
        self.central.extend_from_slice(&0u16.to_le_bytes()); // internal attrs
        self.central.extend_from_slice(&0u32.to_le_bytes()); // external attrs
        self.central
            .extend_from_slice(&(header_offset as u32).to_le_bytes());
        self.central.extend_from_slice(name_bytes);
        self.count += 1;
        Ok(())
    }

    /// Writes the central directory and EOCD, returning the underlying
    /// writer.
    pub fn finish(mut self) -> Result<W, ZipError> {
        let cd_offset = self.offset;
        self.writer.write_all(&self.central)?;
        let mut eocd = Vec::with_capacity(22);
        eocd.extend_from_slice(&EOCD_SIG.to_le_bytes());
        eocd.extend_from_slice(&0u16.to_le_bytes()); // this disk
        eocd.extend_from_slice(&0u16.to_le_bytes()); // cd disk
        eocd.extend_from_slice(&(self.count as u16).to_le_bytes());
        eocd.extend_from_slice(&(self.count as u16).to_le_bytes());
        eocd.extend_from_slice(&(self.central.len() as u32).to_le_bytes());
        eocd.extend_from_slice(&(cd_offset as u32).to_le_bytes());
        eocd.extend_from_slice(&0u16.to_le_bytes()); // comment len
        self.writer.write_all(&eocd)?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Builds an in-memory zip from `(name, bytes)` pairs, stored entries.
pub fn build_zip(entries: &[(&str, &[u8])]) -> Result<Vec<u8>, ZipError> {
    let mut w = ZipWriter::new(Vec::new());
    for (name, data) in entries {
        w.add_stored(name, data)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_run, deflate_stored};
    use std::io::Cursor;

    fn limits() -> IngestLimits {
        IngestLimits::default()
    }

    #[test]
    fn stored_round_trip() {
        let bytes = build_zip(&[("a.txt", b"alpha"), ("dir/b.bin", &[0u8, 1, 2, 255])]).unwrap();
        let mut r = ZipReader::open(Cursor::new(bytes)).unwrap();
        assert_eq!(r.entries().len(), 2);
        assert_eq!(r.entries()[0].name, "a.txt");
        assert_eq!(r.read_entry(0, &limits()).unwrap(), b"alpha");
        assert_eq!(r.read_entry(1, &limits()).unwrap(), vec![0u8, 1, 2, 255]);
    }

    #[test]
    fn deflate_entry_round_trip() {
        let data = b"the quick brown fox".repeat(100);
        let raw = deflate_stored(&data);
        let mut w = ZipWriter::new(Vec::new());
        w.add_deflate_raw("c.bin", &raw, data.len() as u64, crc32(&data))
            .unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ZipReader::open(Cursor::new(bytes)).unwrap();
        assert_eq!(r.read_entry(0, &limits()).unwrap(), data);
    }

    #[test]
    fn bad_crc_is_structured() {
        let mut w = ZipWriter::new(Vec::new());
        let raw = deflate_stored(b"payload");
        w.add_deflate_raw("x.class", &raw, 7, 0xdead_beef).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ZipReader::open(Cursor::new(bytes)).unwrap();
        match r.read_entry(0, &limits()) {
            Err(ZipError::CrcMismatch { name, .. }) => assert_eq!(name, "x.class"),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
    }

    #[test]
    fn slip_name_rejected_at_open() {
        let bytes = build_zip(&[("../../evil.class", b"boom")]).unwrap();
        match ZipReader::open(Cursor::new(bytes)) {
            Err(ZipError::SlipPath { name }) => assert_eq!(name, "../../evil.class"),
            other => panic!("expected slip rejection, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn absolute_and_backslash_names_rejected() {
        for evil in ["/etc/passwd", "a\\b.class", "C:boot.ini"] {
            let bytes = build_zip(&[(evil, b"x")]).unwrap();
            assert!(
                matches!(
                    ZipReader::open(Cursor::new(bytes)),
                    Err(ZipError::SlipPath { .. })
                ),
                "{evil} should be rejected"
            );
        }
    }

    #[test]
    fn ratio_bomb_rejected_before_inflation() {
        let inflated_size = 16u64 << 20;
        let raw = deflate_run(0, inflated_size as usize);
        let mut w = ZipWriter::new(Vec::new());
        let body = vec![0u8; inflated_size as usize];
        w.add_deflate_raw("bomb.class", &raw, inflated_size, crc32(&body))
            .unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ZipReader::open(Cursor::new(bytes)).unwrap();
        match r.read_entry(0, &limits()) {
            Err(ZipError::RatioBomb { name, .. }) => assert_eq!(name, "bomb.class"),
            other => panic!("expected ratio bomb rejection, got {other:?}"),
        }
    }

    #[test]
    fn lying_stream_is_rejected() {
        // Declares 10 bytes but the stream inflates to 1000.
        let raw = deflate_run(1, 1000);
        let mut w = ZipWriter::new(Vec::new());
        w.add_deflate_raw("liar.class", &raw, 10, 0).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ZipReader::open(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.read_entry(0, &limits()),
            Err(ZipError::Inflate {
                source: InflateError::OutputBudget(_),
                ..
            })
        ));
    }

    #[test]
    fn truncated_central_directory_is_structured() {
        let bytes = build_zip(&[("a.class", b"abc")]).unwrap();
        let eocd_start = bytes.len() - 22;

        // EOCD claims a directory that runs past the end of the file.
        let mut oversize = bytes.clone();
        oversize[eocd_start + 12..eocd_start + 16].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
        assert!(matches!(
            ZipReader::open(Cursor::new(oversize)),
            Err(ZipError::TruncatedCentralDirectory(_))
        ));

        // First central-directory byte mangled: bad entry signature.
        let cd_offset =
            u32::from_le_bytes(bytes[eocd_start + 16..eocd_start + 20].try_into().unwrap())
                as usize;
        let mut badsig = bytes.clone();
        badsig[cd_offset] ^= 0xff;
        assert!(matches!(
            ZipReader::open(Cursor::new(badsig)),
            Err(ZipError::TruncatedCentralDirectory("bad entry signature"))
        ));
    }

    #[test]
    fn not_a_zip_is_structured() {
        assert!(matches!(
            ZipReader::open(Cursor::new(b"PK\x03\x04not really".to_vec())),
            Err(ZipError::MissingEndOfCentralDirectory)
        ));
    }

    #[test]
    fn empty_archive_opens() {
        let bytes = build_zip(&[]).unwrap();
        let r = ZipReader::open(Cursor::new(bytes)).unwrap();
        assert!(r.entries().is_empty());
    }
}
