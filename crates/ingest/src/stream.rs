//! Streaming bounded-memory lift over a mixed corpus of loose class
//! files and archives.
//!
//! The memory contract: class bytes are inflated in batches of at most
//! [`crate::IngestLimits::batch_bytes`] / `batch_classes`, lifted into
//! the shared [`ProgramBuilder`], and dropped before the next batch is
//! read — peak *blob* memory is O(batch), never O(corpus), no matter how
//! many classes the archives hold. [`IngestStats::peak_batch_bytes`] is
//! the driver-measured witness of that bound and is what `bench ingest`
//! gates on.
//!
//! Per-class fault isolation mirrors `lift_program_tolerant` exactly —
//! parse/lift errors and panics quarantine one class with a
//! [`SkippedClass`] diagnostic (the `source` is the full archive
//! provenance) and the scan continues over the survivors.

use std::collections::HashMap;
use std::io::{BufReader, Cursor};
use std::path::PathBuf;
use std::time::Instant;

use tabby_classfile::ClassFile;
use tabby_core::{CollectedInputs, ScanDiagnostics, ShadowedClass, SkippedClass};
use tabby_graph::content_hash64;
use tabby_ir::builder::ProgramBuilder;
use tabby_ir::lift::lift_class;
use tabby_ir::model::{Class, Program};

use crate::classpath::{explode, open_archive_file, open_nested};
use crate::zip::ZipReader;
use crate::{IngestError, IngestLimits};

/// Where one planned class's bytes come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobSource {
    /// A loose `.class` file on disk.
    Loose(PathBuf),
    /// An entry inside a (possibly nested) archive; `chain` as in
    /// [`crate::classpath::ArchiveClass::chain`].
    Archive {
        /// Top-level archive path on disk.
        archive: PathBuf,
        /// Entry-index chain from the top-level central directory.
        chain: Vec<usize>,
    },
}

/// One class the corpus plan will lift.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Display/provenance string (file path, or `jar!/entry` chain).
    pub display: String,
    /// Known or declared byte size (0 when unknown for loose files).
    pub size: u64,
    /// How to fetch the bytes.
    pub source: BlobSource,
}

/// The resolved work-list for a corpus: every class to lift, in
/// classpath order, with archive duplicates already resolved first-wins.
#[derive(Debug, Default)]
pub struct CorpusPlan {
    /// Classes in lift order: loose files first (sorted), then each
    /// archive (sorted) exploded in classpath order.
    pub entries: Vec<CorpusEntry>,
    /// Duplicates dropped by first-wins resolution, across all archives.
    pub shadowed: Vec<ShadowedClass>,
    /// Archives opened while planning (top-level + nested).
    pub archives_opened: usize,
    /// Wall-clock nanoseconds spent opening + exploding archives.
    pub open_latency_ns: u64,
}

/// Builds the work-list: loose class files pass through unchanged (legacy
/// semantics, no dedup), archives are exploded with JVM-style first-wins
/// resolution applied *across* archives in sorted order.
pub fn plan_corpus(
    inputs: &CollectedInputs,
    limits: &IngestLimits,
) -> Result<CorpusPlan, IngestError> {
    let mut plan = CorpusPlan::default();
    for file in &inputs.class_files {
        let size = std::fs::metadata(file).map(|m| m.len()).unwrap_or(0);
        plan.entries.push(CorpusEntry {
            display: file.display().to_string(),
            size,
            source: BlobSource::Loose(file.clone()),
        });
    }
    // Cross-archive first-wins: the key is the class-relative path.
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for archive in &inputs.archives {
        let started = Instant::now();
        let display = archive.display().to_string();
        let mut zip = open_archive_file(archive)?;
        let exploded = explode(&mut zip, &display, limits)?;
        plan.archives_opened += exploded.archives_opened;
        plan.shadowed.extend(exploded.shadowed);
        for class in exploded.classes {
            match seen.get(&class.class_path) {
                Some(&winner) => plan.shadowed.push(ShadowedClass {
                    class: class.class_path,
                    kept: plan.entries[winner].display.clone(),
                    shadowed: class.provenance,
                }),
                None => {
                    seen.insert(class.class_path, plan.entries.len());
                    plan.entries.push(CorpusEntry {
                        display: class.provenance,
                        size: class.size,
                        source: BlobSource::Archive {
                            archive: archive.clone(),
                            chain: class.chain,
                        },
                    });
                }
            }
        }
        plan.open_latency_ns += started.elapsed().as_nanos() as u64;
    }
    Ok(plan)
}

/// Lazily fetches planned blobs, caching the open top-level archive and
/// the innermost nested-archive cursor. Plan order keeps entries of the
/// same archive (and the same nested jar) contiguous, so consecutive
/// fetches almost always hit the cache instead of re-opening.
pub struct CorpusReader {
    limits: IngestLimits,
    top: Option<(PathBuf, ZipReader<BufReader<std::fs::File>>)>,
    nested: Option<(PathBuf, Vec<usize>, ZipReader<Cursor<Vec<u8>>>)>,
    /// Archives opened while fetching (cache misses), for stats.
    pub reopens: usize,
}

impl CorpusReader {
    /// A reader enforcing `limits` on every fetched entry.
    pub fn new(limits: IngestLimits) -> CorpusReader {
        CorpusReader {
            limits,
            top: None,
            nested: None,
            reopens: 0,
        }
    }

    /// Reads one blob, opening (and caching) archives as needed.
    pub fn fetch(&mut self, source: &BlobSource) -> Result<Vec<u8>, IngestError> {
        match source {
            BlobSource::Loose(path) => std::fs::read(path).map_err(|source| IngestError::Io {
                path: path.display().to_string(),
                source,
            }),
            BlobSource::Archive { archive, chain } => self.fetch_archive(archive, chain),
        }
    }

    fn fetch_archive(
        &mut self,
        archive: &PathBuf,
        chain: &[usize],
    ) -> Result<Vec<u8>, IngestError> {
        if self.top.as_ref().map(|(p, _)| p) != Some(archive) {
            let zip = open_archive_file(archive)?;
            self.reopens += 1;
            self.top = Some((archive.clone(), zip));
            self.nested = None;
        }
        let display = archive.display().to_string();
        let (leaf, prefix) = match chain.split_last() {
            Some(split) => split,
            None => {
                return Err(IngestError::Io {
                    path: display,
                    source: std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "empty fetch chain",
                    ),
                })
            }
        };
        let Some((_, top)) = self.top.as_mut() else {
            unreachable!("top archive cached above");
        };
        if prefix.is_empty() {
            return top
                .read_entry(*leaf, &self.limits)
                .map_err(|source| IngestError::Zip {
                    archive: display,
                    source,
                });
        }
        let cache_hit = self
            .nested
            .as_ref()
            .is_some_and(|(p, pre, _)| p == archive && pre == prefix);
        if !cache_hit {
            // Walk the prefix from the top-level archive down.
            let mut inner = open_nested(top, prefix[0], &display, &self.limits)?;
            self.reopens += 1;
            let mut inner_display = format!("{display}!/#{}", prefix[0]);
            for &link in &prefix[1..] {
                inner = open_nested(&mut inner, link, &inner_display, &self.limits)?;
                self.reopens += 1;
                inner_display = format!("{inner_display}!/#{link}");
            }
            self.nested = Some((archive.clone(), prefix.to_vec(), inner));
        }
        let Some((_, _, nested)) = self.nested.as_mut() else {
            unreachable!("nested archive cached above");
        };
        nested
            .read_entry(*leaf, &self.limits)
            .map_err(|source| IngestError::Zip {
                archive: display,
                source,
            })
    }
}

/// Streaming-ingest counters, serialized into `BENCH_ingest.json` and
/// surfaced by the CLI on `-v`.
#[derive(Debug, Default, Clone, serde::Serialize, serde::Deserialize)]
pub struct IngestStats {
    /// Archives opened while planning (top-level + nested).
    pub archives_opened: usize,
    /// Classes in the plan (after first-wins dedup).
    pub classes_planned: usize,
    /// Classes lifted into the program.
    pub classes_lifted: usize,
    /// Classes quarantined by parse/lift faults.
    pub classes_skipped: usize,
    /// Duplicate classes dropped first-wins.
    pub shadowed_classes: usize,
    /// Total class bytes fetched/inflated over the whole run.
    pub bytes_inflated: u64,
    /// Largest number of blob bytes held in memory at once — the
    /// bounded-memory witness; stays ≤ the batch budget regardless of
    /// corpus size.
    pub peak_batch_bytes: u64,
    /// Lift batches flushed.
    pub batches: usize,
    /// Nanoseconds spent opening + exploding archives while planning.
    pub open_latency_ns: u64,
    /// Archive (re)opens during the fetch phase (cache misses).
    pub fetch_reopens: usize,
}

/// A streamed lift's result: the program plus everything the scan layer
/// folds into [`ScanDiagnostics`].
#[derive(Debug)]
pub struct StreamedLift {
    /// Program built from the surviving classes.
    pub program: Program,
    /// Quarantined classes, `source` = full provenance.
    pub skipped: Vec<SkippedClass>,
    /// First-wins shadowing report.
    pub shadowed: Vec<ShadowedClass>,
    /// FNV-1a content hash per fetched class, keyed by provenance — the
    /// same `(name, hash)` shape `tabby-registry`'s `hash_inputs`
    /// produces, so archive corpora snapshot and diff like loose trees.
    pub class_hashes: Vec<(String, u64)>,
    /// Driver counters.
    pub stats: IngestStats,
}

impl StreamedLift {
    /// Folds the lift-phase results into a scan diagnostics report.
    pub fn diagnostics(&self) -> ScanDiagnostics {
        ScanDiagnostics {
            skipped_classes: self.skipped.clone(),
            shadowed_classes: self.shadowed.clone(),
            ..ScanDiagnostics::default()
        }
    }
}

/// Lifts a planned corpus in bounded batches.
///
/// `strict` fails fast on the first quarantined class instead of
/// continuing degraded (the CLI's `--strict` contract).
pub fn lift_plan(
    plan: CorpusPlan,
    limits: &IngestLimits,
    strict: bool,
) -> Result<StreamedLift, IngestError> {
    let mut reader = CorpusReader::new(limits.clone());
    let mut pb = ProgramBuilder::new();
    let mut skipped: Vec<SkippedClass> = Vec::new();
    let mut class_hashes: Vec<(String, u64)> = Vec::new();
    let mut stats = IngestStats {
        archives_opened: plan.archives_opened,
        classes_planned: plan.entries.len(),
        shadowed_classes: plan.shadowed.len(),
        open_latency_ns: plan.open_latency_ns,
        ..IngestStats::default()
    };

    let mut batch: Vec<(String, Vec<u8>)> = Vec::new();
    let mut batch_bytes = 0u64;
    // First definition of a name wins even across packaging (a loose
    // file next to an archive carrying the same class, or two entry
    // paths whose bytecode declares the same FQCN) — later copies are
    // reported as shadowed, exactly like plan-time path duplicates.
    let mut seen_fqcn: HashMap<String, String> = HashMap::new();
    let mut lift_shadowed: Vec<ShadowedClass> = Vec::new();
    let mut flush = |batch: &mut Vec<(String, Vec<u8>)>,
                     batch_bytes: &mut u64,
                     pb: &mut ProgramBuilder,
                     skipped: &mut Vec<SkippedClass>,
                     class_hashes: &mut Vec<(String, u64)>,
                     seen_fqcn: &mut HashMap<String, String>,
                     lift_shadowed: &mut Vec<ShadowedClass>,
                     stats: &mut IngestStats|
     -> Result<(), IngestError> {
        if batch.is_empty() {
            return Ok(());
        }
        stats.batches += 1;
        stats.peak_batch_bytes = stats.peak_batch_bytes.max(*batch_bytes);
        for (display, bytes) in batch.drain(..) {
            let byte_hash = content_hash64(&bytes);
            class_hashes.push((display.clone(), byte_hash));
            match lift_one(pb, &bytes) {
                Ok(class) => {
                    let fqcn = pb.interner_mut().resolve(class.name).to_owned();
                    match seen_fqcn.get(&fqcn) {
                        Some(kept) => lift_shadowed.push(ShadowedClass {
                            class: fqcn,
                            kept: kept.clone(),
                            shadowed: display.clone(),
                        }),
                        None => {
                            seen_fqcn.insert(fqcn, display.clone());
                            pb.push_class(class);
                            stats.classes_lifted += 1;
                        }
                    }
                }
                Err(error) => {
                    let diag = SkippedClass {
                        source: display.clone(),
                        class_name: error.0,
                        byte_hash,
                        error: error.1.clone(),
                    };
                    if strict {
                        return Err(IngestError::StrictLift {
                            source: display,
                            error: error.1,
                        });
                    }
                    skipped.push(diag);
                    stats.classes_skipped += 1;
                }
            }
        }
        *batch_bytes = 0;
        Ok(())
    };

    for entry in &plan.entries {
        let bytes = reader.fetch(&entry.source)?;
        stats.bytes_inflated += bytes.len() as u64;
        batch_bytes += bytes.len() as u64;
        batch.push((entry.display.clone(), bytes));
        if batch_bytes >= limits.batch_bytes || batch.len() >= limits.batch_classes {
            flush(
                &mut batch,
                &mut batch_bytes,
                &mut pb,
                &mut skipped,
                &mut class_hashes,
                &mut seen_fqcn,
                &mut lift_shadowed,
                &mut stats,
            )?;
        }
    }
    flush(
        &mut batch,
        &mut batch_bytes,
        &mut pb,
        &mut skipped,
        &mut class_hashes,
        &mut seen_fqcn,
        &mut lift_shadowed,
        &mut stats,
    )?;
    stats.fetch_reopens = reader.reopens;

    let mut shadowed = plan.shadowed;
    shadowed.extend(lift_shadowed);
    stats.shadowed_classes = shadowed.len();

    Ok(StreamedLift {
        program: pb.build(),
        skipped,
        shadowed,
        class_hashes,
        stats,
    })
}

/// One-call convenience: plan + lift.
pub fn lift_corpus(
    inputs: &CollectedInputs,
    limits: &IngestLimits,
    strict: bool,
) -> Result<StreamedLift, IngestError> {
    let plan = plan_corpus(inputs, limits)?;
    lift_plan(plan, limits, strict)
}

/// Parse + lift one blob with panic containment, mirroring
/// `lift_program_tolerant`'s per-class quarantine exactly.
fn lift_one(pb: &mut ProgramBuilder, bytes: &[u8]) -> Result<Class, (Option<String>, String)> {
    let interner = pb.interner_mut();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<Class, (Option<String>, String)> {
            let cf: ClassFile =
                tabby_classfile::parse_class(bytes).map_err(|e| (None, e.to_string()))?;
            let name = cf.name().ok();
            lift_class(interner, &cf).map_err(|e| (name.clone(), e.to_string()))
        },
    ));
    match attempt {
        Ok(done) => done,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_owned()
            };
            Err((None, format!("panic while lifting: {msg}")))
        }
    }
}

/// Best-effort peak-RSS (VmHWM) in bytes from `/proc/self/status`.
/// Informational — the gated bound is [`IngestStats::peak_batch_bytes`].
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zip::build_zip;

    fn write_jar(dir: &std::path::Path, name: &str, entries: &[(&str, &[u8])]) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, build_zip(entries).unwrap()).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabby-stream-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_orders_loose_then_archives() {
        let dir = temp_dir("plan");
        std::fs::write(dir.join("Loose.class"), b"\xca\xfe\xba\xbe").unwrap();
        write_jar(&dir, "a.jar", &[("p/Q.class", b"qq")]);
        let inputs = tabby_core::collect_inputs(&[dir.clone()], true).unwrap();
        let plan = plan_corpus(&inputs, &IngestLimits::default()).unwrap();
        assert_eq!(plan.entries.len(), 2);
        assert!(matches!(plan.entries[0].source, BlobSource::Loose(_)));
        assert!(matches!(plan.entries[1].source, BlobSource::Archive { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_archive_first_wins() {
        let dir = temp_dir("xarch");
        write_jar(&dir, "a.jar", &[("p/Q.class", b"from-a")]);
        write_jar(&dir, "b.jar", &[("p/Q.class", b"from-b")]);
        let inputs = tabby_core::collect_inputs(&[dir.clone()], true).unwrap();
        let plan = plan_corpus(&inputs, &IngestLimits::default()).unwrap();
        assert_eq!(plan.entries.len(), 1);
        assert!(plan.entries[0]
            .display
            .starts_with(dir.join("a.jar").display().to_string().as_str()));
        assert_eq!(plan.shadowed.len(), 1);
        assert!(plan.shadowed[0].shadowed.contains("b.jar"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_class_bytes_are_quarantined_with_provenance() {
        let dir = temp_dir("quarantine");
        let jar = write_jar(
            &dir,
            "bad.jar",
            &[("not/AClass.class", b"not a class file")],
        );
        let inputs = tabby_core::collect_inputs(&[jar.clone()], true).unwrap();
        let lifted = lift_corpus(&inputs, &IngestLimits::default(), false).unwrap();
        assert_eq!(lifted.stats.classes_lifted, 0);
        assert_eq!(lifted.skipped.len(), 1);
        assert!(
            lifted.skipped[0]
                .source
                .ends_with("bad.jar!/not/AClass.class"),
            "{}",
            lifted.skipped[0].source
        );
        // Strict mode turns the same input into a hard error.
        assert!(matches!(
            lift_corpus(&inputs, &IngestLimits::default(), true),
            Err(IngestError::StrictLift { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batching_bounds_peak_bytes() {
        let dir = temp_dir("batch");
        // 64 entries of 1 KiB with a 4 KiB budget: peak batch stays ≤ one
        // entry over budget, far below the 64 KiB corpus total.
        let body = vec![0u8; 1024];
        let entries: Vec<(String, Vec<u8>)> = (0..64)
            .map(|i| (format!("p/C{i}.class"), body.clone()))
            .collect();
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(n, b)| (n.as_str(), b.as_slice()))
            .collect();
        let jar = write_jar(&dir, "many.jar", &refs);
        let inputs = tabby_core::collect_inputs(&[jar], true).unwrap();
        let limits = IngestLimits {
            batch_bytes: 4096,
            ..IngestLimits::default()
        };
        let lifted = lift_corpus(&inputs, &limits, false).unwrap();
        assert_eq!(lifted.stats.classes_planned, 64);
        assert!(
            lifted.stats.batches >= 16,
            "batches {}",
            lifted.stats.batches
        );
        assert!(
            lifted.stats.peak_batch_bytes <= limits.batch_bytes + 1024,
            "peak {} vs budget {}",
            lifted.stats.peak_batch_bytes,
            limits.batch_bytes
        );
        assert_eq!(lifted.stats.bytes_inflated, 64 * 1024);
        std::fs::remove_dir_all(&dir).ok();
    }
}
