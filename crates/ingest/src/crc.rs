//! CRC-32 (IEEE 802.3, the zip polynomial), table-driven.
//!
//! Zip central-directory entries carry a CRC-32 of the *uncompressed*
//! data; [`crate::zip::ZipReader::read_entry`] verifies it after
//! decompression so a torn or bit-rotted entry is a structured error, not
//! silently-wrong class bytes.

/// The reflected polynomial used by zip/gzip/PNG.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xffff_ffff`, final xor `0xffff_ffff`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }
}
