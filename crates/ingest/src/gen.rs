//! Synthetic corpus generation for ingest tests and `bench ingest`.
//!
//! Packs assembler-produced `.class` bytes (via the IR builder DSL +
//! `tabby-ir`'s compiler, which drives `tabby-classfile`'s `ClassAsm`)
//! into generated archives at corpus scale. Generation itself is
//! streaming: classes are built and compiled in chunks, each chunk is
//! written straight into a nested part-jar and to the unpacked reference
//! tree, and dropped — so the generator can emit 100k+ classes without
//! itself holding the corpus in memory.
//!
//! Every corpus plants one known gadget pair (the paper's Fig. 1
//! `EvilObjectA -> EvilObjectB -> Runtime.exec` shape) so archive and
//! tree scans have a non-empty chain set to compare byte-for-byte.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use tabby_ir::compile::compile_program;
use tabby_ir::{JType, ProgramBuilder};

use crate::zip::{ZipError, ZipWriter};

/// Archive layout to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusLayout {
    /// One flat jar with every class at the root (≤ 65535 classes).
    FlatJar,
    /// An outer jar with `lib/part-NNN.jar` nested jars — the fat-jar
    /// shape, and the only way past zip's 65535-entry ceiling.
    NestedJar,
    /// A war: gadget classes under `WEB-INF/classes/`, filler chunks as
    /// `WEB-INF/lib/part-NNN.jar`.
    War,
}

/// What to generate.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Filler classes (the planted gadget pair adds 2 more).
    pub classes: usize,
    /// Classes per chunk (= per nested part-jar). Bounds generator
    /// memory and keeps every jar far under the 65535-entry ceiling.
    pub chunk: usize,
    /// Archive shape.
    pub layout: CorpusLayout,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            classes: 1000,
            chunk: 2000,
            layout: CorpusLayout::NestedJar,
        }
    }
}

/// A generated corpus: the archive and its unpacked reference tree.
#[derive(Debug)]
pub struct GeneratedCorpus {
    /// The generated `.jar`/`.war`.
    pub archive: PathBuf,
    /// Directory holding the same classes as loose `.class` files.
    pub tree: PathBuf,
    /// Total classes emitted (filler + gadget pair).
    pub classes: usize,
}

/// Builds the planted Fig.-1 gadget pair in `pkg`.
fn gadget_pair(pb: &mut ProgramBuilder, pkg: &str) {
    let a_name = format!("{pkg}.EvilObjectA");
    let b_name = format!("{pkg}.EvilObjectB");
    {
        let mut cb = pb.class(&a_name).serializable();
        let object = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let ois = cb.object_type("java.io.ObjectInputStream");
        cb.field("val1", object.clone());
        let mut mb = cb.method("readObject", vec![ois], JType::Void);
        let this = mb.this();
        let val = mb.fresh();
        mb.get_field(val, this, &a_name, "val1", object.clone());
        let to_string = mb.sig("java.lang.Object", "toString", &[], string);
        mb.call_virtual(None, val, to_string, &[]);
        mb.finish();
        cb.finish();
    }
    {
        let mut cb = pb.class(&b_name).serializable();
        let object = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let runtime = cb.object_type("java.lang.Runtime");
        let process = cb.object_type("java.lang.Process");
        cb.field("val2", object.clone());
        let mut mb = cb.method("toString", vec![], string.clone());
        let this = mb.this();
        let val2 = mb.fresh();
        mb.get_field(val2, this, &b_name, "val2", object);
        let ts = mb.sig("java.lang.Object", "toString", &[], string.clone());
        let cmd = mb.fresh();
        mb.call_virtual(Some(cmd), val2, ts, &[]);
        let rt = mb.fresh();
        let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
        mb.call_static(Some(rt), get_rt, &[]);
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], process);
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.ret(mb.c_null());
        mb.finish();
        cb.finish();
    }
}

/// One chain-free filler class with a small real body (field load +
/// virtual call) so the analysis does non-trivial work per class.
fn filler_class(pb: &mut ProgramBuilder, index: usize) {
    let name = format!("gen.p{}.Filler{index}", index % 97);
    let mut cb = pb.class(&name);
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    cb.field("member", object.clone());
    let mut mb = cb.method("describe", vec![], string.clone());
    let this = mb.this();
    let v = mb.fresh();
    mb.get_field(v, this, &name, "member", object);
    let ts = mb.sig("java.lang.Object", "toString", &[], string);
    let out = mb.fresh();
    mb.call_virtual(Some(out), v, ts, &[]);
    mb.ret(out);
    mb.finish();
    cb.finish();
}

/// FQCN → archive entry name.
fn entry_name(fqcn: &str) -> String {
    format!("{}.class", fqcn.replace('.', "/"))
}

/// Compiles classes `range` (plus the gadget pair when `with_gadgets`)
/// into `(entry_name, bytes)` pairs.
fn compile_chunk(range: std::ops::Range<usize>, with_gadgets: bool) -> Vec<(String, Vec<u8>)> {
    let mut pb = ProgramBuilder::new();
    if with_gadgets {
        gadget_pair(&mut pb, "gen.gadget");
    }
    for i in range {
        filler_class(&mut pb, i);
    }
    let program = pb.build();
    compile_program(&program)
        .into_iter()
        .map(|(fqcn, bytes)| (entry_name(&fqcn), bytes))
        .collect()
}

/// Writes `entries` as an in-memory stored jar.
fn pack_jar(entries: &[(String, Vec<u8>)]) -> Result<Vec<u8>, ZipError> {
    let mut w = ZipWriter::new(Vec::new());
    for (name, bytes) in entries {
        w.add_stored(name, bytes)?;
    }
    w.finish()
}

/// Writes `entries` into the reference tree as loose files.
fn write_tree(tree: &Path, entries: &[(String, Vec<u8>)]) -> std::io::Result<()> {
    for (name, bytes) in entries {
        let path = tree.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, bytes)?;
    }
    Ok(())
}

fn zip_io(e: ZipError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Generates the corpus under `dir` (creating `dir/corpus.{jar,war}` and
/// `dir/tree/`). Deterministic: same spec, same bytes.
///
/// # Errors
///
/// I/O failures, or a [`CorpusLayout::FlatJar`] spec too large for one
/// jar.
pub fn generate(dir: &Path, spec: &CorpusSpec) -> std::io::Result<GeneratedCorpus> {
    let tree = dir.join("tree");
    std::fs::create_dir_all(&tree)?;
    let archive = dir.join(match spec.layout {
        CorpusLayout::War => "corpus.war",
        _ => "corpus.jar",
    });
    let file = std::fs::File::create(&archive)?;
    let mut outer = ZipWriter::new(std::io::BufWriter::new(file));

    let chunk = spec.chunk.max(1);
    let mut total = 0usize;
    let mut part = 0usize;
    let mut start = 0usize;
    loop {
        let end = (start + chunk).min(spec.classes);
        let with_gadgets = part == 0;
        let entries = compile_chunk(start..end, with_gadgets);
        total += entries.len();
        write_tree(&tree, &entries)?;
        match spec.layout {
            CorpusLayout::FlatJar => {
                for (name, bytes) in &entries {
                    outer.add_stored(name, bytes).map_err(zip_io)?;
                }
            }
            CorpusLayout::NestedJar => {
                let jar = pack_jar(&entries).map_err(zip_io)?;
                outer
                    .add_stored(&format!("lib/part-{part:03}.jar"), &jar)
                    .map_err(zip_io)?;
            }
            CorpusLayout::War => {
                if with_gadgets {
                    // Gadgets ride in WEB-INF/classes; filler in lib jars.
                    let (gadgets, filler): (Vec<_>, Vec<_>) = entries
                        .into_iter()
                        .partition(|(name, _)| name.starts_with("gen/gadget/"));
                    for (name, bytes) in &gadgets {
                        outer
                            .add_stored(&format!("WEB-INF/classes/{name}"), bytes)
                            .map_err(zip_io)?;
                    }
                    let jar = pack_jar(&filler).map_err(zip_io)?;
                    outer
                        .add_stored(&format!("WEB-INF/lib/part-{part:03}.jar"), &jar)
                        .map_err(zip_io)?;
                } else {
                    let jar = pack_jar(&entries).map_err(zip_io)?;
                    outer
                        .add_stored(&format!("WEB-INF/lib/part-{part:03}.jar"), &jar)
                        .map_err(zip_io)?;
                }
            }
        }
        part += 1;
        start = end;
        if start >= spec.classes {
            break;
        }
    }
    let mut inner = outer.finish().map_err(zip_io)?;
    inner.flush()?;
    Ok(GeneratedCorpus {
        archive,
        tree,
        classes: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::lift_corpus;
    use crate::IngestLimits;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabby-gen-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn lifted_class_count(paths: &[PathBuf]) -> usize {
        let inputs = tabby_core::collect_inputs(paths, true).unwrap();
        let lifted = lift_corpus(&inputs, &IngestLimits::default(), false).unwrap();
        assert!(lifted.skipped.is_empty(), "skipped: {:?}", lifted.skipped);
        lifted.program.classes().len()
    }

    #[test]
    fn nested_jar_and_tree_hold_the_same_classes() {
        let dir = temp_dir("nested");
        let spec = CorpusSpec {
            classes: 50,
            chunk: 16,
            layout: CorpusLayout::NestedJar,
        };
        let corpus = generate(&dir, &spec).unwrap();
        assert_eq!(corpus.classes, 52); // 50 filler + gadget pair
        assert_eq!(lifted_class_count(&[corpus.archive.clone()]), 52);
        assert_eq!(lifted_class_count(&[corpus.tree.clone()]), 52);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn war_layout_lifts_identically() {
        let dir = temp_dir("war");
        let spec = CorpusSpec {
            classes: 30,
            chunk: 10,
            layout: CorpusLayout::War,
        };
        let corpus = generate(&dir, &spec).unwrap();
        assert!(corpus.archive.ends_with("corpus.war"));
        assert_eq!(
            lifted_class_count(&[corpus.archive.clone()]),
            lifted_class_count(&[corpus.tree.clone()])
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
