//! Recursive archive explosion into a classpath assembly.
//!
//! One top-level jar/war is flattened into an ordered list of class
//! entries with full provenance (`app.war!/WEB-INF/lib/a.jar!/com/F.class`)
//! and a *fetch chain* of entry indices so bytes can be re-read lazily
//! without holding the whole archive inflated. Precedence follows the
//! JVM's first-wins rule in the order a servlet container or Spring Boot
//! launcher would build the classpath:
//!
//! 1. the archive's own `.class` entries, in central-directory order —
//!    this covers loose classes, `WEB-INF/classes/…`, and
//!    `BOOT-INF/classes/…` (the container prefixes are stripped for the
//!    duplicate-resolution key);
//! 2. nested archives (`WEB-INF/lib/*.jar`, `BOOT-INF/lib/*.jar`, plain
//!    nested `*.jar`), sorted by entry name for determinism, each exploded
//!    recursively up to [`crate::IngestLimits::max_nesting_depth`].
//!
//! Duplicate class paths are resolved first-wins; every shadowed copy is
//! surfaced as a [`ShadowedClass`] diagnostic rather than silently
//! dropped. The whole-archive *declared* inflated total is summed from
//! central directories (no inflation needed) and checked against the bomb
//! budget before any class bytes are produced.

use std::collections::HashMap;
use std::io::{Cursor, Read, Seek};

use tabby_core::ShadowedClass;

use crate::zip::ZipReader;
use crate::{IngestError, IngestLimits};

/// Container prefixes stripped from entry names to form the
/// class-relative dedup key.
const CLASS_ROOTS: [&str; 2] = ["WEB-INF/classes/", "BOOT-INF/classes/"];

/// One class discovered inside an archive.
#[derive(Debug, Clone)]
pub struct ArchiveClass {
    /// Full provenance, e.g. `app.war!/WEB-INF/lib/a.jar!/com/F.class`.
    pub provenance: String,
    /// Class-relative path (container prefixes stripped), the
    /// duplicate-resolution key, e.g. `com/F.class`.
    pub class_path: String,
    /// Declared uncompressed size.
    pub size: u64,
    /// Entry-index chain from the top-level archive: `chain[0]` indexes
    /// the top-level central directory; each further index is inside the
    /// nested archive selected by the previous link.
    pub chain: Vec<usize>,
}

/// A fully exploded archive: ordered, deduplicated class list plus the
/// shadowing report and bomb-budget accounting.
#[derive(Debug, Default)]
pub struct ExplodedArchive {
    /// Classes in classpath order, first-wins deduplicated.
    pub classes: Vec<ArchiveClass>,
    /// Duplicates dropped by first-wins resolution.
    pub shadowed: Vec<ShadowedClass>,
    /// Sum of declared uncompressed sizes over every entry, recursively.
    pub declared_total: u64,
    /// Archives opened (1 + nested), for stats.
    pub archives_opened: usize,
}

/// Strips the container class-root prefix, if any, to form the dedup key.
pub fn class_relative_path(entry_name: &str) -> &str {
    for root in CLASS_ROOTS {
        if let Some(rest) = entry_name.strip_prefix(root) {
            return rest;
        }
    }
    entry_name
}

/// True for entry names the explosion recurses into.
fn is_nested_archive(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.ends_with(".jar") || lower.ends_with(".war") || lower.ends_with(".zip")
}

/// Reads nested-archive entry `index` out of `zip` and opens it as a zip.
pub fn open_nested<R: Read + Seek>(
    zip: &mut ZipReader<R>,
    index: usize,
    display: &str,
    limits: &IngestLimits,
) -> Result<ZipReader<Cursor<Vec<u8>>>, IngestError> {
    let bytes = zip
        .read_entry(index, limits)
        .map_err(|source| IngestError::Zip {
            archive: display.to_owned(),
            source,
        })?;
    ZipReader::open(Cursor::new(bytes)).map_err(|source| IngestError::Zip {
        archive: display.to_owned(),
        source,
    })
}

/// Explodes an already-open archive. `display` names it in provenance
/// strings and errors (for the top level this is the filesystem path).
pub fn explode<R: Read + Seek>(
    zip: &mut ZipReader<R>,
    display: &str,
    limits: &IngestLimits,
) -> Result<ExplodedArchive, IngestError> {
    let mut out = ExplodedArchive::default();
    let mut seen: HashMap<String, usize> = HashMap::new();
    visit(
        zip,
        display,
        limits,
        1,
        &mut Vec::new(),
        &mut out,
        &mut seen,
    )?;
    Ok(out)
}

/// Recursive walk. `chain_prefix` is the entry-index chain that selected
/// the current archive; `depth` counts archives (top level = 1).
fn visit<R: Read + Seek>(
    zip: &mut ZipReader<R>,
    display: &str,
    limits: &IngestLimits,
    depth: u32,
    chain_prefix: &mut Vec<usize>,
    out: &mut ExplodedArchive,
    seen: &mut HashMap<String, usize>,
) -> Result<(), IngestError> {
    out.archives_opened += 1;
    // Declared-total bomb budget, checked from the central directory
    // before any entry is inflated.
    let declared: u64 = zip
        .entries()
        .iter()
        .map(|e| e.uncompressed_size)
        .fold(0u64, u64::saturating_add);
    out.declared_total = out.declared_total.saturating_add(declared);
    if out.declared_total > limits.max_inflated_total {
        return Err(IngestError::TotalBudget {
            archive: display.to_owned(),
            declared: out.declared_total,
            limit: limits.max_inflated_total,
        });
    }

    // Pass 1: this archive's own classes, central-directory order.
    for (index, entry) in zip.entries().iter().enumerate() {
        if entry.is_dir() || !entry.name.ends_with(".class") {
            continue;
        }
        let class_path = class_relative_path(&entry.name).to_owned();
        let provenance = format!("{display}!/{}", entry.name);
        let mut chain = chain_prefix.clone();
        chain.push(index);
        record_class(
            out,
            seen,
            ArchiveClass {
                provenance,
                class_path,
                size: entry.uncompressed_size,
                chain,
            },
        );
    }

    // Pass 2: nested archives, sorted by name for determinism.
    let mut nested: Vec<(String, usize)> = zip
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.is_dir() && is_nested_archive(&e.name))
        .map(|(i, e)| (e.name.clone(), i))
        .collect();
    nested.sort();
    for (name, index) in nested {
        if depth + 1 > limits.max_nesting_depth {
            return Err(IngestError::DepthExceeded {
                archive: format!("{display}!/{name}"),
                depth: depth + 1,
                limit: limits.max_nesting_depth,
            });
        }
        let nested_display = format!("{display}!/{name}");
        let mut inner = open_nested(zip, index, display, limits)?;
        chain_prefix.push(index);
        visit(
            &mut inner,
            &nested_display,
            limits,
            depth + 1,
            chain_prefix,
            out,
            seen,
        )?;
        chain_prefix.pop();
    }
    Ok(())
}

/// First-wins insert with shadow reporting.
fn record_class(out: &mut ExplodedArchive, seen: &mut HashMap<String, usize>, class: ArchiveClass) {
    match seen.get(&class.class_path) {
        Some(&winner) => out.shadowed.push(ShadowedClass {
            class: class.class_path,
            kept: out.classes[winner].provenance.clone(),
            shadowed: class.provenance,
        }),
        None => {
            seen.insert(class.class_path.clone(), out.classes.len());
            out.classes.push(class);
        }
    }
}

/// Convenience: resolve error-wrapping for top-level opens.
pub fn open_archive_file(
    path: &std::path::Path,
) -> Result<ZipReader<std::io::BufReader<std::fs::File>>, IngestError> {
    let file = std::fs::File::open(path).map_err(|source| IngestError::Io {
        path: path.display().to_string(),
        source,
    })?;
    ZipReader::open(std::io::BufReader::new(file)).map_err(|source| IngestError::Zip {
        archive: path.display().to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zip::build_zip;

    fn limits() -> IngestLimits {
        IngestLimits::default()
    }

    fn explode_bytes(bytes: Vec<u8>, display: &str) -> Result<ExplodedArchive, IngestError> {
        let mut zip = ZipReader::open(Cursor::new(bytes)).map_err(|source| IngestError::Zip {
            archive: display.to_owned(),
            source,
        })?;
        explode(&mut zip, display, &limits())
    }

    #[test]
    fn war_layout_precedence_and_shadowing() {
        // The same class in WEB-INF/classes and in a lib jar: classes/ wins.
        let lib = build_zip(&[("com/A.class", b"from-lib"), ("com/B.class", b"lib-b")]).unwrap();
        let war = build_zip(&[
            ("WEB-INF/classes/com/A.class", b"from-classes"),
            ("WEB-INF/lib/util.jar", &lib),
        ])
        .unwrap();
        let exploded = explode_bytes(war, "app.war").unwrap();
        let paths: Vec<&str> = exploded
            .classes
            .iter()
            .map(|c| c.class_path.as_str())
            .collect();
        assert_eq!(paths, ["com/A.class", "com/B.class"]);
        assert_eq!(
            exploded.classes[0].provenance,
            "app.war!/WEB-INF/classes/com/A.class"
        );
        assert_eq!(
            exploded.classes[1].provenance,
            "app.war!/WEB-INF/lib/util.jar!/com/B.class"
        );
        assert_eq!(exploded.shadowed.len(), 1);
        assert_eq!(exploded.shadowed[0].class, "com/A.class");
        assert!(exploded.shadowed[0].shadowed.contains("util.jar"));
    }

    #[test]
    fn nested_jar_chains_resolve() {
        let inner = build_zip(&[("x/Y.class", b"yy")]).unwrap();
        let outer = build_zip(&[("a/B.class", b"bb"), ("libs/inner.jar", &inner)]).unwrap();
        let exploded = explode_bytes(outer.clone(), "fat.jar").unwrap();
        assert_eq!(exploded.classes.len(), 2);
        // Fetch through the chain and check bytes.
        let mut zip = ZipReader::open(Cursor::new(outer)).unwrap();
        let y = &exploded.classes[1];
        assert_eq!(y.class_path, "x/Y.class");
        assert_eq!(y.chain.len(), 2);
        let mut nested = open_nested(&mut zip, y.chain[0], "fat.jar", &limits()).unwrap();
        assert_eq!(nested.read_entry(y.chain[1], &limits()).unwrap(), b"yy");
    }

    #[test]
    fn depth_bomb_rejected() {
        // jar in jar in jar in jar in jar: depth 5 > default limit 4.
        let mut archive = build_zip(&[("leaf/Z.class", b"z")]).unwrap();
        for level in 0..4 {
            archive = build_zip(&[(&format!("l{level}.jar"), &archive)]).unwrap();
        }
        match explode_bytes(archive, "deep.jar") {
            Err(IngestError::DepthExceeded { depth, limit, .. }) => {
                assert_eq!(limit, 4);
                assert_eq!(depth, 5);
            }
            other => panic!("expected depth rejection, got {other:?}"),
        }
    }

    #[test]
    fn declared_total_budget_rejected() {
        let body = vec![0u8; 1 << 20];
        let jar = build_zip(&[("big/A.class", &body), ("big/B.class", &body)]).unwrap();
        let tight = IngestLimits {
            max_inflated_total: 1 << 20,
            ..IngestLimits::default()
        };
        let mut zip = ZipReader::open(Cursor::new(jar)).unwrap();
        match explode(&mut zip, "big.jar", &tight) {
            Err(IngestError::TotalBudget {
                declared, limit, ..
            }) => {
                assert!(declared > limit);
            }
            other => panic!("expected total-budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn boot_inf_prefix_stripped_for_dedup() {
        let jar = build_zip(&[
            ("BOOT-INF/classes/com/C.class", b"boot"),
            ("com/C.class", b"root"),
        ])
        .unwrap();
        let exploded = explode_bytes(jar, "boot.jar").unwrap();
        // Central-directory order: BOOT-INF entry first, so it wins.
        assert_eq!(exploded.classes.len(), 1);
        assert_eq!(exploded.classes[0].class_path, "com/C.class");
        assert_eq!(exploded.shadowed.len(), 1);
    }
}
