//! # tabby-ingest — streaming jar/war ingestion with bounded-memory lift
//!
//! Real-world Java corpora ship as archives: jars, Spring Boot fat jars
//! (`BOOT-INF/classes` + `BOOT-INF/lib/*.jar`), and wars
//! (`WEB-INF/classes` + `WEB-INF/lib/*.jar`). This crate turns those into
//! lifted [`tabby_ir::Program`]s without ever unpacking to disk and
//! without holding the inflated corpus in memory:
//!
//! - [`zip`] — an in-house central-directory zip reader (stored + DEFLATE
//!   via [`inflate`], CRC-verified) with hard guards against zip-slip
//!   names, compression-ratio and total-size bombs, and encrypted/zip64
//!   inputs, plus the unvalidating writer the tests and the corpus
//!   generator use;
//! - [`classpath`] — recursive explosion of nested archives into a
//!   classpath assembly with JVM-style first-wins duplicate resolution,
//!   shadowed copies surfaced as [`tabby_core::ShadowedClass`]
//!   diagnostics;
//! - [`stream`] — the bounded-memory lift driver: blobs are fetched in
//!   batches of at most [`IngestLimits::batch_bytes`], lifted with the
//!   same per-class quarantine as `lift_program_tolerant`, and dropped —
//!   peak blob memory is O(batch), never O(corpus);
//! - [`gen`] — deterministic corpus generation (≥100k synthetic classes
//!   packed into generated nested jars/wars) for `bench ingest` and the
//!   proptest battery.
//!
//! Gadget Inspector's "2 GB heap to scan a war" is the anti-goal; the
//! `bench ingest` gate holds [`stream::IngestStats::peak_batch_bytes`]
//! under a fixed budget independent of corpus size.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod classpath;
pub mod crc;
pub mod deflate;
pub mod gen;
pub mod inflate;
pub mod stream;
pub mod zip;

pub use classpath::{class_relative_path, explode, ArchiveClass, ExplodedArchive};
pub use gen::{generate, CorpusLayout, CorpusSpec, GeneratedCorpus};
pub use stream::{
    lift_corpus, lift_plan, plan_corpus, BlobSource, CorpusEntry, CorpusPlan, CorpusReader,
    IngestStats, StreamedLift,
};
pub use zip::{ZipEntry, ZipError, ZipReader, ZipWriter};

/// Hostile-input and memory budgets for the whole ingest pipeline.
///
/// Defaults are generous for legitimate corpora and lethal for bombs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IngestLimits {
    /// Largest single entry (declared uncompressed), bytes.
    pub max_entry_inflated: u64,
    /// Whole-corpus declared inflated total, bytes (summed recursively
    /// over every central directory before anything is inflated).
    pub max_inflated_total: u64,
    /// Declared `uncompressed / compressed` ratio past which a DEFLATE
    /// entry is treated as a zip bomb…
    pub max_compression_ratio: u64,
    /// …but only for entries declaring more than this many bytes (tiny
    /// highly-compressible files are legitimate).
    pub ratio_floor_bytes: u64,
    /// Archive-in-archive nesting depth (top level = 1).
    pub max_nesting_depth: u32,
    /// Streaming lift: flush the batch once it holds this many blob
    /// bytes. The bounded-memory guarantee is O(this), not O(corpus).
    pub batch_bytes: u64,
    /// Streaming lift: flush the batch at this many classes even if tiny.
    pub batch_classes: usize,
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits {
            max_entry_inflated: 64 << 20,
            max_inflated_total: 4 << 30,
            max_compression_ratio: 100,
            ratio_floor_bytes: 4 << 20,
            max_nesting_depth: 4,
            batch_bytes: 32 << 20,
            batch_classes: 4096,
        }
    }
}

/// A structured ingest failure. Archive problems always name the archive
/// (with full `outer!/inner` provenance for nested ones).
#[derive(Debug)]
pub enum IngestError {
    /// A zip-level failure inside `archive`.
    Zip {
        /// Provenance of the failing archive.
        archive: String,
        /// The underlying container error.
        source: ZipError,
    },
    /// Nesting exceeded [`IngestLimits::max_nesting_depth`].
    DepthExceeded {
        /// Provenance of the archive that would have been opened.
        archive: String,
        /// The depth it would have reached.
        depth: u32,
        /// The configured ceiling.
        limit: u32,
    },
    /// Declared inflated total exceeded [`IngestLimits::max_inflated_total`].
    TotalBudget {
        /// The archive whose central directory pushed past the budget.
        archive: String,
        /// Declared total at the point of rejection.
        declared: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// Filesystem-level failure.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Strict mode: the first class that failed to parse or lift.
    StrictLift {
        /// Provenance of the failing class.
        source: String,
        /// The parse/lift error.
        error: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Zip { archive, source } => write!(f, "{archive}: {source}"),
            IngestError::DepthExceeded {
                archive,
                depth,
                limit,
            } => write!(
                f,
                "{archive}: archive nesting depth {depth} exceeds the limit of {limit} (depth bomb?)"
            ),
            IngestError::TotalBudget {
                archive,
                declared,
                limit,
            } => write!(
                f,
                "{archive}: declared inflated total {declared} bytes exceeds the {limit}-byte corpus budget (zip bomb?)"
            ),
            IngestError::Io { path, source } => write!(f, "{path}: {source}"),
            IngestError::StrictLift { source, error } => {
                write!(f, "{source}: {error}")
            }
        }
    }
}

impl std::error::Error for IngestError {}
