//! Minimal raw-DEFLATE *encoders* used by the zip writer and by tests.
//!
//! We never need general-purpose compression — corpora are packed with
//! stored entries for byte-fidelity — but two tiny encoders earn their
//! keep: [`deflate_stored`] wraps bytes in stored blocks so the reader's
//! method-8 path gets exercised end-to-end, and [`deflate_run`] emits a
//! fixed-Huffman run of one repeated byte, which is how the corruption
//! tests craft *genuine* compression-ratio bombs (16 MiB from ~100 KiB)
//! without shipping a bomb fixture in the repo.

/// MSB-first code emitter on top of an LSB-first bit stream — deflate
/// packs header fields LSB-first but Huffman codes MSB-first.
struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    acc_bits: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Writes `n` bits of `value` LSB-first (header fields, extra bits).
    fn bits(&mut self, value: u32, n: u32) {
        self.acc |= value << self.acc_bits;
        self.acc_bits += n;
        while self.acc_bits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.acc_bits -= 8;
        }
    }

    /// Writes an `n`-bit Huffman code MSB-first.
    fn code(&mut self, code: u32, n: u32) {
        for shift in (0..n).rev() {
            self.bits((code >> shift) & 1, 1);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

/// Fixed-Huffman code for a literal/length symbol (RFC 1951 §3.2.6).
fn fixed_litlen(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym, 8),
        144..=255 => (0x190 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0xc0 + (sym - 280), 8),
    }
}

/// Wraps `data` in stored (BTYPE=00) blocks — "compressed" method-8 data
/// that inflates back to exactly `data`.
pub fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 5 + data.len() / 0xffff * 5);
    let mut chunks = data.chunks(0xffff).peekable();
    // An empty input still needs one final stored block.
    if data.is_empty() {
        return vec![0x01, 0x00, 0x00, 0xff, 0xff];
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        out.push(u8::from(last));
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// Emits a fixed-Huffman (BTYPE=01) stream that inflates to `count`
/// copies of `byte`. Compression is extreme — each 258-byte repeat costs
/// 13 bits — which is exactly what a ratio-bomb test needs.
pub fn deflate_run(byte: u8, count: usize) -> Vec<u8> {
    let mut w = BitWriter::new();
    // BFINAL=1, BTYPE=01.
    w.bits(1, 1);
    w.bits(1, 2);
    let mut remaining = count;
    if remaining > 0 {
        // Seed literal for the back-reference to copy from.
        let (code, n) = fixed_litlen(u32::from(byte));
        w.code(code, n);
        remaining -= 1;
    }
    // Symbol 285 = length 258, distance symbol 0 = distance 1 (5-bit code
    // 00000): copies the seed byte forward 258 bytes at a time.
    while remaining >= 258 {
        let (code, n) = fixed_litlen(285);
        w.code(code, n);
        w.code(0, 5);
        remaining -= 258;
    }
    // Tail shorter than the minimum match: plain literals.
    for _ in 0..remaining {
        let (code, n) = fixed_litlen(u32::from(byte));
        w.code(code, n);
    }
    // End of block (symbol 256).
    let (code, n) = fixed_litlen(256);
    w.code(code, n);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn stored_empty_round_trip() {
        assert_eq!(inflate(&deflate_stored(b""), 1 << 10).unwrap(), b"");
    }

    #[test]
    fn stored_multi_block_round_trip() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(inflate(&deflate_stored(&data), 1 << 20).unwrap(), data);
    }

    #[test]
    fn run_ratio_exceeds_one_hundred() {
        let compressed = deflate_run(0, 16 << 20);
        let ratio = (16u64 << 20) / compressed.len() as u64;
        assert!(ratio > 100, "ratio only {ratio}");
    }
}
