//! Raw DEFLATE (RFC 1951) decompression with a hard output budget.
//!
//! Zip method 8 stores raw deflate streams (no zlib header). This decoder
//! is deliberately small and allocation-light — stored blocks, fixed
//! Huffman, and dynamic Huffman, decoded with the canonical
//! count/first/index walk (the `puff` algorithm) — because its one job is
//! lifting class files out of jars, and its one hard requirement is that a
//! compression bomb can never inflate past the caller's budget: the
//! `max_out` cap is enforced on every produced byte, mid-stream, so a
//! 10 GB bomb aborts after `max_out` bytes, not after 10 GB.

/// Why a deflate stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// The stream ended mid-block.
    UnexpectedEof,
    /// Structurally invalid data (bad block type, over-subscribed Huffman
    /// code, distance past the start of output, …).
    Malformed(&'static str),
    /// The output grew past the caller's budget. Carries the number of
    /// bytes produced when the cap was hit.
    OutputBudget(u64),
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InflateError::UnexpectedEof => write!(f, "deflate stream ended unexpectedly"),
            InflateError::Malformed(what) => write!(f, "malformed deflate stream: {what}"),
            InflateError::OutputBudget(produced) => {
                write!(f, "inflated output exceeded its budget at {produced} bytes")
            }
        }
    }
}

impl std::error::Error for InflateError {}

const MAX_BITS: usize = 15;
/// Literal/length alphabet size.
const MAX_LCODES: usize = 286;
/// Distance alphabet size.
const MAX_DCODES: usize = 30;

/// Length-symbol (257..=285) base lengths.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Length-symbol extra bits.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-symbol base distances.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Distance-symbol extra bits.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order the code-length code lengths are transmitted in.
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// A canonical Huffman code: symbol counts per bit length plus the symbols
/// sorted by (length, symbol) — everything the count/first/index decode
/// walk needs.
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds the canonical code for `lengths` (0 = symbol unused).
    fn new(lengths: &[u8]) -> Result<Huffman, InflateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            return Err(InflateError::Malformed("Huffman code with no symbols"));
        }
        // Over-subscription check (an incomplete code is tolerated only for
        // the degenerate one-symbol distance codes; strictness here matches
        // zlib's default).
        let mut left = 1i32;
        for len in 1..=MAX_BITS {
            left <<= 1;
            left -= i32::from(count[len]);
            if left < 0 {
                return Err(InflateError::Malformed("over-subscribed Huffman code"));
            }
        }
        let mut offsets = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len];
        }
        let mut symbol = vec![0u16; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offsets[len as usize] as usize] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { count, symbol })
    }
}

/// LSB-first bit reader over the compressed slice.
struct Bits<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bit accumulator and its fill level.
    acc: u32,
    acc_bits: u32,
}

impl<'a> Bits<'a> {
    fn new(data: &'a [u8]) -> Bits<'a> {
        Bits {
            data,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Reads `n` bits (n ≤ 16), LSB first.
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        while self.acc_bits < n {
            let byte = *self.data.get(self.pos).ok_or(InflateError::UnexpectedEof)?;
            self.acc |= u32::from(byte) << self.acc_bits;
            self.acc_bits += 8;
            self.pos += 1;
        }
        let out = self.acc & ((1u32 << n) - 1);
        self.acc >>= n;
        self.acc_bits -= n;
        Ok(out)
    }

    /// Decodes one symbol of `h` bit-by-bit (codes are MSB-first in the
    /// stream).
    fn decode(&mut self, h: &Huffman) -> Result<u16, InflateError> {
        let mut code = 0u32;
        let mut first = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_BITS {
            code |= self.bits(1)?;
            let cnt = u32::from(h.count[len]);
            if code < first + cnt {
                return Ok(h.symbol[(index + (code - first)) as usize]);
            }
            index += cnt;
            first += cnt;
            first <<= 1;
            code <<= 1;
        }
        Err(InflateError::Malformed("code longer than 15 bits"))
    }

    /// Discards partial bits and returns the current byte offset (stored
    /// blocks are byte-aligned).
    fn align(&mut self) -> usize {
        // Any buffered whole bytes move the logical position back.
        let buffered = (self.acc_bits / 8) as usize;
        self.acc = 0;
        self.acc_bits = 0;
        self.pos - buffered
    }
}

/// Appends one output byte, enforcing the budget.
#[inline]
fn push(out: &mut Vec<u8>, max_out: u64, byte: u8) -> Result<(), InflateError> {
    if out.len() as u64 >= max_out {
        return Err(InflateError::OutputBudget(out.len() as u64));
    }
    out.push(byte);
    Ok(())
}

/// Decompresses a raw deflate stream, producing at most `max_out` bytes.
///
/// # Errors
///
/// [`InflateError::OutputBudget`] the moment output would exceed
/// `max_out`; [`InflateError::Malformed`] / [`InflateError::UnexpectedEof`]
/// on structurally bad data.
pub fn inflate(data: &[u8], max_out: u64) -> Result<Vec<u8>, InflateError> {
    let mut bits = Bits::new(data);
    let mut out = Vec::new();
    loop {
        let last = bits.bits(1)? == 1;
        match bits.bits(2)? {
            0 => {
                // Stored block: LEN / NLEN then raw bytes.
                let at = bits.align();
                let header = data.get(at..at + 4).ok_or(InflateError::UnexpectedEof)?;
                let len = u16::from_le_bytes([header[0], header[1]]) as usize;
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if nlen != !u16::from_le_bytes([header[0], header[1]]) {
                    return Err(InflateError::Malformed("stored block LEN/NLEN mismatch"));
                }
                let payload = data
                    .get(at + 4..at + 4 + len)
                    .ok_or(InflateError::UnexpectedEof)?;
                for &b in payload {
                    push(&mut out, max_out, b)?;
                }
                bits.pos = at + 4 + len;
            }
            1 => {
                let (litlen, dist) = fixed_tables();
                inflate_block(&mut bits, &litlen, &dist, &mut out, max_out)?;
            }
            2 => {
                let (litlen, dist) = dynamic_tables(&mut bits)?;
                inflate_block(&mut bits, &litlen, &dist, &mut out, max_out)?;
            }
            _ => return Err(InflateError::Malformed("reserved block type 11")),
        }
        if last {
            return Ok(out);
        }
    }
}

/// The fixed-Huffman tables of BTYPE=01.
fn fixed_tables() -> (Huffman, Huffman) {
    let mut lengths = [0u8; 288];
    for (sym, len) in lengths.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let litlen = Huffman::new(&lengths).unwrap_or_else(|_| unreachable!("fixed code is valid"));
    let dist =
        Huffman::new(&[5u8; 30]).unwrap_or_else(|_| unreachable!("fixed distance code is valid"));
    (litlen, dist)
}

/// Reads the dynamic-Huffman header of BTYPE=10.
fn dynamic_tables(bits: &mut Bits<'_>) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = bits.bits(5)? as usize + 257;
    let hdist = bits.bits(5)? as usize + 1;
    let hclen = bits.bits(4)? as usize + 4;
    if hlit > MAX_LCODES || hdist > MAX_DCODES {
        return Err(InflateError::Malformed("too many litlen/dist codes"));
    }
    let mut clen_lengths = [0u8; 19];
    for &slot in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[slot] = bits.bits(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = bits.decode(&clen)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::Malformed("repeat with no previous length"));
                }
                let prev = lengths[i - 1];
                let n = 3 + bits.bits(2)? as usize;
                for _ in 0..n {
                    if i >= lengths.len() {
                        return Err(InflateError::Malformed("length repeat overflows"));
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 | 18 => {
                let n = if sym == 17 {
                    3 + bits.bits(3)? as usize
                } else {
                    11 + bits.bits(7)? as usize
                };
                if i + n > lengths.len() {
                    return Err(InflateError::Malformed("zero repeat overflows"));
                }
                i += n;
            }
            _ => return Err(InflateError::Malformed("bad code-length symbol")),
        }
    }
    if lengths[256] == 0 {
        return Err(InflateError::Malformed("no end-of-block code"));
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// Decodes one compressed block's symbols into `out`.
fn inflate_block(
    bits: &mut Bits<'_>,
    litlen: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
    max_out: u64,
) -> Result<(), InflateError> {
    loop {
        let sym = bits.decode(litlen)?;
        match sym {
            0..=255 => push(out, max_out, sym as u8)?,
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len =
                    LENGTH_BASE[idx] as usize + bits.bits(u32::from(LENGTH_EXTRA[idx]))? as usize;
                let dsym = bits.decode(dist)? as usize;
                if dsym >= MAX_DCODES {
                    return Err(InflateError::Malformed("bad distance symbol"));
                }
                let distance =
                    DIST_BASE[dsym] as usize + bits.bits(u32::from(DIST_EXTRA[dsym]))? as usize;
                if distance > out.len() {
                    return Err(InflateError::Malformed("distance past start of output"));
                }
                for _ in 0..len {
                    let byte = out[out.len() - distance];
                    push(out, max_out, byte)?;
                }
            }
            _ => return Err(InflateError::Malformed("bad literal/length symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_run, deflate_stored};

    #[test]
    fn stored_round_trip() {
        let data = b"hello stored world".to_vec();
        let compressed = deflate_stored(&data);
        assert_eq!(inflate(&compressed, 1 << 20).unwrap(), data);
    }

    #[test]
    fn fixed_run_round_trip() {
        for count in [1usize, 2, 3, 257, 258, 259, 300, 1000, 10_000] {
            let compressed = deflate_run(0x41, count);
            let out = inflate(&compressed, 1 << 24).unwrap();
            assert_eq!(out.len(), count, "count {count}");
            assert!(out.iter().all(|&b| b == 0x41));
        }
    }

    #[test]
    fn budget_stops_bombs_mid_stream() {
        // 16 MiB of zeros from a few tens of KB of compressed data; a
        // 1 MiB budget must abort long before the full expansion.
        let bomb = deflate_run(0, 16 << 20);
        assert!(bomb.len() < 256 << 10, "bomb is small: {}", bomb.len());
        match inflate(&bomb, 1 << 20) {
            Err(InflateError::OutputBudget(produced)) => assert_eq!(produced, 1 << 20),
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_eof() {
        let compressed = deflate_run(7, 1000);
        let truncated = &compressed[..compressed.len() / 2];
        assert!(matches!(
            inflate(truncated, 1 << 20),
            Err(InflateError::UnexpectedEof) | Err(InflateError::Malformed(_))
        ));
    }
}
