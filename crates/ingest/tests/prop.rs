//! Property tests for the archive pipeline: anything the writer packs,
//! the reader hands back byte-identical; and a corpus lifted out of a
//! generated jar is the same program as the corpus lifted from the
//! equivalent unpacked tree.

use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;
use tabby_core::collect_inputs;
use tabby_ingest::zip::{build_zip, ZipReader};
use tabby_ingest::{lift_corpus, IngestLimits, StreamedLift};
use tabby_ir::compile::compile_program;
use tabby_ir::{JType, Program, ProgramBuilder};

/// Valid class-entry names: 1–3 lowercase path components, `.class` leaf.
fn entry_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{1,8}(/[a-z]{1,8}){0,2}\\.class").expect("valid regex")
}

/// A deterministic little program: `n` serializable classes, each with a
/// `run()` method, chained by virtual calls so the lift exercises call
/// resolution, not just parsing.
fn make_program(seed: u64, n: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    let names: Vec<String> = (0..n).map(|i| format!("p{seed}.C{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        let mut cb = pb.class(name);
        cb.serializable_in_place();
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("run", vec![obj.clone()], JType::Void);
        if let Some(next) = names.get(i + 1) {
            let sig = mb.sig(next, "run", &[obj.clone()], JType::Void);
            let recv = mb.fresh();
            mb.new_with_ctor(recv, next, &[], &[]);
            let arg = mb.param(0);
            mb.call_virtual(None, recv, sig, &[arg.into()]);
        }
        mb.ret_void();
        mb.finish();
        cb.finish();
    }
    pb.build()
}

/// Collision-free scratch directory.
fn scratch(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tabby-ingest-prop-{tag}-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Stable fingerprint of a lifted program: sorted FQCNs with their
/// method names. Identical fingerprints mean the same classes lifted
/// with the same members, independent of input packaging.
fn fingerprint(lift: &StreamedLift) -> Vec<(String, Vec<String>)> {
    let program = &lift.program;
    let interner = program.interner();
    let mut out: Vec<(String, Vec<String>)> = program
        .classes()
        .iter()
        .map(|c| {
            let mut methods: Vec<String> = c
                .methods
                .iter()
                .map(|m| interner.resolve(m.name).to_owned())
                .collect();
            methods.sort();
            (interner.resolve(c.name).to_owned(), methods)
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Writer → reader round trip: every packed entry reads back
    /// byte-identical, in order, under the default limits.
    #[test]
    fn packed_entries_read_back_byte_identical(
        entries in proptest::collection::btree_map(
            entry_name(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            1..16,
        )
    ) {
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(n, b)| (n.as_str(), b.as_slice()))
            .collect();
        let bytes = build_zip(&refs).expect("writable entries");
        let mut reader = ZipReader::open(Cursor::new(bytes)).expect("reopens");
        prop_assert_eq!(reader.entries().len(), entries.len());
        let limits = IngestLimits::default();
        for (i, (name, data)) in entries.iter().enumerate() {
            prop_assert_eq!(&reader.entries()[i].name, name);
            prop_assert_eq!(&reader.read_entry(i, &limits).expect("readable"), data);
        }
    }

    /// Assembler classes packed into a jar lift to the same program as
    /// the identical bytes written as a loose `.class` tree — same
    /// classes, same methods, same quarantine count, same byte hashes.
    #[test]
    fn jar_lift_matches_tree_lift(seed in 0u64..512, n in 1usize..5) {
        let compiled = compile_program(&make_program(seed, n));
        prop_assert_eq!(compiled.len(), n);

        let root = scratch("jar-vs-tree", seed);
        let tree = root.join("tree");
        std::fs::create_dir_all(&tree).expect("tree dir");
        let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
        for (name, bytes) in &compiled {
            let leaf = format!("{}.class", name.replace('.', "_"));
            std::fs::write(tree.join(&leaf), bytes).expect("tree class");
            entries.push((leaf, bytes.clone()));
        }
        entries.sort();
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(l, b)| (l.as_str(), b.as_slice()))
            .collect();
        let jar = root.join("corpus.jar");
        std::fs::write(&jar, build_zip(&refs).expect("packable")).expect("jar");

        let limits = IngestLimits::default();
        let from_tree = lift_corpus(
            &collect_inputs(std::slice::from_ref(&tree), true).expect("tree inputs"),
            &limits,
            true,
        )
        .expect("tree lifts");
        let from_jar = lift_corpus(
            &collect_inputs(std::slice::from_ref(&jar), true).expect("jar inputs"),
            &limits,
            true,
        )
        .expect("jar lifts");

        prop_assert_eq!(fingerprint(&from_tree), fingerprint(&from_jar));
        prop_assert_eq!(from_tree.skipped.len(), 0);
        prop_assert_eq!(from_jar.skipped.len(), 0);
        prop_assert_eq!(from_jar.stats.classes_lifted, n);
        // Same bytes under different provenance labels: the hash
        // multisets agree even though the labels cannot.
        let mut tree_hashes: Vec<u64> =
            from_tree.class_hashes.iter().map(|(_, h)| *h).collect();
        let mut jar_hashes: Vec<u64> =
            from_jar.class_hashes.iter().map(|(_, h)| *h).collect();
        tree_hashes.sort_unstable();
        jar_hashes.sort_unstable();
        prop_assert_eq!(tree_hashes, jar_hashes);
        // Jar provenance is `corpus.jar!/entry` for every class.
        for (label, _) in &from_jar.class_hashes {
            prop_assert!(label.contains("corpus.jar!/"), "label: {label}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
