//! Degraded-mode scan diagnostics.
//!
//! Real-world corpora (§IV of the paper) contain truncated, obfuscated, and
//! malformed class files. Instead of aborting a multi-thousand-class job on
//! the first bad input, the pipeline quarantines the offending class or
//! method, keeps going with the survivors, and records what was lost here.
//! The report travels with [`crate::Cpg`]-level results through
//! `ScanReport`, the service protocol, and the CLI, so a degraded scan is
//! always visibly degraded rather than silently incomplete.

use serde::{Deserialize, Serialize};

/// One class that failed to parse or lift and was dropped from the scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedClass {
    /// Where the blob came from: a file path for disk scans, or
    /// `blob[<index>]` for in-memory byte scans.
    pub source: String,
    /// Fully-qualified class name, when the header parsed far enough to
    /// recover it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub class_name: Option<String>,
    /// FNV-1a hash of the raw bytes, for locating the blob without a name.
    pub byte_hash: u64,
    /// Human-readable parse/lift error (or panic payload).
    pub error: String,
}

/// One duplicate class dropped by JVM-style first-wins classpath
/// resolution during archive ingestion. Informational — shadowing is
/// normal on real classpaths (fat jars routinely carry duplicate
/// `module-info` or shaded copies), so this does **not** make a scan
/// [`ScanDiagnostics::is_degraded`]; it is surfaced so "why didn't my
/// patched class take effect" has an answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowedClass {
    /// Class-relative path, e.g. `com/example/Foo.class`.
    pub class: String,
    /// Provenance of the copy that won (first on the classpath), e.g.
    /// `app.war!/WEB-INF/classes/com/example/Foo.class`.
    pub kept: String,
    /// Provenance of the dropped copy.
    pub shadowed: String,
}

/// One method whose summarization panicked and was replaced by a sound
/// identity summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedMethod {
    /// `Class.method` as the describe-method printer renders it.
    pub method: String,
    /// The contained panic's payload.
    pub error: String,
}

/// What happened to a persisted artifact that misbehaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ArtifactFaultKind {
    /// A corrupt on-disk artifact (bad envelope checksum, truncation,
    /// format skew) was moved to the `quarantine/` sibling directory and
    /// the result recomputed from scratch.
    Quarantined,
    /// A best-effort persist failed (e.g. disk full); the in-memory result
    /// is unaffected but the artifact was not cached to disk.
    WriteFailed,
}

/// One persisted-artifact fault encountered while serving a scan: a
/// corrupt cache/registry file quarantined on read, or a failed disk
/// write. Informational — the served result is recomputed and complete,
/// so these do **not** make a scan [`ScanDiagnostics::is_degraded`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactFault {
    /// The artifact's on-disk path.
    pub path: String,
    /// Whether it was quarantined on read or failed to write.
    pub kind: ArtifactFaultKind,
    /// Human-readable cause (envelope verification error, I/O error).
    pub detail: String,
}

/// Everything a scan gave up on: the degraded-mode report.
///
/// All-empty/false means the scan was complete and exact; anything else
/// means the chain set is a lower bound (quarantined code was not searched)
/// and should be read together with [`ScanDiagnostics::is_degraded`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanDiagnostics {
    /// Classes dropped at the lift phase.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub skipped_classes: Vec<SkippedClass>,
    /// Methods whose controllability summary panicked and was replaced by
    /// an identity summary.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub quarantined_methods: Vec<QuarantinedMethod>,
    /// Methods whose controllability fixpoint hit its iteration/step/deadline
    /// budget and kept a partial (still sound, possibly imprecise) summary.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub fixpoint_truncations: usize,
    /// The backward chain search hit its expansion budget or deadline and
    /// returned a partial chain set.
    #[serde(default, skip_serializing_if = "is_false")]
    pub search_truncated: bool,
    /// States the backward chain search expanded. Informational (it sizes
    /// the search against its expansion budget); not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub search_expansions: usize,
    /// Expansions the search skipped because a dominating
    /// `(method, Trigger_Condition)` memo entry proved them chain-free.
    /// Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub search_memo_hits: usize,
    /// Topological waves the SCC-wave summarization scheduler ran.
    /// Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub summarize_waves: usize,
    /// Methods in the largest recursion SCC the scheduler condensed.
    /// Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub summarize_largest_scc: usize,
    /// Distinct method summaries the scheduler computed (on a warm
    /// incremental re-scan this is the dirty cone, not the whole program).
    /// Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub summaries_computed: usize,
    /// Methods with bodies in the scanned program — the denominator for
    /// `summaries_computed`. Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub methods_with_bodies: usize,
    /// Persisted artifacts quarantined or left unwritten while serving
    /// this scan. Informational; not a degradation — the served chain set
    /// is recomputed and complete.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub artifact_faults: Vec<ArtifactFault>,
    /// Duplicate classes dropped by first-wins classpath resolution while
    /// exploding archives. Informational; not a degradation.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shadowed_classes: Vec<ShadowedClass>,
    /// Chains the witness stage confirmed by interpretation (`witnessed`).
    /// Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub chains_witnessed: usize,
    /// Chains with a synthesized plan that execution did not confirm
    /// (`plan-found`). Informational; not a degradation.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub chains_plan_found: usize,
    /// Chains whose witness interpretation panicked and was contained
    /// (degraded to `static-only`). Informational — the chain set itself is
    /// unaffected, only its ranking is coarser.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub witness_failures: usize,
}

fn is_zero(n: &usize) -> bool {
    *n == 0
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(b: &bool) -> bool {
    !*b
}

impl ScanDiagnostics {
    /// True when any phase degraded: classes skipped, methods quarantined,
    /// or a budget truncation anywhere.
    pub fn is_degraded(&self) -> bool {
        !self.skipped_classes.is_empty()
            || !self.quarantined_methods.is_empty()
            || self.fixpoint_truncations > 0
            || self.search_truncated
    }

    /// Folds another report into this one (e.g. lift-phase + analysis-phase
    /// diagnostics collected separately).
    pub fn merge(&mut self, other: ScanDiagnostics) {
        self.skipped_classes.extend(other.skipped_classes);
        self.quarantined_methods.extend(other.quarantined_methods);
        self.fixpoint_truncations += other.fixpoint_truncations;
        self.search_truncated |= other.search_truncated;
        self.search_expansions += other.search_expansions;
        self.search_memo_hits += other.search_memo_hits;
        self.summarize_waves = self.summarize_waves.max(other.summarize_waves);
        self.summarize_largest_scc = self.summarize_largest_scc.max(other.summarize_largest_scc);
        self.summaries_computed += other.summaries_computed;
        self.methods_with_bodies += other.methods_with_bodies;
        self.artifact_faults.extend(other.artifact_faults);
        self.shadowed_classes.extend(other.shadowed_classes);
        self.chains_witnessed += other.chains_witnessed;
        self.chains_plan_found += other.chains_plan_found;
        self.witness_failures += other.witness_failures;
    }

    /// One-line human summary, e.g.
    /// `degraded: 2 classes skipped, 1 method quarantined, search truncated`.
    pub fn summary(&self) -> String {
        if !self.is_degraded() {
            if self.artifact_faults.is_empty() {
                return "complete".to_owned();
            }
            return format!("complete ({} artifact faults)", self.artifact_faults.len());
        }
        let mut parts = Vec::new();
        if !self.skipped_classes.is_empty() {
            parts.push(format!("{} classes skipped", self.skipped_classes.len()));
        }
        if !self.quarantined_methods.is_empty() {
            parts.push(format!(
                "{} methods quarantined",
                self.quarantined_methods.len()
            ));
        }
        if self.fixpoint_truncations > 0 {
            parts.push(format!("{} fixpoints truncated", self.fixpoint_truncations));
        }
        if self.search_truncated {
            parts.push("search truncated".to_owned());
        }
        format!("degraded: {}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_complete() {
        let d = ScanDiagnostics::default();
        assert!(!d.is_degraded());
        assert_eq!(d.summary(), "complete");
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = ScanDiagnostics {
            skipped_classes: vec![SkippedClass {
                source: "blob[0]".into(),
                class_name: None,
                byte_hash: 7,
                error: "bad magic".into(),
            }],
            ..ScanDiagnostics::default()
        };
        a.merge(ScanDiagnostics {
            quarantined_methods: vec![QuarantinedMethod {
                method: "A.m".into(),
                error: "boom".into(),
            }],
            fixpoint_truncations: 2,
            search_truncated: true,
            ..ScanDiagnostics::default()
        });
        assert!(a.is_degraded());
        let s = a.summary();
        assert!(s.contains("1 classes skipped"), "{s}");
        assert!(s.contains("1 methods quarantined"), "{s}");
        assert!(s.contains("2 fixpoints truncated"), "{s}");
        assert!(s.contains("search truncated"), "{s}");
    }

    #[test]
    fn serde_omits_empty_fields_and_defaults_on_read() {
        let line = serde_json::to_string(&ScanDiagnostics::default()).unwrap();
        assert_eq!(line, "{}");
        let back: ScanDiagnostics = serde_json::from_str("{}").unwrap();
        assert_eq!(back, ScanDiagnostics::default());
    }
}
