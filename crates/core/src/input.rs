//! Shared input classification for scan entry points.
//!
//! The CLI (`tabby scan/snapshot/query/submit`) and the daemon engine used
//! to carry two hand-rolled copies of "walk these paths, find `.class`
//! files, complain about jars" whose wording and semantics drifted. This
//! module is the single source of truth: both sides classify paths the
//! same way, both collect the same `(class files, archives)` split, and
//! the legacy jar-rejection message — still reachable through
//! `--no-archives` for callers that want pre-ingestion behavior — has
//! exactly one home.

use std::path::{Path, PathBuf};

/// Archive extensions treated as zip containers (case-insensitive).
pub const ARCHIVE_EXTENSIONS: [&str; 3] = ["jar", "war", "zip"];

/// How one filesystem path participates in a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// A loose `.class` file.
    ClassFile,
    /// A zip container (`.jar`, `.war`, `.zip`) for the ingest pipeline.
    Archive,
    /// A directory to walk recursively.
    Directory,
    /// Anything else (skipped or rejected depending on the caller).
    Other,
}

/// True when the file name has an archive extension.
pub fn is_archive_name(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| ARCHIVE_EXTENSIONS.iter().any(|a| e.eq_ignore_ascii_case(a)))
}

/// True when the file name has a `.class` extension.
pub fn is_class_name(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("class"))
}

/// Classifies a path by name and directory-ness. `is_dir` is passed in so
/// callers that already statted the path do not pay a second syscall.
pub fn classify(path: &Path, is_dir: bool) -> InputKind {
    if is_dir {
        InputKind::Directory
    } else if is_class_name(path) {
        InputKind::ClassFile
    } else if is_archive_name(path) {
        InputKind::Archive
    } else {
        InputKind::Other
    }
}

/// The `(class files, archives)` split of an input walk, in sorted
/// deterministic order.
#[derive(Debug, Default, Clone)]
pub struct CollectedInputs {
    /// Loose `.class` files, explicit or found under directories.
    pub class_files: Vec<PathBuf>,
    /// Archives, explicit or found under directories, for the ingest
    /// pipeline (or for the legacy rejection under `--no-archives`).
    pub archives: Vec<PathBuf>,
}

impl CollectedInputs {
    /// True when the walk found nothing scannable at all.
    pub fn is_empty(&self) -> bool {
        self.class_files.is_empty() && self.archives.is_empty()
    }
}

/// Recursively collects `.class` files and archives under `paths`.
///
/// Every explicitly named path must exist — a typo is an error, not an
/// empty scan. Directory walks are sorted for determinism and selective:
/// subdirectories, `.class` files, and archives are visited, everything
/// else is skipped. For explicitly named files that are neither classes
/// nor archives, `strict` decides between a structured error (the daemon
/// contract) and silently skipping (the CLI's historical behavior).
///
/// # Errors
///
/// A human-readable message naming the offending path.
pub fn collect_inputs(paths: &[PathBuf], strict: bool) -> Result<CollectedInputs, String> {
    let mut out = CollectedInputs::default();
    for path in paths {
        let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
        match classify(path, meta.is_dir()) {
            InputKind::Directory => walk_dir(path, &mut out)?,
            InputKind::ClassFile => out.class_files.push(path.clone()),
            InputKind::Archive => out.archives.push(path.clone()),
            InputKind::Other => {
                if strict {
                    return Err(format!(
                        "{}: not a .class file, archive (.jar/.war/.zip), or directory",
                        path.display()
                    ));
                }
            }
        }
    }
    out.class_files.sort();
    out.class_files.dedup();
    out.archives.sort();
    out.archives.dedup();
    Ok(out)
}

fn walk_dir(dir: &Path, out: &mut CollectedInputs) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children = Vec::new();
    for entry in entries {
        children.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    children.sort();
    for child in children {
        if child.is_dir() {
            walk_dir(&child, out)?;
        } else if is_class_name(&child) {
            out.class_files.push(child);
        } else if is_archive_name(&child) {
            out.archives.push(child);
        }
    }
    Ok(())
}

/// The pre-ingestion jar-rejection message, kept verbatim for
/// `--no-archives` callers and for tests that pin the wording.
pub fn archives_unsupported_error(archives: &[PathBuf]) -> String {
    let listed: Vec<String> = archives.iter().map(|p| p.display().to_string()).collect();
    format!(
        "found {} archive(s) ({}): jars are unsupported and must be unpacked (e.g. with \
         `unzip` or `jar xf`) before scanning the extracted .class files \
         (archive ingestion disabled by --no-archives)",
        archives.len(),
        listed.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_extension() {
        assert_eq!(classify(Path::new("A.class"), false), InputKind::ClassFile);
        assert_eq!(classify(Path::new("a.jar"), false), InputKind::Archive);
        assert_eq!(classify(Path::new("A.WAR"), false), InputKind::Archive);
        assert_eq!(classify(Path::new("a.zip"), false), InputKind::Archive);
        assert_eq!(classify(Path::new("a.txt"), false), InputKind::Other);
        assert_eq!(classify(Path::new("a.jar"), true), InputKind::Directory);
    }

    #[test]
    fn walk_splits_classes_and_archives() {
        let dir = std::env::temp_dir().join(format!("tabby-input-test-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("A.class"), b"x").unwrap();
        std::fs::write(dir.join("sub/lib.jar"), b"x").unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        let got = collect_inputs(&[dir.clone()], true).unwrap();
        assert_eq!(got.class_files.len(), 1);
        assert_eq!(got.archives.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_path_is_an_error() {
        let err = collect_inputs(&[PathBuf::from("/nonexistent/x.class")], false).unwrap_err();
        assert!(err.contains("/nonexistent/x.class"), "{err}");
    }

    #[test]
    fn legacy_rejection_wording_is_stable() {
        let msg = archives_unsupported_error(&[PathBuf::from("a.jar")]);
        assert!(
            msg.contains("jars are unsupported and must be unpacked"),
            "{msg}"
        );
    }
}
