//! Code Property Graph construction (§III-B).
//!
//! The CPG is assembled from three sub-graphs over Class and Method nodes:
//!
//! - **ORG** (Object Relationship Graph): `EXTEND`, `INTERFACE`, and `HAS`
//!   edges from the extracted class information;
//! - **PCG** (Precise Call Graph): `CALL` edges from the controllability
//!   analysis, each carrying its `POLLUTED_POSITION`; uncontrollable calls
//!   (all-∞ PP) are pruned unless configured otherwise;
//! - **MAG** (Method Alias Graph): `ALIAS` edges from an overriding method
//!   to the nearest declaration in a supertype (Formula 1).
//!
//! Calls to classes outside the analyzed set produce *phantom* nodes (as
//! Soot does), so sink methods such as `java.lang.Runtime.exec` are present
//! even when the JDK model is not loaded.

use crate::config::AnalysisConfig;
use crate::controllability::Analyzer;
use crate::weight::pp_to_ints;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tabby_graph::{EdgeType, Graph, Label, NodeId, PropKey, Value};
use tabby_ir::{method_descriptor, ClassId, InvokeKind, MethodId, Program, Symbol};

/// Property-key and label handles of the CPG schema, pre-interned so the
/// analysis layers never pay string lookups.
#[derive(Debug, Clone, Copy)]
pub struct CpgSchema {
    /// `Class` node label.
    pub class_label: Label,
    /// `Method` node label.
    pub method_label: Label,
    /// `EXTEND` edge type (Table II).
    pub extend: EdgeType,
    /// `INTERFACE` edge type.
    pub interface: EdgeType,
    /// `HAS` edge type.
    pub has: EdgeType,
    /// `CALL` edge type.
    pub call: EdgeType,
    /// `ALIAS` edge type.
    pub alias: EdgeType,
    /// Simple name (`readObject`).
    pub name: PropKey,
    /// Owning class name on method nodes.
    pub class_name: PropKey,
    /// Full signature `class.name(desc)`.
    pub signature: PropKey,
    /// Number of declared parameters.
    pub param_count: PropKey,
    /// Whether the method is static.
    pub is_static: PropKey,
    /// Whether the method is abstract (no body).
    pub is_abstract: PropKey,
    /// Whether the owning class is serializable.
    pub is_serializable: PropKey,
    /// Whether the class node is an interface.
    pub is_interface: PropKey,
    /// Whether the node is a phantom (outside the analyzed set).
    pub is_phantom: PropKey,
    /// `POLLUTED_POSITION` on CALL edges (paper encoding, -1 = ∞).
    pub polluted_position: PropKey,
    /// Invoke kind on CALL edges.
    pub invoke_kind: PropKey,
    /// Caller statement index on CALL edges.
    pub stmt_index: PropKey,
    /// The method's `ACTION` summary, rendered with the paper's names.
    pub action: PropKey,
}

impl CpgSchema {
    /// Interns the schema into `graph` and declares the standard indexes.
    /// Public so hand-built graphs (e.g. the Fig. 6 example) can share the
    /// schema with the path finder.
    pub fn install(graph: &mut Graph) -> Self {
        let schema = Self {
            class_label: graph.label("Class"),
            method_label: graph.label("Method"),
            extend: graph.edge_type("EXTEND"),
            interface: graph.edge_type("INTERFACE"),
            has: graph.edge_type("HAS"),
            call: graph.edge_type("CALL"),
            alias: graph.edge_type("ALIAS"),
            name: graph.prop_key("NAME"),
            class_name: graph.prop_key("CLASS_NAME"),
            signature: graph.prop_key("SIGNATURE"),
            param_count: graph.prop_key("PARAM_COUNT"),
            is_static: graph.prop_key("IS_STATIC"),
            is_abstract: graph.prop_key("IS_ABSTRACT"),
            is_serializable: graph.prop_key("IS_SERIALIZABLE"),
            is_interface: graph.prop_key("IS_INTERFACE"),
            is_phantom: graph.prop_key("IS_PHANTOM"),
            polluted_position: graph.prop_key("POLLUTED_POSITION"),
            invoke_kind: graph.prop_key("INVOKE_KIND"),
            stmt_index: graph.prop_key("STMT_INDEX"),
            action: graph.prop_key("ACTION"),
        };
        graph.create_index(schema.method_label, schema.name);
        graph.create_index(schema.method_label, schema.signature);
        graph.create_index(schema.class_label, schema.name);
        schema
    }

    /// Recovers the schema ids from a graph that already carries the CPG
    /// vocabulary — e.g. one deserialized from a cache — without mutating
    /// it. Returns `None` if any label, edge type, or property key is
    /// missing (i.e. the graph was not built by [`CpgSchema::install`]).
    pub fn lookup(graph: &Graph) -> Option<Self> {
        Some(Self {
            class_label: graph.get_label("Class")?,
            method_label: graph.get_label("Method")?,
            extend: graph.get_edge_type("EXTEND")?,
            interface: graph.get_edge_type("INTERFACE")?,
            has: graph.get_edge_type("HAS")?,
            call: graph.get_edge_type("CALL")?,
            alias: graph.get_edge_type("ALIAS")?,
            name: graph.get_prop_key("NAME")?,
            class_name: graph.get_prop_key("CLASS_NAME")?,
            signature: graph.get_prop_key("SIGNATURE")?,
            param_count: graph.get_prop_key("PARAM_COUNT")?,
            is_static: graph.get_prop_key("IS_STATIC")?,
            is_abstract: graph.get_prop_key("IS_ABSTRACT")?,
            is_serializable: graph.get_prop_key("IS_SERIALIZABLE")?,
            is_interface: graph.get_prop_key("IS_INTERFACE")?,
            is_phantom: graph.get_prop_key("IS_PHANTOM")?,
            polluted_position: graph.get_prop_key("POLLUTED_POSITION")?,
            invoke_kind: graph.get_prop_key("INVOKE_KIND")?,
            stmt_index: graph.get_prop_key("STMT_INDEX")?,
            action: graph.get_prop_key("ACTION")?,
        })
    }
}

/// Size and timing statistics of one CPG build (the quantities Table VIII
/// reports).
#[derive(Debug, Clone, Default)]
pub struct CpgStats {
    /// Class nodes (including phantoms).
    pub class_nodes: usize,
    /// Method nodes (including phantoms).
    pub method_nodes: usize,
    /// Total relationship edges.
    pub relationship_edges: usize,
    /// Phantom method nodes created for out-of-set callees.
    pub phantom_methods: usize,
    /// CALL edges pruned because their PP was all-∞.
    pub pruned_calls: usize,
    /// Wall-clock time of semantic extraction + graph construction.
    pub build_time: Duration,
}

/// The code property graph: the underlying property graph plus the
/// IR ↔ graph correspondence.
#[derive(Debug)]
pub struct Cpg {
    /// The property graph (persistable via serde).
    pub graph: Graph,
    /// Pre-interned labels, edge types, and property keys.
    pub schema: CpgSchema,
    /// Build statistics.
    pub stats: CpgStats,
    method_nodes: HashMap<MethodId, NodeId>,
    node_methods: HashMap<NodeId, MethodId>,
    class_nodes: HashMap<ClassId, NodeId>,
}

impl Cpg {
    /// Builds the CPG for `program` with the given configuration.
    pub fn build(program: &Program, config: AnalysisConfig) -> Cpg {
        CpgBuilder::new(program, config).build()
    }

    /// Like [`Cpg::build`], but the per-method controllability analysis
    /// runs on `threads` workers (bit-identical output; see
    /// [`crate::parallel::summarize_program`]).
    pub fn build_parallel(program: &Program, config: AnalysisConfig, threads: usize) -> Cpg {
        let summaries = crate::parallel::summarize_program(program, &config, threads);
        Cpg::build_with_summaries(program, config, summaries)
    }

    /// Builds the CPG from pre-computed per-method summaries (covering every
    /// method with a body). The scan daemon uses this to assemble a CPG from
    /// a mix of cached and freshly recomputed summaries after an incremental
    /// re-scan; see [`crate::parallel::summarize_program_incremental`].
    pub fn build_with_summaries(
        program: &Program,
        config: AnalysisConfig,
        summaries: std::collections::HashMap<MethodId, crate::controllability::MethodSummary>,
    ) -> Cpg {
        let mut builder = CpgBuilder::new(program, config);
        builder.precomputed = Some(summaries);
        builder.build()
    }

    /// The graph node of an analyzed method.
    pub fn method_node(&self, id: MethodId) -> Option<NodeId> {
        self.method_nodes.get(&id).copied()
    }

    /// The analyzed method behind a node (`None` for phantom/class nodes).
    pub fn node_method(&self, node: NodeId) -> Option<MethodId> {
        self.node_methods.get(&node).copied()
    }

    /// The graph node of a class.
    pub fn class_node(&self, id: ClassId) -> Option<NodeId> {
        self.class_nodes.get(&id).copied()
    }

    /// Method nodes (including phantoms) with the given simple name.
    pub fn methods_named(&self, name: &str) -> Vec<NodeId> {
        self.graph.nodes_by(
            self.schema.method_label,
            self.schema.name,
            &Value::from(name),
        )
    }

    /// Method nodes with the given full signature (`class.name(desc)`).
    pub fn methods_with_signature(&self, signature: &str) -> Vec<NodeId> {
        self.graph.nodes_by(
            self.schema.method_label,
            self.schema.signature,
            &Value::from(signature),
        )
    }

    /// Human-readable `Class.method` description of a method node.
    pub fn describe(&self, node: NodeId) -> String {
        let class = self
            .graph
            .node_prop(node, self.schema.class_name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        let name = self
            .graph
            .node_prop(node, self.schema.name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        format!("{class}.{name}")
    }
}

struct CpgBuilder<'p> {
    program: &'p Program,
    analyzer: Analyzer<'p>,
    precomputed: Option<std::collections::HashMap<MethodId, crate::controllability::MethodSummary>>,
    config: AnalysisConfig,
    graph: Graph,
    schema: CpgSchema,
    method_nodes: HashMap<MethodId, NodeId>,
    node_methods: HashMap<NodeId, MethodId>,
    class_nodes: HashMap<ClassId, NodeId>,
    phantom_classes: HashMap<Symbol, NodeId>,
    phantom_methods: HashMap<(Symbol, Symbol, usize), NodeId>,
    pruned_calls: usize,
}

impl<'p> CpgBuilder<'p> {
    fn new(program: &'p Program, config: AnalysisConfig) -> Self {
        let mut graph = Graph::new();
        let schema = CpgSchema::install(&mut graph);
        Self {
            program,
            analyzer: Analyzer::new(program, config.clone()),
            precomputed: None,
            config,
            graph,
            schema,
            method_nodes: HashMap::new(),
            node_methods: HashMap::new(),
            class_nodes: HashMap::new(),
            phantom_classes: HashMap::new(),
            phantom_methods: HashMap::new(),
            pruned_calls: 0,
        }
    }

    fn build(mut self) -> Cpg {
        let start = Instant::now();
        self.build_org();
        // PCG before MAG: alias edges may target phantom methods that only
        // exist once call sites have been processed.
        self.build_pcg();
        self.build_mag();
        self.attach_actions();
        let phantom_methods = self.phantom_methods.len();
        let stats = CpgStats {
            class_nodes: self.class_nodes.len() + self.phantom_classes.len(),
            method_nodes: self.method_nodes.len() + phantom_methods,
            relationship_edges: self.graph.edge_count(),
            phantom_methods,
            pruned_calls: self.pruned_calls,
            build_time: start.elapsed(),
        };
        Cpg {
            graph: self.graph,
            schema: self.schema,
            stats,
            method_nodes: self.method_nodes,
            node_methods: self.node_methods,
            class_nodes: self.class_nodes,
        }
    }

    /// ORG: class and method nodes, EXTEND/INTERFACE/HAS edges.
    fn build_org(&mut self) {
        let hierarchy_serializable: Vec<bool> = {
            let h = self.analyzer.hierarchy();
            (0..self.program.classes().len())
                .map(|i| h.is_serializable(ClassId(i as u32)))
                .collect()
        };
        // Class nodes first.
        for (i, class) in self.program.classes().iter().enumerate() {
            let id = ClassId(i as u32);
            let node = self.graph.add_node(self.schema.class_label);
            self.graph.set_node_prop(
                node,
                self.schema.name,
                Value::from(self.program.name(class.name)),
            );
            self.graph.set_node_prop(
                node,
                self.schema.is_interface,
                Value::from(class.flags.is_interface()),
            );
            self.graph.set_node_prop(
                node,
                self.schema.is_serializable,
                Value::from(hierarchy_serializable[i]),
            );
            self.graph
                .set_node_prop(node, self.schema.is_phantom, Value::from(false));
            self.class_nodes.insert(id, node);
        }
        // EXTEND / INTERFACE edges (to phantoms when the supertype is not
        // loaded) and method nodes with HAS edges.
        for (i, class) in self.program.classes().iter().enumerate() {
            let id = ClassId(i as u32);
            let Some(&class_node) = self.class_nodes.get(&id) else {
                continue;
            };
            if let Some(sup) = class.superclass {
                let sup_node = self.class_node_for(sup);
                self.graph
                    .add_edge(self.schema.extend, class_node, sup_node);
            }
            for &itf in &class.interfaces {
                let itf_node = self.class_node_for(itf);
                self.graph
                    .add_edge(self.schema.interface, class_node, itf_node);
            }
            for (mi, method) in class.methods.iter().enumerate() {
                let mid = MethodId {
                    class: id,
                    index: mi as u32,
                };
                let node = self.graph.add_node(self.schema.method_label);
                self.graph.set_node_prop(
                    node,
                    self.schema.name,
                    Value::from(self.program.name(method.name)),
                );
                self.graph.set_node_prop(
                    node,
                    self.schema.class_name,
                    Value::from(self.program.name(class.name)),
                );
                let desc = method_descriptor(self.program.interner(), &method.params, &method.ret);
                self.graph.set_node_prop(
                    node,
                    self.schema.signature,
                    Value::from(format!(
                        "{}.{}{desc}",
                        self.program.name(class.name),
                        self.program.name(method.name)
                    )),
                );
                self.graph.set_node_prop(
                    node,
                    self.schema.param_count,
                    Value::from(method.params.len() as i64),
                );
                self.graph.set_node_prop(
                    node,
                    self.schema.is_static,
                    Value::from(method.is_static()),
                );
                self.graph.set_node_prop(
                    node,
                    self.schema.is_abstract,
                    Value::from(method.body.is_none()),
                );
                self.graph.set_node_prop(
                    node,
                    self.schema.is_serializable,
                    Value::from(hierarchy_serializable[i]),
                );
                self.graph
                    .set_node_prop(node, self.schema.is_phantom, Value::from(false));
                self.graph.add_edge(self.schema.has, class_node, node);
                self.method_nodes.insert(mid, node);
                self.node_methods.insert(node, mid);
            }
        }
    }

    /// MAG: ALIAS edges from each method to the nearest declaration of the
    /// same (name, arity) in each supertype branch (Formula 1). Supertypes
    /// outside the analyzed set are matched against phantom method nodes
    /// (the call-site-created stand-ins), so overriding e.g. an unloaded
    /// `java.lang.Object.toString` still yields an alias edge — as Soot's
    /// phantom classes do.
    fn build_mag(&mut self) {
        enum AliasTarget {
            Real(MethodId),
            Phantom(NodeId),
        }
        let mut edges: Vec<(MethodId, AliasTarget)> = Vec::new();
        for (i, class) in self.program.classes().iter().enumerate() {
            let id = ClassId(i as u32);
            for (mi, method) in class.methods.iter().enumerate() {
                if method.is_static() {
                    continue;
                }
                let name = self.program.name(method.name);
                if name == "<init>" || name == "<clinit>" {
                    continue;
                }
                let mid = MethodId {
                    class: id,
                    index: mi as u32,
                };
                // DFS up each supertype branch over *symbolic* names; stop
                // a branch at the first declaration found (real or
                // phantom).
                let mut stack: Vec<Symbol> = Vec::new();
                if let Some(sup) = class.superclass {
                    stack.push(sup);
                }
                stack.extend_from_slice(&class.interfaces);
                let mut seen = std::collections::HashSet::new();
                while let Some(sup_name) = stack.pop() {
                    if !seen.insert(sup_name) {
                        continue;
                    }
                    match self.program.class_by_name(sup_name) {
                        Some(sup) => {
                            match self
                                .program
                                .class(sup)
                                .find_method(method.name, method.params.len())
                            {
                                Some(idx) => edges.push((
                                    mid,
                                    AliasTarget::Real(MethodId {
                                        class: sup,
                                        index: idx,
                                    }),
                                )),
                                None => {
                                    let sup_class = self.program.class(sup);
                                    if let Some(s) = sup_class.superclass {
                                        stack.push(s);
                                    }
                                    stack.extend_from_slice(&sup_class.interfaces);
                                }
                            }
                        }
                        None => {
                            // Unloaded supertype: alias to a call-site
                            // phantom if one exists; nothing above it is
                            // knowable.
                            if let Some(&node) = self.phantom_methods.get(&(
                                sup_name,
                                method.name,
                                method.params.len(),
                            )) {
                                edges.push((mid, AliasTarget::Phantom(node)));
                            }
                        }
                    }
                }
            }
        }
        for (from, to) in edges {
            let Some(&f) = self.method_nodes.get(&from) else {
                continue;
            };
            let t = match to {
                AliasTarget::Real(mid) => match self.method_nodes.get(&mid).copied() {
                    Some(node) => node,
                    // A resolved-but-unmapped declaration (inconsistent
                    // hierarchy from quarantined classes): degrade to a
                    // phantom stand-in instead of panicking.
                    None => {
                        let m = self.program.method(mid);
                        let class = self.program.class(mid.class).name;
                        self.phantom_method_node(class, m.name, m.params.len())
                    }
                },
                AliasTarget::Phantom(node) => node,
            };
            self.graph.add_edge(self.schema.alias, f, t);
        }
    }

    /// PCG: CALL edges with POLLUTED_POSITION, pruning all-∞ calls.
    fn build_pcg(&mut self) {
        let ids: Vec<MethodId> = self.program.method_ids().collect();
        for id in ids {
            if self.program.method(id).body.is_none() {
                continue;
            }
            let summary = match self.precomputed.as_ref().and_then(|m| m.get(&id)) {
                Some(s) => s.clone(),
                None => self.analyzer.summarize(id),
            };
            let Some(&caller_node) = self.method_nodes.get(&id) else {
                continue;
            };
            for call in &summary.calls {
                if !call.is_controllable() && self.config.prune_uncontrollable_calls {
                    self.pruned_calls += 1;
                    continue;
                }
                let target_node = match call
                    .resolved
                    .and_then(|mid| self.method_nodes.get(&mid).copied())
                {
                    Some(node) => node,
                    // Unresolved callee — or one resolved against a class
                    // that was later quarantined: a phantom node keeps the
                    // edge without panicking.
                    None => self.phantom_method_node(
                        call.callee_ref.class,
                        call.callee_ref.name,
                        call.callee_ref.params.len(),
                    ),
                };
                let edge = self
                    .graph
                    .add_edge(self.schema.call, caller_node, target_node);
                self.graph.set_edge_prop(
                    edge,
                    self.schema.polluted_position,
                    Value::IntList(pp_to_ints(&call.pp)),
                );
                self.graph.set_edge_prop(
                    edge,
                    self.schema.invoke_kind,
                    Value::from(invoke_kind_name(call.kind)),
                );
                self.graph.set_edge_prop(
                    edge,
                    self.schema.stmt_index,
                    Value::from(call.stmt_index as i64),
                );
            }
        }
    }

    /// Stores each analyzed method's ACTION map on its node.
    fn attach_actions(&mut self) {
        let ids: Vec<MethodId> = self.program.method_ids().collect();
        for id in ids {
            if self.program.method(id).body.is_none() {
                continue;
            }
            let action = match self.precomputed.as_ref().and_then(|m| m.get(&id)) {
                Some(s) => s.action.clone(),
                None => self.analyzer.analyze(id),
            };
            let named = action.to_named(|s| self.program.name(s).to_owned());
            let Some(&node) = self.method_nodes.get(&id) else {
                continue;
            };
            self.graph
                .set_node_prop(node, self.schema.action, Value::Map(named));
        }
    }

    /// Class node for a name, creating a phantom when not loaded.
    fn class_node_for(&mut self, name: Symbol) -> NodeId {
        if let Some(id) = self.program.class_by_name(name) {
            if let Some(&node) = self.class_nodes.get(&id) {
                return node;
            }
        }
        if let Some(&node) = self.phantom_classes.get(&name) {
            return node;
        }
        let node = self.graph.add_node(self.schema.class_label);
        self.graph
            .set_node_prop(node, self.schema.name, Value::from(self.program.name(name)));
        self.graph
            .set_node_prop(node, self.schema.is_phantom, Value::from(true));
        self.phantom_classes.insert(name, node);
        node
    }

    /// Phantom method node for an out-of-set callee, linked to its phantom
    /// class with HAS.
    fn phantom_method_node(&mut self, class: Symbol, name: Symbol, arity: usize) -> NodeId {
        if let Some(&node) = self.phantom_methods.get(&(class, name, arity)) {
            return node;
        }
        let class_node = self.class_node_for(class);
        let node = self.graph.add_node(self.schema.method_label);
        self.graph
            .set_node_prop(node, self.schema.name, Value::from(self.program.name(name)));
        self.graph.set_node_prop(
            node,
            self.schema.class_name,
            Value::from(self.program.name(class)),
        );
        self.graph.set_node_prop(
            node,
            self.schema.signature,
            Value::from(format!(
                "{}.{}/{arity}",
                self.program.name(class),
                self.program.name(name)
            )),
        );
        self.graph
            .set_node_prop(node, self.schema.param_count, Value::from(arity as i64));
        self.graph
            .set_node_prop(node, self.schema.is_phantom, Value::from(true));
        self.graph.add_edge(self.schema.has, class_node, node);
        self.phantom_methods.insert((class, name, arity), node);
        node
    }
}

fn invoke_kind_name(kind: InvokeKind) -> &'static str {
    match kind {
        InvokeKind::Virtual => "virtual",
        InvokeKind::Interface => "interface",
        InvokeKind::Special => "special",
        InvokeKind::Static => "static",
        InvokeKind::Dynamic => "dynamic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_graph::Direction;
    use tabby_ir::{JType, ProgramBuilder};

    /// A tiny program shaped like the URLDNS core (Fig. 3 / Fig. 4):
    /// HashMap.readObject -> HashMap.hash -> Object.hashCode, with
    /// URL.hashCode aliasing Object.hashCode.
    fn urldns_like() -> Program {
        let mut pb = ProgramBuilder::new();
        // java.lang.Object with hashCode.
        let mut cb = pb.class("java.lang.Object");
        cb.method("hashCode", vec![], JType::Int)
            .abstract_()
            .finish();
        cb.finish();
        // HashMap: readObject calls hash(key); hash calls key.hashCode().
        let mut cb = pb.class("java.util.HashMap").serializable();
        let obj = cb.object_type("java.lang.Object");
        let ois = cb.object_type("java.io.ObjectInputStream");
        let mut mb = cb.method("readObject", vec![ois.clone()], JType::Void);
        let this = mb.this();
        let key = mb.fresh();
        mb.get_field(key, this, "java.util.HashMap", "key", obj.clone());
        let hash = mb.sig("java.util.HashMap", "hash", &[obj.clone()], JType::Int);
        let h = mb.fresh();
        mb.call_static(Some(h), hash, &[key.into()]);
        mb.finish();
        let mut mb = cb.method("hash", vec![obj.clone()], JType::Int).static_();
        let k = mb.param(0);
        let hc = mb.sig("java.lang.Object", "hashCode", &[], JType::Int);
        let r = mb.fresh();
        mb.call_virtual(Some(r), k, hc, &[]);
        mb.ret(r);
        mb.finish();
        cb.field("key", obj.clone());
        cb.finish();
        // URL.hashCode overriding Object.hashCode, calling a phantom.
        let mut cb = pb.class("java.net.URL").serializable();
        let str_ty = cb.object_type("java.lang.String");
        let mut mb = cb.method("hashCode", vec![], JType::Int);
        let this = mb.this();
        let host = mb.fresh();
        mb.get_field(host, this, "java.net.URL", "host", str_ty.clone());
        let gbn = mb.sig(
            "java.net.InetAddress",
            "getByName",
            &[str_ty.clone()],
            JType::Int,
        );
        let r = mb.fresh();
        mb.call_static(Some(r), gbn, &[host.into()]);
        mb.ret(r);
        mb.finish();
        cb.field("host", str_ty);
        cb.finish();
        pb.build()
    }

    #[test]
    fn org_has_class_and_method_nodes() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        // 3 loaded classes (+ phantom InetAddress + phantom
        // java.io.Serializable interface node).
        assert!(cpg.stats.class_nodes >= 4);
        assert!(cpg.stats.method_nodes >= 4);
        let hm = p.class_by_str("java.util.HashMap").unwrap();
        assert!(cpg.class_node(hm).is_some());
    }

    #[test]
    fn alias_edge_links_url_hashcode_to_object_hashcode() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        let url_hc = cpg
            .methods_named("hashCode")
            .into_iter()
            .find(|n| {
                cpg.graph
                    .node_prop(*n, cpg.schema.class_name)
                    .and_then(|v| v.as_str())
                    == Some("java.net.URL")
            })
            .unwrap();
        let alias_edges = cpg
            .graph
            .edges_of(url_hc, Direction::Outgoing, Some(cpg.schema.alias));
        assert_eq!(alias_edges.len(), 1);
        let target = cpg.graph.other_node(alias_edges[0], url_hc);
        assert_eq!(cpg.describe(target), "java.lang.Object.hashCode");
    }

    #[test]
    fn call_edges_carry_polluted_position() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        // HashMap.hash -> Object.hashCode with PP [1] on the receiver slot:
        // the receiver of hashCode is hash's parameter 1.
        let hash = cpg
            .methods_named("hash")
            .into_iter()
            .next()
            .expect("hash node");
        let calls = cpg
            .graph
            .edges_of(hash, Direction::Outgoing, Some(cpg.schema.call));
        assert_eq!(calls.len(), 1);
        let pp = cpg
            .graph
            .edge_prop(calls[0], cpg.schema.polluted_position)
            .unwrap()
            .as_int_list()
            .unwrap()
            .to_vec();
        assert_eq!(pp, vec![1]);
    }

    #[test]
    fn phantom_sink_node_created() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        let gbn = cpg.methods_named("getByName");
        assert_eq!(gbn.len(), 1);
        assert_eq!(
            cpg.graph
                .node_prop(gbn[0], cpg.schema.is_phantom)
                .and_then(|v| v.as_bool()),
            Some(true)
        );
        assert!(cpg.node_method(gbn[0]).is_none());
        assert_eq!(cpg.stats.phantom_methods, 1);
    }

    #[test]
    fn readobject_call_chain_is_connected() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        let ro = cpg.methods_named("readObject")[0];
        let out = cpg
            .graph
            .edges_of(ro, Direction::Outgoing, Some(cpg.schema.call));
        assert_eq!(out.len(), 1);
        let hash = cpg.graph.other_node(out[0], ro);
        assert_eq!(cpg.describe(hash), "java.util.HashMap.hash");
    }

    #[test]
    fn action_property_attached() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        let hash = cpg.methods_named("hash")[0];
        let action = cpg
            .graph
            .node_prop(hash, cpg.schema.action)
            .and_then(|v| v.as_map())
            .expect("ACTION map");
        assert!(action.iter().any(|(k, _)| k == "return"));
    }

    #[test]
    fn mcg_mode_keeps_uncontrollable_calls() {
        // Add a method with an uncontrollable call and compare edge counts.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![], JType::Void).static_();
        let v = mb.fresh();
        mb.new_obj(v, "java.lang.Object");
        let callee = mb.sig("t.D", "d", &[obj.clone()], JType::Void);
        mb.call_static(None, callee, &[v.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let pruned = Cpg::build(&p, AnalysisConfig::default());
        let full = Cpg::build(
            &p,
            AnalysisConfig {
                prune_uncontrollable_calls: false,
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(pruned.stats.pruned_calls, 1);
        assert!(full.stats.relationship_edges > pruned.stats.relationship_edges);
    }

    #[test]
    fn serializable_flag_on_nodes() {
        let p = urldns_like();
        let cpg = Cpg::build(&p, AnalysisConfig::default());
        let ro = cpg.methods_named("readObject")[0];
        assert_eq!(
            cpg.graph
                .node_prop(ro, cpg.schema.is_serializable)
                .and_then(|v| v.as_bool()),
            Some(true)
        );
    }
}
