//! The `Action` method summary (Table III) and Formulas 2–3.
//!
//! An Action abstracts a whole method body as a map from *outputs* (final
//! parameter states, their fields, and the return value) to *origins*
//! (the receiver, its fields, initial parameters, their fields, or `null`
//! for "uncontrollable"). It is the interprocedural currency of the
//! controllability analysis and also its memoization cache ("the Action
//! property also serves as a caching mechanism", §III-C).

use crate::weight::Weight;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tabby_ir::Symbol;

/// An output slot of a method call (Table III's key domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActionKey {
    /// `this` — the receiver after the call.
    This,
    /// `this.x` — a field of the receiver after the call.
    ThisField(Symbol),
    /// `final-param-i` — the final status of parameter *i* (1-based).
    FinalParam(u16),
    /// `final-param-i.x` — a field of parameter *i* after the call.
    FinalParamField(u16, Symbol),
    /// `return` — the return value.
    Return,
}

/// An origin of a value (Table III's value domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionValue {
    /// `this`.
    This,
    /// `this.x`.
    ThisField(Symbol),
    /// `init-param-j` — the value parameter *j* held on entry (1-based).
    InitParam(u16),
    /// `init-param-j.x`.
    InitParamField(u16, Symbol),
    /// `null` — uncontrollable.
    Null,
}

/// A method summary: the ⟨key, value⟩ pair array of §III-C.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Action {
    entries: BTreeMap<ActionKey, ActionValue>,
}

impl Action {
    /// An empty action (every output defaults to its identity / null).
    pub fn new() -> Self {
        Self::default()
    }

    /// The conservative *identity* action used to break interprocedural
    /// recursion cycles: parameters keep their initial controllability and
    /// the return value is assumed uncontrollable.
    pub fn identity(param_count: usize) -> Self {
        let mut a = Action::new();
        a.set(ActionKey::This, ActionValue::This);
        for i in 1..=param_count as u16 {
            a.set(ActionKey::FinalParam(i), ActionValue::InitParam(i));
        }
        a.set(ActionKey::Return, ActionValue::Null);
        a
    }

    /// The *taint-through* action used for unresolved (phantom) callees:
    /// parameters keep their controllability and the return value is assumed
    /// to flow from the receiver — the permissive default the paper ascribes
    /// to prior tools for unanalyzed code.
    pub fn taint_through(param_count: usize, has_receiver: bool) -> Self {
        let mut a = Action::identity(param_count);
        let ret = if has_receiver {
            ActionValue::This
        } else if param_count > 0 {
            ActionValue::InitParam(1)
        } else {
            ActionValue::Null
        };
        a.set(ActionKey::Return, ret);
        a
    }

    /// Sets an entry.
    pub fn set(&mut self, key: ActionKey, value: ActionValue) {
        self.entries.insert(key, value);
    }

    /// Gets an entry.
    pub fn get(&self, key: ActionKey) -> Option<ActionValue> {
        self.entries.get(&key).copied()
    }

    /// Iterates over the entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (ActionKey, ActionValue)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the action has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Formula 2 — `f_calc(Action, in) = {⟨x,z⟩ | ⟨x,y⟩ ∈ Action, ⟨y,z⟩ ∈ in}`:
    /// translate each output's *origin* (an [`ActionValue`] in the callee's
    /// frame) into a *weight* in the caller's frame using `in`, the snapshot
    /// of weights flowing into the call.
    pub fn calc(&self, input: &ActionInput) -> Vec<(ActionKey, Weight)> {
        self.iter().map(|(k, v)| (k, input.weight_of(v))).collect()
    }

    /// Renders the action with the paper's key/value names (for the graph's
    /// `ACTION` property and debugging; see Fig. 5(b)).
    pub fn to_named(&self, resolve: impl Fn(Symbol) -> String) -> Vec<(String, String)> {
        let key_name = |k: ActionKey| match k {
            ActionKey::This => "this".to_owned(),
            ActionKey::ThisField(f) => format!("this.{}", resolve(f)),
            ActionKey::FinalParam(i) => format!("final-param-{i}"),
            ActionKey::FinalParamField(i, f) => format!("final-param-{i}.{}", resolve(f)),
            ActionKey::Return => "return".to_owned(),
        };
        let value_name = |v: ActionValue| match v {
            ActionValue::This => "this".to_owned(),
            ActionValue::ThisField(f) => format!("this.{}", resolve(f)),
            ActionValue::InitParam(j) => format!("init-param-{j}"),
            ActionValue::InitParamField(j, f) => format!("init-param-{j}.{}", resolve(f)),
            ActionValue::Null => "null".to_owned(),
        };
        self.iter()
            .map(|(k, v)| (key_name(k), value_name(v)))
            .collect()
    }
}

/// The `in` map of Formulas 2–3: weights (in the caller's frame) of the
/// values flowing into a call — the receiver, its fields, the arguments,
/// and their fields.
#[derive(Debug, Clone, Default)]
pub struct ActionInput {
    /// Weight of the receiver (`None` for static calls).
    pub this: Option<Weight>,
    /// Weights of receiver fields observed at the call site.
    pub this_fields: BTreeMap<Symbol, Weight>,
    /// Weight of each argument, 1-based (index 0 unused).
    pub params: Vec<Weight>,
    /// Weights of argument fields observed at the call site.
    pub param_fields: BTreeMap<(u16, Symbol), Weight>,
}

impl ActionInput {
    /// Creates an input for a call with the given receiver and argument
    /// weights.
    pub fn new(this: Option<Weight>, args: &[Weight]) -> Self {
        let mut params = vec![Weight::Unknown; args.len() + 1];
        params[1..].copy_from_slice(args);
        Self {
            this,
            this_fields: BTreeMap::new(),
            params,
            param_fields: BTreeMap::new(),
        }
    }

    /// The caller-frame weight of a callee-frame origin.
    pub fn weight_of(&self, v: ActionValue) -> Weight {
        match v {
            ActionValue::This => self.this.unwrap_or(Weight::Unknown),
            ActionValue::ThisField(f) => self
                .this_fields
                .get(&f)
                .copied()
                .unwrap_or_else(|| self.this.unwrap_or(Weight::Unknown)),
            ActionValue::InitParam(j) => self
                .params
                .get(j as usize)
                .copied()
                .unwrap_or(Weight::Unknown),
            ActionValue::InitParamField(j, f) => {
                self.param_fields.get(&(j, f)).copied().unwrap_or_else(|| {
                    self.params
                        .get(j as usize)
                        .copied()
                        .unwrap_or(Weight::Unknown)
                })
            }
            ActionValue::Null => Weight::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::Interner;

    #[test]
    fn identity_action_shape() {
        let a = Action::identity(2);
        assert_eq!(
            a.get(ActionKey::FinalParam(1)),
            Some(ActionValue::InitParam(1))
        );
        assert_eq!(
            a.get(ActionKey::FinalParam(2)),
            Some(ActionValue::InitParam(2))
        );
        assert_eq!(a.get(ActionKey::Return), Some(ActionValue::Null));
        assert_eq!(a.get(ActionKey::This), Some(ActionValue::This));
    }

    #[test]
    fn taint_through_prefers_receiver() {
        let a = Action::taint_through(1, true);
        assert_eq!(a.get(ActionKey::Return), Some(ActionValue::This));
        let b = Action::taint_through(1, false);
        assert_eq!(b.get(ActionKey::Return), Some(ActionValue::InitParam(1)));
        let c = Action::taint_through(0, false);
        assert_eq!(c.get(ActionKey::Return), Some(ActionValue::Null));
    }

    #[test]
    fn calc_translates_origins_to_caller_weights() {
        // Fig. 5(d): exchange's Action maps return -> init-param-2;
        // the caller's arg2 has weight 2, so `out[return]` is Param(2).
        let mut action = Action::new();
        action.set(ActionKey::Return, ActionValue::InitParam(2));
        action.set(ActionKey::FinalParam(1), ActionValue::InitParam(1));
        let input = ActionInput::new(None, &[Weight::Unknown, Weight::Param(2)]);
        let out = action.calc(&input);
        let ret = out.iter().find(|(k, _)| *k == ActionKey::Return).unwrap().1;
        assert_eq!(ret, Weight::Param(2));
        let p1 = out
            .iter()
            .find(|(k, _)| *k == ActionKey::FinalParam(1))
            .unwrap()
            .1;
        assert_eq!(p1, Weight::Unknown);
    }

    #[test]
    fn field_origins_fall_back_to_base_weight() {
        let mut i = Interner::new();
        let f = i.intern("b");
        let input = ActionInput::new(Some(Weight::This), &[Weight::Param(1)]);
        assert_eq!(input.weight_of(ActionValue::ThisField(f)), Weight::This);
        assert_eq!(
            input.weight_of(ActionValue::InitParamField(1, f)),
            Weight::Param(1)
        );
    }

    #[test]
    fn explicit_field_weights_override_base() {
        let mut i = Interner::new();
        let f = i.intern("b");
        let mut input = ActionInput::new(Some(Weight::Unknown), &[Weight::Unknown]);
        input.param_fields.insert((1, f), Weight::Param(2));
        assert_eq!(
            input.weight_of(ActionValue::InitParamField(1, f)),
            Weight::Param(2)
        );
        assert_eq!(input.weight_of(ActionValue::InitParam(1)), Weight::Unknown);
    }

    #[test]
    fn named_rendering_matches_fig5() {
        let mut i = Interner::new();
        let b = i.intern("b");
        let mut action = Action::new();
        action.set(ActionKey::FinalParam(1), ActionValue::InitParam(1));
        action.set(ActionKey::FinalParamField(1, b), ActionValue::InitParam(2));
        action.set(ActionKey::FinalParam(2), ActionValue::Null);
        action.set(ActionKey::Return, ActionValue::InitParam(2));
        action.set(ActionKey::This, ActionValue::Null);
        let named = action.to_named(|s| i.resolve(s).to_owned());
        assert!(named.contains(&("final-param-1".into(), "init-param-1".into())));
        assert!(named.contains(&("final-param-1.b".into(), "init-param-2".into())));
        assert!(named.contains(&("return".into(), "init-param-2".into())));
        assert!(named.contains(&("this".into(), "null".into())));
    }
}
