//! The variable-controllability analysis — Algorithm 1 and Tables III–V.
//!
//! For each method the analysis runs a forward dataflow over the statement
//! CFG whose state is the `localMap`: a map from locals (and one-level field
//! paths `local.f`, plus statics) to controllability [`Weight`]s. Method
//! calls are handled interprocedurally: the callee is summarized as an
//! [`Action`] (memoized), the call's [`ActionInput`] is snapshotted from the
//! current state, and Formulas 2 (`calc`) and 3 (`correct`) propagate the
//! callee's effects back into the caller's state.
//!
//! Alongside the Action, the analysis records every call statement with its
//! **Polluted_Position** — the weights flowing into the callee's receiver
//! and arguments — which is exactly what the Precise Call Graph stores on
//! CALL edges and what the gadget-chain search later consumes.

use crate::action::{Action, ActionInput, ActionKey, ActionValue};
use crate::config::AnalysisConfig;
use crate::weight::{PollutedPosition, Weight};
use std::collections::{HashMap, HashSet};
use tabby_ir::{
    Cfg, Expr, Hierarchy, IdentityRef, InvokeExpr, InvokeKind, Local, MethodId, MethodRef, Operand,
    Place, Program, Stmt, Symbol,
};

/// The dataflow state: the paper's `localMap`.
///
/// Missing keys mean [`Weight::Unknown`] (the lattice bottom).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalMap {
    locals: HashMap<Local, Weight>,
    /// One-level field paths `local.f` (only when field-sensitive).
    fields: HashMap<(Local, Symbol), Weight>,
    /// Static fields `Class.f` touched in this method.
    statics: HashMap<(Symbol, Symbol), Weight>,
}

impl LocalMap {
    /// Weight of a local (Unknown when untracked).
    pub fn local(&self, l: Local) -> Weight {
        self.locals.get(&l).copied().unwrap_or(Weight::Unknown)
    }

    /// Weight of an operand (constants are never controllable).
    pub fn operand(&self, op: &Operand) -> Weight {
        match op {
            Operand::Local(l) => self.local(*l),
            Operand::Const(_) => Weight::Unknown,
        }
    }

    /// Strong update of a local: destroys the previous controllability of
    /// the local *and of its tracked fields* (Table IV, "create a new
    /// variable: destroy the original CA of a").
    pub fn set_local(&mut self, l: Local, w: Weight) {
        self.locals.insert(l, w);
        self.fields.retain(|(base, _), _| *base != l);
    }

    /// Weight of a field path, falling back to the base's weight — fields of
    /// a controllable object are controllable (the deserialization insight).
    pub fn field(&self, base: Local, name: Symbol, field_sensitive: bool) -> Weight {
        if field_sensitive {
            if let Some(w) = self.fields.get(&(base, name)) {
                return *w;
            }
        }
        self.local(base)
    }

    /// Records a field store.
    pub fn set_field(&mut self, base: Local, name: Symbol, w: Weight, field_sensitive: bool) {
        if field_sensitive {
            self.fields.insert((base, name), w);
        } else {
            // Collapsed: storing a controllable value into a field makes the
            // whole object at least that controllable.
            let joined = self.local(base).join(w);
            self.locals.insert(base, joined);
        }
    }

    /// Weight of a static field.
    pub fn static_field(&self, class: Symbol, name: Symbol) -> Weight {
        self.statics
            .get(&(class, name))
            .copied()
            .unwrap_or(Weight::Unknown)
    }

    /// Records a static-field store.
    pub fn set_static(&mut self, class: Symbol, name: Symbol, w: Weight) {
        self.statics.insert((class, name), w);
    }

    /// Pointwise join; returns whether `self` changed.
    pub fn join_with(&mut self, other: &LocalMap) -> bool {
        let mut changed = false;
        for (k, w) in &other.locals {
            let cur = self.locals.get(k).copied().unwrap_or(Weight::Unknown);
            let joined = cur.join(*w);
            if joined != cur {
                self.locals.insert(*k, joined);
                changed = true;
            }
        }
        for (k, w) in &other.fields {
            let cur = self.fields.get(k).copied().unwrap_or(Weight::Unknown);
            let joined = cur.join(*w);
            if joined != cur {
                self.fields.insert(*k, joined);
                changed = true;
            }
        }
        for (k, w) in &other.statics {
            let cur = self.statics.get(k).copied().unwrap_or(Weight::Unknown);
            let joined = cur.join(*w);
            if joined != cur {
                self.statics.insert(*k, joined);
                changed = true;
            }
        }
        changed
    }

    /// Tracked field entries whose base is `base`.
    fn fields_of(&self, base: Local) -> impl Iterator<Item = (Symbol, Weight)> + '_ {
        self.fields
            .iter()
            .filter(move |((b, _), _)| *b == base)
            .map(|((_, f), w)| (*f, *w))
    }
}

/// One analyzed call statement: what the Precise Call Graph turns into a
/// CALL edge.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Statement index in the caller's body.
    pub stmt_index: usize,
    /// The symbolic callee as written at the call site.
    pub callee_ref: MethodRef,
    /// The declared target after hierarchy resolution, if the class is
    /// loaded.
    pub resolved: Option<MethodId>,
    /// Invocation kind.
    pub kind: InvokeKind,
    /// Polluted_Position: weights of `[receiver, arg1, …, argn]` in the
    /// caller's frame.
    pub pp: PollutedPosition,
}

impl CallSite {
    /// Whether at least one position is controllable — uncontrollable calls
    /// are pruned from the PCG.
    pub fn is_controllable(&self) -> bool {
        self.pp.iter().any(|w| w.is_controllable())
    }
}

/// The per-method result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// The method's Action (Table III).
    pub action: Action,
    /// All call statements with their Polluted_Positions.
    pub calls: Vec<CallSite>,
    /// The fixpoint stopped on an iteration/step/deadline budget before
    /// converging: the summary is the partial state at that point (still a
    /// sound under-approximation of controllability, possibly imprecise).
    pub truncated: bool,
}

/// Counters describing one analysis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzerStats {
    /// Methods whose body was analyzed (cache misses).
    pub methods_analyzed: usize,
    /// Action-cache hits.
    pub cache_hits: usize,
    /// Recursion cycles broken with the identity summary.
    pub cycles_broken: usize,
    /// Calls whose PP was all-∞ (prunable).
    pub uncontrollable_calls: usize,
    /// Method fixpoints stopped early on an iteration/step/deadline budget.
    pub fixpoint_truncations: usize,
}

/// The interprocedural controllability analyzer.
///
/// # Examples
///
/// ```
/// use tabby_core::{Analyzer, AnalysisConfig};
/// use tabby_ir::{JType, ProgramBuilder};
///
/// let mut pb = ProgramBuilder::new();
/// let mut cb = pb.class("t.C");
/// let obj = cb.object_type("java.lang.Object");
/// let mut mb = cb.method("id", vec![obj.clone()], obj.clone());
/// let p0 = mb.param(0);
/// mb.ret(p0);
/// mb.finish();
/// cb.finish();
/// let program = pb.build();
/// let mut analyzer = Analyzer::new(&program, AnalysisConfig::default());
/// let id = program.method_ids().next().unwrap();
/// let summary = analyzer.summarize(id);
/// // `id` returns its first parameter.
/// use tabby_core::{ActionKey, ActionValue};
/// assert_eq!(summary.action.get(ActionKey::Return), Some(ActionValue::InitParam(1)));
/// ```
pub struct Analyzer<'p> {
    program: &'p Program,
    hierarchy: Hierarchy<'p>,
    config: AnalysisConfig,
    action_cache: HashMap<MethodId, Action>,
    summary_cache: HashMap<MethodId, MethodSummary>,
    in_progress: HashSet<MethodId>,
    stats: AnalyzerStats,
    deadline: Option<std::time::Instant>,
}

impl<'p> Analyzer<'p> {
    /// Creates an analyzer over `program`.
    pub fn new(program: &'p Program, config: AnalysisConfig) -> Self {
        Self {
            program,
            hierarchy: Hierarchy::new(program),
            config,
            action_cache: HashMap::new(),
            summary_cache: HashMap::new(),
            in_progress: HashSet::new(),
            stats: AnalyzerStats::default(),
            deadline: None,
        }
    }

    /// Installs a wall-clock deadline: fixpoints past it stop with a
    /// truncated partial summary. Deadlines are runtime state, not
    /// configuration — they never enter the [`AnalysisConfig`] cache
    /// fingerprint.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The hierarchy built for the program.
    pub fn hierarchy(&self) -> &Hierarchy<'p> {
        &self.hierarchy
    }

    /// Run counters.
    pub fn stats(&self) -> AnalyzerStats {
        self.stats
    }

    /// `doMethodAnalysis` (Algorithm 1), memoized: the Action summary of
    /// `id`.
    pub fn analyze(&mut self, id: MethodId) -> Action {
        self.analyze_at_depth(id, 0)
    }

    /// Pre-seeds the memoization caches with a summary computed earlier —
    /// by another analyzer, or by a previous scan whose classes are
    /// byte-identical (the daemon's cross-scan Action cache). Seeded methods
    /// are served from cache by [`Self::summarize`] and [`Self::analyze`]
    /// without re-running Algorithm 1.
    pub fn seed_summary(&mut self, id: MethodId, summary: MethodSummary) {
        self.action_cache.insert(id, summary.action.clone());
        self.summary_cache.insert(id, summary);
    }

    /// Full per-method summary (Action plus call sites), memoized.
    pub fn summarize(&mut self, id: MethodId) -> MethodSummary {
        if let Some(s) = self.summary_cache.get(&id) {
            return s.clone();
        }
        if let Some(needle) = &self.config.panic_on_method {
            let name = self.program.describe_method(id);
            assert!(!name.contains(needle.as_str()), "injected fault in {name}");
        }
        let summary = self.run_method(id, 0);
        self.summary_cache.insert(id, summary.clone());
        summary
    }

    fn analyze_at_depth(&mut self, id: MethodId, depth: usize) -> Action {
        let param_count = self.program.method(id).params.len();
        if self.config.action_cache {
            if let Some(a) = self.action_cache.get(&id) {
                self.stats.cache_hits += 1;
                return a.clone();
            }
        }
        if self.in_progress.contains(&id) || depth > self.config.max_call_depth {
            self.stats.cycles_broken += 1;
            return Action::identity(param_count);
        }
        let summary = self.run_method(id, depth);
        let action = summary.action.clone();
        if self.config.action_cache {
            self.action_cache.insert(id, action.clone());
            self.summary_cache.insert(id, summary);
        }
        action
    }

    /// Analyzes one method body to a fixed point and extracts its summary.
    fn run_method(&mut self, id: MethodId, depth: usize) -> MethodSummary {
        let method = self.program.method(id);
        let param_count = method.params.len();
        let Some(body) = method.body.clone() else {
            // Abstract/native: permissive or identity summary per config.
            let action = if self.config.taint_through_unresolved {
                Action::taint_through(param_count, !method.is_static())
            } else {
                Action::identity(param_count)
            };
            return MethodSummary {
                action,
                calls: Vec::new(),
                truncated: false,
            };
        };
        self.in_progress.insert(id);
        self.stats.methods_analyzed += 1;
        let cfg = Cfg::new(&body);
        let n = body.stmts.len();
        // in-states per statement; entry starts from the empty map (identity
        // statements introduce this/params).
        let mut states: Vec<Option<LocalMap>> = vec![None; n];
        if n > 0 {
            states[0] = Some(LocalMap::default());
        }
        let rpo = cfg.reverse_post_order();
        let mut iterations = 0;
        let mut steps: usize = 0;
        let mut truncated = false;
        'fixpoint: loop {
            iterations += 1;
            let mut changed = false;
            for &i in &rpo {
                let Some(in_state) = states[i].clone() else {
                    continue;
                };
                steps += 1;
                if steps > self.config.max_fixpoint_steps {
                    truncated = true;
                    break 'fixpoint;
                }
                // Deadline checks are amortized: one clock read per 1024
                // statement transfers.
                if steps % 1024 == 0 {
                    if let Some(deadline) = self.deadline {
                        if std::time::Instant::now() >= deadline {
                            truncated = true;
                            break 'fixpoint;
                        }
                    }
                }
                let out = self.transfer(&body.stmts[i], i, &in_state, depth, None);
                for &succ in cfg.succs(i) {
                    match &mut states[succ] {
                        Some(s) => {
                            if s.join_with(&out) {
                                changed = true;
                            }
                        }
                        None => {
                            states[succ] = Some(out.clone());
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            if iterations >= self.config.max_iterations {
                // Converging bodies break on `!changed` above; stopping
                // while the state was still moving is a truncation.
                truncated = true;
                break;
            }
        }
        if truncated {
            self.stats.fixpoint_truncations += 1;
        }
        // Replay over the converged states to collect call sites and the
        // merged exit state.
        let mut calls = Vec::new();
        let mut exit = LocalMap::default();
        let mut returned: Option<Weight> = None;
        for i in 0..n {
            let Some(in_state) = states[i].clone() else {
                continue;
            };
            if let Stmt::Return(value) = &body.stmts[i] {
                exit.join_with(&in_state);
                if let Some(v) = value {
                    let w = in_state.operand(v);
                    returned = Some(match returned {
                        Some(r) => r.join(w),
                        None => w,
                    });
                }
            }
            self.transfer(&body.stmts[i], i, &in_state, depth, Some(&mut calls));
        }
        self.in_progress.remove(&id);

        // Build the Action from the merged exit state (Table III).
        let mut action = Action::new();
        let (this_local, param_locals) = identity_locals(&body.stmts, param_count);
        if let Some(this) = this_local {
            action.set(ActionKey::This, weight_to_value(exit.local(this)));
            for (f, w) in exit.fields_of(this) {
                action.set(ActionKey::ThisField(f), weight_to_value(w));
            }
        }
        for (i, pl) in param_locals.iter().enumerate() {
            let idx = (i + 1) as u16;
            match pl {
                Some(l) => {
                    action.set(ActionKey::FinalParam(idx), weight_to_value(exit.local(*l)));
                    for (f, w) in exit.fields_of(*l) {
                        action.set(ActionKey::FinalParamField(idx, f), weight_to_value(w));
                    }
                }
                None => {
                    // Untouched parameter: identity.
                    action.set(ActionKey::FinalParam(idx), ActionValue::InitParam(idx));
                }
            }
        }
        action.set(
            ActionKey::Return,
            returned.map_or(ActionValue::Null, weight_to_value),
        );
        MethodSummary {
            action,
            calls,
            truncated,
        }
    }

    /// The per-statement transfer function (`doAssignStmtAnalysis`,
    /// Table IV). When `calls` is provided, call statements are also
    /// recorded as [`CallSite`]s.
    fn transfer(
        &mut self,
        stmt: &Stmt,
        stmt_index: usize,
        in_state: &LocalMap,
        depth: usize,
        calls: Option<&mut Vec<CallSite>>,
    ) -> LocalMap {
        let mut state = in_state.clone();
        match stmt {
            Stmt::Identity { local, source } => {
                let w = match source {
                    IdentityRef::This => Weight::This,
                    IdentityRef::Param(i) => Weight::Param(i + 1),
                    IdentityRef::CaughtException => Weight::Unknown,
                };
                state.set_local(*local, w);
            }
            Stmt::Assign { place, rhs } => {
                let w = match rhs {
                    Expr::Invoke(inv) => {
                        self.transfer_call(inv, stmt_index, &mut state, depth, calls)
                    }
                    other => self.expr_weight(other, &state),
                };
                match place {
                    Place::Local(l) => state.set_local(*l, w),
                    Place::InstanceField { base, field } => {
                        state.set_field(*base, field.name, w, self.config.field_sensitive);
                    }
                    Place::StaticField(field) => {
                        state.set_static(field.class, field.name, w);
                    }
                    Place::ArrayElem { base, .. } => {
                        // Array contents collapse onto the array value.
                        let joined = state.local(*base).join(w);
                        state.set_local(*base, joined);
                    }
                }
            }
            Stmt::Invoke(inv) => {
                let _ = self.transfer_call(inv, stmt_index, &mut state, depth, calls);
            }
            // Return / branches / monitors / nop: no state change.
            _ => {}
        }
        state
    }

    /// Weight of a non-call right-hand side.
    fn expr_weight(&self, expr: &Expr, state: &LocalMap) -> Weight {
        match expr {
            Expr::Use(op) => state.operand(op),
            Expr::Load(place) => match place {
                Place::Local(l) => state.local(*l),
                Place::InstanceField { base, field } => {
                    state.field(*base, field.name, self.config.field_sensitive)
                }
                Place::StaticField(field) => state.static_field(field.class, field.name),
                Place::ArrayElem { base, .. } => state.local(*base),
            },
            // Allocation destroys controllability (Table IV).
            Expr::New(_) | Expr::NewArray { .. } => Weight::Unknown,
            Expr::Cast { value, .. } => state.operand(value),
            Expr::InstanceOf { .. } => Weight::Unknown,
            // Taint propagates through arithmetic (e.g. string concat is
            // compiled to calls, but IR-level binops keep the join).
            Expr::Binary { lhs, rhs, .. } => state.operand(lhs).join(state.operand(rhs)),
            Expr::Unary { value, .. } => state.operand(value),
            Expr::ArrayLength(_) => Weight::Unknown,
            // Calls are handled by `transfer_call`; an invoke reaching here
            // (a malformed statement shape) degrades to uncontrollable
            // instead of panicking the pipeline.
            Expr::Invoke(_) => Weight::Unknown,
        }
    }

    /// Handles a call statement: computes PP, fetches the callee Action,
    /// applies `calc`/`correct`, and returns the weight of the call's
    /// result.
    fn transfer_call(
        &mut self,
        inv: &InvokeExpr,
        stmt_index: usize,
        state: &mut LocalMap,
        depth: usize,
        calls: Option<&mut Vec<CallSite>>,
    ) -> Weight {
        // Polluted_Position: [receiver, arg1, …, argn].
        let base_weight = inv.base.as_ref().map(|b| state.operand(b));
        let arg_weights: Vec<Weight> = inv.args.iter().map(|a| state.operand(a)).collect();
        let mut pp = Vec::with_capacity(arg_weights.len() + 1);
        pp.push(base_weight.unwrap_or(Weight::Unknown));
        pp.extend(arg_weights.iter().copied());

        // invokedynamic is opaque (§V-B): record nothing, result unknown.
        if inv.kind == InvokeKind::Dynamic {
            return Weight::Unknown;
        }

        let resolved = self.resolve_callee(inv);
        let controllable = pp.iter().any(|w| w.is_controllable());
        if !controllable {
            self.stats.uncontrollable_calls += 1;
        }
        if let Some(calls) = calls {
            calls.push(CallSite {
                stmt_index,
                callee_ref: inv.callee.clone(),
                resolved,
                kind: inv.kind,
                pp: pp.clone(),
            });
        }
        if !controllable && self.config.prune_uncontrollable_calls {
            // Uncontrollable call: skip interprocedural analysis entirely
            // (Algorithm 1's guard) — with all-∞ inputs no output can become
            // controllable, so the result is ∞.
            return Weight::Unknown;
        }

        // Snapshot the `in` map for Formula 2.
        let mut input = ActionInput::new(base_weight, &arg_weights);
        if let Some(Operand::Local(base)) = &inv.base {
            for (f, w) in state.fields_of(*base) {
                input.this_fields.insert(f, w);
            }
        }
        for (i, arg) in inv.args.iter().enumerate() {
            if let Operand::Local(l) = arg {
                for (f, w) in state.fields_of(*l) {
                    input.param_fields.insert(((i + 1) as u16, f), w);
                }
            }
        }

        // Callee Action: analyzed, or a default for phantom targets.
        let action = match resolved {
            Some(mid) => self.analyze_at_depth(mid, depth + 1),
            None => {
                if self.config.taint_through_unresolved {
                    Action::taint_through(inv.args.len(), inv.kind.has_receiver())
                } else {
                    Action::identity(inv.args.len())
                }
            }
        };

        // Formula 2 (`calc`) then Formula 3 (`correct`).
        let out = action.calc(&input);
        let mut result = Weight::Unknown;
        for (key, w) in out {
            match key {
                ActionKey::Return => result = w,
                ActionKey::FinalParam(i) => {
                    if let Some(Operand::Local(l)) = inv.args.get((i - 1) as usize) {
                        state.set_local(*l, w);
                    }
                }
                ActionKey::FinalParamField(i, f) => {
                    if let Some(Operand::Local(l)) = inv.args.get((i - 1) as usize) {
                        state.set_field(*l, f, w, self.config.field_sensitive);
                    }
                }
                ActionKey::ThisField(f) => {
                    if let Some(Operand::Local(base)) = &inv.base {
                        state.set_field(*base, f, w, self.config.field_sensitive);
                    }
                }
                // The receiver reference itself cannot be rebound.
                ActionKey::This => {}
            }
        }
        result
    }

    /// Resolves the declared target of a call through the hierarchy.
    fn resolve_callee(&self, inv: &InvokeExpr) -> Option<MethodId> {
        let class = self.program.class_by_name(inv.callee.class)?;
        self.hierarchy
            .resolve_method(class, inv.callee.name, inv.callee.params.len())
    }
}

/// Converts a controllability weight to an Action origin.
fn weight_to_value(w: Weight) -> ActionValue {
    match w {
        Weight::Unknown => ActionValue::Null,
        Weight::This => ActionValue::This,
        Weight::Param(i) => ActionValue::InitParam(i),
    }
}

/// Finds the locals bound to `this` and each parameter by the body's
/// identity statements.
fn identity_locals(stmts: &[Stmt], param_count: usize) -> (Option<Local>, Vec<Option<Local>>) {
    let mut this = None;
    let mut params = vec![None; param_count];
    for stmt in stmts {
        if let Stmt::Identity { local, source } = stmt {
            match source {
                IdentityRef::This => this = Some(*local),
                IdentityRef::Param(i) => {
                    if (*i as usize) < param_count {
                        params[*i as usize] = Some(*local);
                    }
                }
                IdentityRef::CaughtException => {}
            }
        }
    }
    (this, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{CmpOp, JType, ProgramBuilder};

    /// Builds the exact program of Fig. 5: `example` and `exchange`.
    fn fig5_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("p.A").finish();
        let mut cb = pb.class("p.B");
        let ta = cb.object_type("p.A");
        let tb = cb.object_type("p.B");
        // static B exchange(A a, B b) { a.b = b; b = new B(); return a.b; }
        let mut mb = cb
            .method("exchange", vec![ta.clone(), tb.clone()], tb.clone())
            .static_();
        let a = mb.param(0);
        let b = mb.param(1);
        mb.put_field(a, "p.A", "b", tb.clone(), b);
        mb.new_obj(b, "p.B");
        let r = mb.fresh();
        mb.get_field(r, a, "p.A", "b", tb.clone());
        mb.ret(r);
        mb.finish();
        cb.finish();

        let mut cb = pb.class("p.Example");
        let ta = cb.object_type("p.A");
        let tb = cb.object_type("p.B");
        // A example(A a, B b) { A a1 = new A(); A a2 = a; a = a1;
        //                       B b1 = B.exchange(a, b); return a2; }
        let mut mb = cb.method("example", vec![ta.clone(), tb.clone()], ta.clone());
        let a = mb.param(0);
        let b = mb.param(1);
        let a1 = mb.fresh();
        let a2 = mb.fresh();
        let b1 = mb.fresh();
        mb.new_obj(a1, "p.A");
        mb.copy(a2, a);
        mb.copy(a, a1);
        let exchange = mb.sig("p.B", "exchange", &[ta.clone(), tb.clone()], tb.clone());
        mb.call_static(Some(b1), exchange, &[a.into(), b.into()]);
        mb.ret(a2);
        mb.finish();
        cb.finish();
        pb.build()
    }

    fn method_named(p: &Program, name: &str) -> MethodId {
        p.method_ids()
            .find(|id| p.name(p.method(*id).name) == name)
            .unwrap()
    }

    #[test]
    fn fig5_exchange_action() {
        let p = fig5_program();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let exchange = method_named(&p, "exchange");
        let action = an.analyze(exchange);
        let b = p.interner().get("b").unwrap();
        // Fig. 5(b): the Action of exchange.
        assert_eq!(
            action.get(ActionKey::FinalParam(1)),
            Some(ActionValue::InitParam(1))
        );
        assert_eq!(
            action.get(ActionKey::FinalParamField(1, b)),
            Some(ActionValue::InitParam(2))
        );
        assert_eq!(
            action.get(ActionKey::FinalParam(2)),
            Some(ActionValue::Null)
        );
        assert_eq!(
            action.get(ActionKey::Return),
            Some(ActionValue::InitParam(2))
        );
    }

    #[test]
    fn fig5_example_pp_and_return() {
        let p = fig5_program();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let example = method_named(&p, "example");
        let summary = an.summarize(example);
        // Fig. 5(c): PP of the exchange call is [∞, ∞, 2].
        assert_eq!(summary.calls.len(), 1);
        assert_eq!(
            summary.calls[0].pp,
            vec![Weight::Unknown, Weight::Unknown, Weight::Param(2)]
        );
        // `example` returns a2 = the original parameter a.
        assert_eq!(
            summary.action.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
    }

    #[test]
    fn fig5_correct_makes_caller_b_uncontrollable() {
        // After the call, out[final-param-2] = null must *correct* the
        // caller's `b` to ∞ even though `b` was Param(2) before — Fig. 5(d).
        let p = fig5_program();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let example = method_named(&p, "example");
        // Rebuild the exit state indirectly: append a method that returns b.
        // Instead, check via the Action: example's final-param-2 is null
        // because `b` was corrected to ∞ by the callee's effect.
        let action = an.analyze(example);
        assert_eq!(
            action.get(ActionKey::FinalParam(2)),
            Some(ActionValue::Null)
        );
        // And `a` itself was reassigned to a1 (new A()) before the call.
        assert_eq!(
            action.get(ActionKey::FinalParam(1)),
            Some(ActionValue::Null)
        );
    }

    #[test]
    fn branch_join_prefers_controllable() {
        // if (p1 == 0) { v = p1 } else { v = new Object() }; call(v)
        // The join makes v controllable — the paper's residual-FP mechanism.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone(), JType::Int], JType::Void);
        let p0 = mb.param(0);
        let p1 = mb.param(1);
        let v = mb.fresh();
        let else_l = mb.fresh_label();
        let end = mb.fresh_label();
        mb.if_(CmpOp::Ne, p1, mb.c_int(0), else_l);
        mb.copy(v, p0);
        mb.goto(end);
        mb.place(else_l);
        mb.new_obj(v, "java.lang.Object");
        mb.place(end);
        let callee = mb.sig("t.Sink", "consume", &[obj.clone()], JType::Void);
        mb.call_static(None, callee, &[v.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let summary = an.summarize(m);
        assert_eq!(summary.calls.len(), 1);
        assert_eq!(summary.calls[0].pp[1], Weight::Param(1));
    }

    #[test]
    fn uncontrollable_call_detected() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![], JType::Void);
        let v = mb.fresh();
        mb.new_obj(v, "java.lang.Object");
        let callee = mb.sig("t.Sink", "consume", &[obj.clone()], JType::Void);
        mb.call_static(None, callee, &[v.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let summary = an.summarize(m);
        assert!(!summary.calls[0].is_controllable());
        assert!(an.stats().uncontrollable_calls > 0);
    }

    #[test]
    fn recursion_breaks_with_identity() {
        // void r(Object o) { r(o); }
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("r", vec![obj.clone()], JType::Void).static_();
        let p0 = mb.param(0);
        let callee = mb.sig("t.C", "r", &[obj.clone()], JType::Void);
        mb.call_static(None, callee, &[p0.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(
            action.get(ActionKey::FinalParam(1)),
            Some(ActionValue::InitParam(1))
        );
        assert!(an.stats().cycles_broken > 0);
    }

    #[test]
    fn field_insensitive_mode_loses_precision() {
        // exchange-style store: with field sensitivity the return is
        // Param(2); without, it collapses to the base (Param(1) join ...).
        let p = fig5_program();
        let exchange = method_named(&p, "exchange");
        let mut field_sensitive = Analyzer::new(&p, AnalysisConfig::default());
        let precise = field_sensitive.analyze(exchange);
        assert_eq!(
            precise.get(ActionKey::Return),
            Some(ActionValue::InitParam(2))
        );
        let mut insensitive = Analyzer::new(
            &p,
            AnalysisConfig {
                field_sensitive: false,
                ..AnalysisConfig::default()
            },
        );
        let coarse = insensitive.analyze(exchange);
        // Collapsed onto the base object: returns init-param-1.
        assert_eq!(
            coarse.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
    }

    #[test]
    fn action_cache_hits_on_repeated_calls() {
        let p = fig5_program();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let exchange = method_named(&p, "exchange");
        an.analyze(exchange);
        an.analyze(exchange);
        assert!(an.stats().cache_hits >= 1);
        assert_eq!(an.stats().methods_analyzed, 1);
    }

    #[test]
    fn phantom_callee_taints_through() {
        // v = Unknown.lib(p0); return v — with taint-through the return is
        // controllable via the receiver/args.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone()], obj.clone()).static_();
        let p0 = mb.param(0);
        let v = mb.fresh();
        let callee = mb.sig("ext.Lib", "passThrough", &[obj.clone()], obj.clone());
        mb.call_static(Some(v), callee, &[p0.into()]);
        mb.ret(v);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(
            action.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
        // Conservative mode: the phantom return is uncontrollable.
        let mut strict = Analyzer::new(
            &p,
            AnalysisConfig {
                taint_through_unresolved: false,
                ..AnalysisConfig::default()
            },
        );
        let action = strict.analyze(m);
        assert_eq!(action.get(ActionKey::Return), Some(ActionValue::Null));
    }

    #[test]
    fn caught_exception_is_uncontrollable() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![], obj.clone()).static_();
        let e = mb.fresh();
        mb.push(Stmt::Identity {
            local: e,
            source: IdentityRef::CaughtException,
        });
        mb.ret(e);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(action.get(ActionKey::Return), Some(ActionValue::Null));
    }

    #[test]
    fn this_field_load_is_controllable() {
        // return this.f — flows from the receiver: weight 0 / This.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        cb.field("f", obj.clone());
        let mut mb = cb.method("getF", vec![], obj.clone());
        let this = mb.this();
        let v = mb.fresh();
        mb.get_field(v, this, "t.C", "f", obj.clone());
        mb.ret(v);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(action.get(ActionKey::Return), Some(ActionValue::This));
    }

    #[test]
    fn static_field_flow() {
        // Class.f = p1; return Class.f — flows through the static.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        cb.static_field("f", obj.clone());
        let mut mb = cb.method("m", vec![obj.clone()], obj.clone()).static_();
        let p0 = mb.param(0);
        mb.put_static("t.C", "f", obj.clone(), p0);
        let v = mb.fresh();
        mb.get_static(v, "t.C", "f", obj.clone());
        mb.ret(v);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(
            action.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
    }

    #[test]
    fn array_flow_collapses_to_array() {
        // arr[0] = p1; return arr[1] — array contents collapse.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let arr_ty = JType::array(obj.clone());
        let mut mb = cb.method("m", vec![obj.clone()], obj.clone()).static_();
        let p0 = mb.param(0);
        let arr = mb.fresh();
        mb.new_array(arr, obj.clone(), mb.c_int(2));
        mb.array_put(arr, mb.c_int(0), p0);
        let v = mb.fresh();
        mb.array_get(v, arr, mb.c_int(1));
        mb.ret(v);
        mb.finish();
        cb.finish();
        let _ = arr_ty;
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(
            action.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
    }

    #[test]
    fn step_budget_truncates_fixpoint_with_partial_summary() {
        let p = fig5_program();
        let mut an = Analyzer::new(
            &p,
            AnalysisConfig {
                max_fixpoint_steps: 1,
                ..AnalysisConfig::default()
            },
        );
        let example = method_named(&p, "example");
        let summary = an.summarize(example);
        assert!(summary.truncated);
        assert!(an.stats().fixpoint_truncations > 0);
        // Unconstrained run of the same method converges untruncated.
        let mut full = Analyzer::new(&p, AnalysisConfig::default());
        assert!(!full.summarize(example).truncated);
        assert_eq!(full.stats().fixpoint_truncations, 0);
    }

    #[test]
    fn expired_deadline_truncates_large_fixpoints() {
        // The deadline is only polled every 1024 transfer steps, so pad the
        // body past that to make the expired deadline observable.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.Big");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone()], obj.clone()).static_();
        let p0 = mb.param(0);
        let mut prev = p0;
        for _ in 0..1500 {
            let v = mb.fresh();
            mb.copy(v, prev);
            prev = v;
        }
        mb.ret(prev);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        an.set_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_secs(1),
        ));
        let m = p.method_ids().next().unwrap();
        let summary = an.summarize(m);
        assert!(summary.truncated);
        assert!(an.stats().fixpoint_truncations > 0);
    }

    #[test]
    fn injected_fault_panics_on_matching_method() {
        let p = fig5_program();
        let mut an = Analyzer::new(
            &p,
            AnalysisConfig {
                panic_on_method: Some("exchange".into()),
                ..AnalysisConfig::default()
            },
        );
        let exchange = method_named(&p, "exchange");
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            an.summarize(exchange);
        }));
        assert!(hit.is_err());
        // A non-matching method still summarizes fine on the same analyzer.
        let example = method_named(&p, "example");
        assert!(!an.summarize(example).calls.is_empty());
    }

    #[test]
    fn cast_preserves_weight() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let str_ty = cb.object_type("java.lang.String");
        let mut mb = cb.method("m", vec![obj.clone()], str_ty.clone()).static_();
        let p0 = mb.param(0);
        let v = mb.fresh();
        mb.cast(v, str_ty.clone(), p0);
        mb.ret(v);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let mut an = Analyzer::new(&p, AnalysisConfig::default());
        let m = p.method_ids().next().unwrap();
        let action = an.analyze(m);
        assert_eq!(
            action.get(ActionKey::Return),
            Some(ActionValue::InitParam(1))
        );
    }
}
