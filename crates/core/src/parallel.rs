//! Parallel whole-program summarization.
//!
//! Per-method summaries are independent given the (deterministic) callee
//! Actions, so the per-method analysis parallelizes by sharding the method
//! list over worker threads, each with its own analyzer and Action cache.
//! Callee summaries demanded across shard boundaries are recomputed
//! locally — some duplicated work in exchange for zero synchronization —
//! and the result is bit-identical to the sequential run (asserted by
//! tests), because Algorithm 1 is deterministic.

use crate::config::AnalysisConfig;
use crate::controllability::{Analyzer, MethodSummary};
use std::collections::{HashMap, HashSet};
use tabby_ir::{MethodId, Program};

/// Summarizes every method with a body, using up to `threads` workers.
///
/// Equivalent to calling [`Analyzer::summarize`] for every method; with
/// `threads <= 1` it does exactly that.
pub fn summarize_program(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
) -> HashMap<MethodId, MethodSummary> {
    let ids: Vec<MethodId> = program
        .method_ids()
        .filter(|id| program.method(*id).body.is_some())
        .collect();
    if threads <= 1 || ids.len() < 64 {
        let mut analyzer = Analyzer::new(program, config.clone());
        return ids
            .into_iter()
            .map(|id| (id, analyzer.summarize(id)))
            .collect();
    }
    let shards: Vec<Vec<MethodId>> = {
        let mut shards = vec![Vec::new(); threads];
        for (i, id) in ids.into_iter().enumerate() {
            shards[i % threads].push(id);
        }
        shards
    };
    let (tx, rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut analyzer = Analyzer::new(program, config.clone());
                for &id in shard {
                    let summary = analyzer.summarize(id);
                    tx.send((id, summary)).expect("collector alive");
                }
            });
        }
        drop(tx);
        rx.iter().collect()
    })
    .expect("analysis worker panicked")
}

/// Incremental re-summarization: recomputes summaries for the methods in
/// `dirty` and reuses `seed` for everything else.
///
/// The caller is responsible for the dirty-set invariant: a method may only
/// be seeded if its body *and the bodies of everything its analysis can
/// reach* (resolved callees, transitively) are unchanged since the seed
/// summary was computed. The scan daemon establishes this by dirtying every
/// changed class plus its reverse-dependency cone.
///
/// Returns a summary for every method with a body, exactly like
/// [`summarize_program`]; methods missing from `seed` are treated as dirty.
pub fn summarize_program_incremental(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    dirty: &HashSet<MethodId>,
    seed: &HashMap<MethodId, MethodSummary>,
) -> HashMap<MethodId, MethodSummary> {
    let mut out: HashMap<MethodId, MethodSummary> = HashMap::new();
    let mut todo: Vec<MethodId> = Vec::new();
    for id in program.method_ids() {
        if program.method(id).body.is_none() {
            continue;
        }
        match seed.get(&id) {
            Some(s) if !dirty.contains(&id) => {
                out.insert(id, s.clone());
            }
            _ => todo.push(id),
        }
    }
    if todo.is_empty() {
        return out;
    }
    if threads <= 1 || todo.len() < 64 {
        let mut analyzer = Analyzer::new(program, config.clone());
        for (id, s) in &out {
            analyzer.seed_summary(*id, s.clone());
        }
        for id in todo {
            let summary = analyzer.summarize(id);
            out.insert(id, summary);
        }
        return out;
    }
    let shards: Vec<Vec<MethodId>> = {
        let mut shards = vec![Vec::new(); threads];
        for (i, id) in todo.into_iter().enumerate() {
            shards[i % threads].push(id);
        }
        shards
    };
    let (tx, rx) = crossbeam::channel::unbounded();
    let clean = &out;
    let recomputed: Vec<(MethodId, MethodSummary)> = crossbeam::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut analyzer = Analyzer::new(program, config.clone());
                for (id, s) in clean {
                    analyzer.seed_summary(*id, s.clone());
                }
                for &id in shard {
                    let summary = analyzer.summarize(id);
                    tx.send((id, summary)).expect("collector alive");
                }
            });
        }
        drop(tx);
        rx.iter().collect()
    })
    .expect("analysis worker panicked");
    out.extend(recomputed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    fn corpus(classes: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..classes {
            let fqcn = format!("p.C{i}");
            let mut cb = pb.class(&fqcn);
            let obj = cb.object_type("java.lang.Object");
            cb.field("f", obj.clone());
            for j in 0..4 {
                let mut mb = cb.method(&format!("m{j}"), vec![obj.clone()], obj.clone());
                let this = mb.this();
                let p0 = mb.param(0);
                mb.put_field(this, &fqcn, "f", obj.clone(), p0);
                let peer = format!("p.C{}", (i + j + 1) % classes);
                let callee = mb.sig(&peer, "m0", &[obj.clone()], obj.clone());
                let v = mb.fresh();
                mb.get_field(v, this, &fqcn, "f", obj.clone());
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, callee, &[v.into()]);
                mb.ret(r);
                mb.finish();
            }
            cb.finish();
        }
        let _ = JType::Int;
        pb.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = corpus(40); // 160 methods: above the parallel threshold
        let sequential = summarize_program(&p, &AnalysisConfig::default(), 1);
        let parallel = summarize_program(&p, &AnalysisConfig::default(), 4);
        assert_eq!(sequential.len(), parallel.len());
        for (id, seq) in &sequential {
            let par = &parallel[id];
            assert_eq!(seq.action, par.action, "{}", p.describe_method(*id));
            assert_eq!(seq.calls.len(), par.calls.len());
            for (a, b) in seq.calls.iter().zip(&par.calls) {
                assert_eq!(a.pp, b.pp);
                assert_eq!(a.resolved, b.resolved);
            }
        }
    }

    #[test]
    fn small_programs_stay_sequential() {
        let p = corpus(3);
        let out = summarize_program(&p, &AnalysisConfig::default(), 8);
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn incremental_with_clean_seed_returns_seed() {
        let p = corpus(10);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let out = summarize_program_incremental(&p, &cfg, 1, &HashSet::new(), &full);
        assert_eq!(out.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out[id].action, s.action);
        }
    }

    #[test]
    fn incremental_from_empty_seed_matches_full_run() {
        let p = corpus(40);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let dirty: HashSet<MethodId> = p.method_ids().collect();
        let out = summarize_program_incremental(&p, &cfg, 4, &dirty, &HashMap::new());
        assert_eq!(out.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out[id].action, s.action, "{}", p.describe_method(*id));
        }
    }
}
