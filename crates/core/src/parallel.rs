//! Parallel whole-program summarization with per-method panic containment.
//!
//! Per-method summaries are independent given the (deterministic) callee
//! Actions, so the per-method analysis parallelizes by sharding the method
//! list over worker threads, each with its own analyzer and Action cache.
//! Callee summaries demanded across shard boundaries are recomputed
//! locally — some duplicated work in exchange for zero synchronization —
//! and the result is bit-identical to the sequential run (asserted by
//! tests), because Algorithm 1 is deterministic.
//!
//! Every per-method summarization runs under `catch_unwind`: a panic
//! quarantines that one method (it gets a sound identity summary and a
//! [`QuarantinedMethod`] diagnostic) and the worker carries on with the
//! rest of its shard, instead of one degenerate body killing the whole
//! analysis phase.

use crate::action::Action;
use crate::config::AnalysisConfig;
use crate::controllability::{Analyzer, MethodSummary};
use crate::diagnostics::QuarantinedMethod;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tabby_ir::{MethodId, Program};

/// Summaries plus what the containment layer gave up on.
#[derive(Debug, Default)]
pub struct SummarizeOutcome {
    /// A summary for every method with a body (quarantined methods get the
    /// identity summary).
    pub summaries: HashMap<MethodId, MethodSummary>,
    /// Methods whose summarization panicked and was contained.
    pub quarantined: Vec<QuarantinedMethod>,
}

impl SummarizeOutcome {
    /// Methods whose fixpoint stopped on an iteration/step/deadline budget.
    pub fn fixpoint_truncations(&self) -> usize {
        self.summaries.values().filter(|s| s.truncated).count()
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// A fresh analyzer seeded with every summary already known.
fn seeded_analyzer<'p>(
    program: &'p Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    seeds: &HashMap<MethodId, MethodSummary>,
    produced: &[(MethodId, MethodSummary)],
) -> Analyzer<'p> {
    let mut analyzer = Analyzer::new(program, config.clone());
    analyzer.set_deadline(deadline);
    for (id, s) in seeds {
        analyzer.seed_summary(*id, s.clone());
    }
    for (id, s) in produced {
        analyzer.seed_summary(*id, s.clone());
    }
    analyzer
}

/// Summarizes one shard of methods, containing per-method panics.
///
/// After a contained panic the analyzer is rebuilt (its in-progress cycle
/// set may be mid-flight) and re-seeded with everything produced so far,
/// including the quarantined method's identity summary, so the rest of the
/// shard is unaffected.
fn run_shard_contained(
    program: &Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    seeds: &HashMap<MethodId, MethodSummary>,
    shard: &[MethodId],
) -> (Vec<(MethodId, MethodSummary)>, Vec<QuarantinedMethod>) {
    let mut results: Vec<(MethodId, MethodSummary)> = Vec::with_capacity(shard.len());
    let mut quarantined = Vec::new();
    let mut analyzer = seeded_analyzer(program, config, deadline, seeds, &results);
    for &id in shard {
        match catch_unwind(AssertUnwindSafe(|| analyzer.summarize(id))) {
            Ok(summary) => results.push((id, summary)),
            Err(payload) => {
                quarantined.push(QuarantinedMethod {
                    method: program.describe_method(id),
                    error: panic_message(payload.as_ref()).to_owned(),
                });
                let param_count = program.method(id).params.len();
                results.push((
                    id,
                    MethodSummary {
                        action: Action::identity(param_count),
                        calls: Vec::new(),
                        truncated: false,
                    },
                ));
                analyzer = seeded_analyzer(program, config, deadline, seeds, &results);
            }
        }
    }
    (results, quarantined)
}

/// Summarizes every method with a body, using up to `threads` workers,
/// quarantining methods whose analysis panics and honoring `deadline`.
pub fn summarize_program_contained(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    deadline: Option<Instant>,
) -> SummarizeOutcome {
    summarize_program_incremental_contained(
        program,
        config,
        threads,
        &HashSet::new(),
        &HashMap::new(),
        deadline,
    )
}

/// Incremental contained re-summarization: recomputes summaries for the
/// methods in `dirty` and reuses `seed` for everything else.
///
/// The caller is responsible for the dirty-set invariant: a method may only
/// be seeded if its body *and the bodies of everything its analysis can
/// reach* (resolved callees, transitively) are unchanged since the seed
/// summary was computed. The scan daemon establishes this by dirtying every
/// changed class plus its reverse-dependency cone.
///
/// Returns a summary for every method with a body; methods missing from
/// `seed` are treated as dirty.
pub fn summarize_program_incremental_contained(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    dirty: &HashSet<MethodId>,
    seed: &HashMap<MethodId, MethodSummary>,
    deadline: Option<Instant>,
) -> SummarizeOutcome {
    let mut summaries: HashMap<MethodId, MethodSummary> = HashMap::new();
    let mut todo: Vec<MethodId> = Vec::new();
    for id in program.method_ids() {
        if program.method(id).body.is_none() {
            continue;
        }
        match seed.get(&id) {
            Some(s) if !dirty.contains(&id) => {
                summaries.insert(id, s.clone());
            }
            _ => todo.push(id),
        }
    }
    if todo.is_empty() {
        return SummarizeOutcome {
            summaries,
            quarantined: Vec::new(),
        };
    }
    if threads <= 1 || todo.len() < 64 {
        let (results, quarantined) =
            run_shard_contained(program, config, deadline, &summaries, &todo);
        summaries.extend(results);
        return SummarizeOutcome {
            summaries,
            quarantined,
        };
    }
    let shards: Vec<Vec<MethodId>> = {
        let mut shards = vec![Vec::new(); threads];
        for (i, id) in todo.iter().enumerate() {
            shards[i % threads].push(*id);
        }
        shards
    };
    let (tx, rx) = crossbeam::channel::unbounded();
    let clean = &summaries;
    let joined = crossbeam::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let batch = run_shard_contained(program, config, deadline, clean, shard);
                // A closed channel means the collector is gone; the batch is
                // then re-runnable by the sequential fallback below.
                let _ = tx.send(batch);
            });
        }
        drop(tx);
        rx.iter()
            .collect::<Vec<(Vec<(MethodId, MethodSummary)>, Vec<QuarantinedMethod>)>>()
    });
    match joined {
        Ok(batches) => {
            let mut quarantined = Vec::new();
            for (results, q) in batches {
                summaries.extend(results);
                quarantined.extend(q);
            }
            SummarizeOutcome {
                summaries,
                quarantined,
            }
        }
        Err(_) => {
            // A worker died outside the per-method containment (should not
            // happen): fall back to one sequential contained pass.
            let (results, quarantined) =
                run_shard_contained(program, config, deadline, &summaries, &todo);
            summaries.extend(results);
            SummarizeOutcome {
                summaries,
                quarantined,
            }
        }
    }
}

/// Summarizes every method with a body, using up to `threads` workers.
///
/// Equivalent to calling [`Analyzer::summarize`] for every method; with
/// `threads <= 1` it does exactly that. Panics are contained per method
/// (see [`summarize_program_contained`] for the diagnostics-bearing form).
pub fn summarize_program(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
) -> HashMap<MethodId, MethodSummary> {
    summarize_program_contained(program, config, threads, None).summaries
}

/// Incremental re-summarization: recomputes summaries for the methods in
/// `dirty` and reuses `seed` for everything else.
///
/// See [`summarize_program_incremental_contained`] for the dirty-set
/// invariant and the diagnostics-bearing form.
pub fn summarize_program_incremental(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    dirty: &HashSet<MethodId>,
    seed: &HashMap<MethodId, MethodSummary>,
) -> HashMap<MethodId, MethodSummary> {
    summarize_program_incremental_contained(program, config, threads, dirty, seed, None).summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    fn corpus(classes: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..classes {
            let fqcn = format!("p.C{i}");
            let mut cb = pb.class(&fqcn);
            let obj = cb.object_type("java.lang.Object");
            cb.field("f", obj.clone());
            for j in 0..4 {
                let mut mb = cb.method(&format!("m{j}"), vec![obj.clone()], obj.clone());
                let this = mb.this();
                let p0 = mb.param(0);
                mb.put_field(this, &fqcn, "f", obj.clone(), p0);
                let peer = format!("p.C{}", (i + j + 1) % classes);
                let callee = mb.sig(&peer, "m0", &[obj.clone()], obj.clone());
                let v = mb.fresh();
                mb.get_field(v, this, &fqcn, "f", obj.clone());
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, callee, &[v.into()]);
                mb.ret(r);
                mb.finish();
            }
            cb.finish();
        }
        let _ = JType::Int;
        pb.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = corpus(40); // 160 methods: above the parallel threshold
        let sequential = summarize_program(&p, &AnalysisConfig::default(), 1);
        let parallel = summarize_program(&p, &AnalysisConfig::default(), 4);
        assert_eq!(sequential.len(), parallel.len());
        for (id, seq) in &sequential {
            let par = &parallel[id];
            assert_eq!(seq.action, par.action, "{}", p.describe_method(*id));
            assert_eq!(seq.calls.len(), par.calls.len());
            for (a, b) in seq.calls.iter().zip(&par.calls) {
                assert_eq!(a.pp, b.pp);
                assert_eq!(a.resolved, b.resolved);
            }
        }
    }

    #[test]
    fn small_programs_stay_sequential() {
        let p = corpus(3);
        let out = summarize_program(&p, &AnalysisConfig::default(), 8);
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn incremental_with_clean_seed_returns_seed() {
        let p = corpus(10);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let out = summarize_program_incremental(&p, &cfg, 1, &HashSet::new(), &full);
        assert_eq!(out.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out[id].action, s.action);
        }
    }

    #[test]
    fn incremental_from_empty_seed_matches_full_run() {
        let p = corpus(40);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let dirty: HashSet<MethodId> = p.method_ids().collect();
        let out = summarize_program_incremental(&p, &cfg, 4, &dirty, &HashMap::new());
        assert_eq!(out.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out[id].action, s.action, "{}", p.describe_method(*id));
        }
    }

    #[test]
    fn injected_panic_quarantines_one_method_and_workers_survive() {
        let p = corpus(40); // above the parallel threshold
        let cfg = AnalysisConfig {
            panic_on_method: Some("C7.m2".into()),
            ..AnalysisConfig::default()
        };
        for threads in [1, 4] {
            let out = summarize_program_contained(&p, &cfg, threads, None);
            assert_eq!(out.quarantined.len(), 1, "threads={threads}");
            assert!(out.quarantined[0].method.contains("C7.m2"));
            assert!(out.quarantined[0].error.contains("injected fault"));
            // Every method still has a summary, including the quarantined one.
            assert_eq!(out.summaries.len(), 160);
        }
    }

    #[test]
    fn clean_run_has_empty_diagnostics() {
        let p = corpus(5);
        let out = summarize_program_contained(&p, &AnalysisConfig::default(), 1, None);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.fixpoint_truncations(), 0);
    }
}
