//! Parallel whole-program summarization on the SCC-wave scheduler, with
//! per-method panic containment.
//!
//! Per-method summaries are pure functions of the method body and the
//! Actions of its resolved callees, so the dependency structure is exactly
//! the static call graph. The scheduler condenses that graph
//! ([`crate::callgraph::StaticCallGraph`]) and runs the condensation
//! bottom-up in topological *waves* over a persistent crossbeam worker
//! pool: each wave's summaries are published to every worker before the
//! next wave starts, so a callee demanded during wave *w* is always a
//! cache hit. Every method outside a genuine recursion SCC is therefore
//! summarized **exactly once** at any thread count — the duplicated-work
//! ratio reported in [`SchedulerStats`] is 1.0 — where the earlier
//! shard-and-recompute scheduler (kept as
//! [`summarize_program_sharded_contained`] for benchmarking) re-derived
//! cross-shard callees locally.
//!
//! Determinism: a recursion SCC is never split across workers; its members
//! are summarized by one analyzer in ascending [`MethodId`] order, so
//! Algorithm 1's in-progress cycle breaking unfolds exactly as in a
//! sequential bottom-up pass, and the summary table is bit-identical to
//! the single-thread run at any worker count (asserted by tests and the
//! determinism battery).
//!
//! Every per-method summarization runs under `catch_unwind`: a panic
//! quarantines that one method (it gets a sound identity summary and a
//! [`QuarantinedMethod`] diagnostic) and the worker carries on with the
//! rest of its wave, instead of one degenerate body killing the whole
//! analysis phase.

use crate::action::Action;
use crate::callgraph::{StaticCallGraph, WaveSchedule};
use crate::config::AnalysisConfig;
use crate::controllability::{Analyzer, MethodSummary};
use crate::diagnostics::QuarantinedMethod;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tabby_ir::{MethodId, Program};

/// What the SCC-wave scheduler did, for diagnostics and benchmarking.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SchedulerStats {
    /// Topological waves executed (0 when nothing needed recomputation).
    pub waves: usize,
    /// SCC groups scheduled across all waves.
    pub scc_groups: usize,
    /// Members in the largest recursion SCC (1 when the scheduled call
    /// graph was acyclic, 0 when nothing was scheduled).
    pub largest_scc: usize,
    /// Methods with bodies in the program.
    pub methods_with_bodies: usize,
    /// Summaries actually (re)computed this run; the rest came from seeds.
    pub summaries_computed: usize,
    /// Fixpoint runs performed across all workers. Equal to
    /// `summaries_computed` when no work is duplicated.
    pub methods_analyzed: usize,
}

impl SchedulerStats {
    /// Fixpoint runs per summary produced: 1.0 means every method was
    /// analyzed exactly once; the shard scheduler exceeds 1.0 whenever a
    /// callee summary is demanded across a shard boundary.
    pub fn duplicated_work_ratio(&self) -> f64 {
        if self.summaries_computed == 0 {
            1.0
        } else {
            self.methods_analyzed as f64 / self.summaries_computed as f64
        }
    }
}

/// Summaries plus what the containment layer gave up on.
#[derive(Debug, Default)]
pub struct SummarizeOutcome {
    /// A summary for every method with a body (quarantined methods get the
    /// identity summary).
    pub summaries: HashMap<MethodId, MethodSummary>,
    /// Methods whose summarization panicked and was contained.
    pub quarantined: Vec<QuarantinedMethod>,
    /// What the scheduler did to produce the table.
    pub scheduler: SchedulerStats,
}

impl SummarizeOutcome {
    /// Methods whose fixpoint stopped on an iteration/step/deadline budget.
    pub fn fixpoint_truncations(&self) -> usize {
        self.summaries.values().filter(|s| s.truncated).count()
    }
}

/// A canonical, deterministic text dump of a summary table.
///
/// [`MethodSummary`] is deliberately not serializable (it holds interner
/// symbols), so byte-identity comparisons across schedulers and thread
/// counts go through this: entries sorted by [`MethodId`], rendered with
/// the stable `Debug` format. Two tables for the same program are equal
/// iff their dumps are equal.
pub fn canonical_summary_dump(
    program: &Program,
    summaries: &HashMap<MethodId, MethodSummary>,
) -> String {
    use std::fmt::Write as _;
    let mut ids: Vec<MethodId> = summaries.keys().copied().collect();
    ids.sort_unstable();
    let mut out = String::new();
    for id in ids {
        if let Some(s) = summaries.get(&id) {
            let _ = writeln!(out, "{} => {:?}", program.describe_method(id), s);
        }
    }
    out
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// A fresh analyzer seeded with every summary in `known`.
fn seeded_analyzer<'p>(
    program: &'p Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    known: &[(MethodId, MethodSummary)],
) -> Analyzer<'p> {
    let mut analyzer = Analyzer::new(program, config.clone());
    analyzer.set_deadline(deadline);
    for (id, s) in known {
        analyzer.seed_summary(*id, s.clone());
    }
    analyzer
}

/// The identity summary a quarantined method is given: sound for search
/// (no calls, no flows claimed beyond pass-through).
fn identity_summary(program: &Program, id: MethodId) -> MethodSummary {
    MethodSummary {
        action: Action::identity(program.method(id).params.len()),
        calls: Vec::new(),
        truncated: false,
    }
}

/// Runs the SCC groups of one wave on `analyzer`, containing per-method
/// panics. `known` is the append-only log of every summary this analyzer
/// has been seeded with or produced; after a contained panic the analyzer
/// is rebuilt from it (its in-progress cycle set may be mid-flight), with
/// the quarantined method's identity summary included, so the rest of the
/// wave is unaffected. `analyzed_lost` accumulates fixpoint-run counts
/// from analyzers discarded by rebuilds.
#[allow(clippy::too_many_arguments)]
fn run_wave_groups<'p>(
    program: &'p Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    analyzer: &mut Analyzer<'p>,
    known: &mut Vec<(MethodId, MethodSummary)>,
    groups: &[Vec<MethodId>],
    quarantined: &mut Vec<QuarantinedMethod>,
    analyzed_lost: &mut usize,
) -> Vec<(MethodId, MethodSummary)> {
    let mut results = Vec::new();
    for group in groups {
        for &id in group {
            match catch_unwind(AssertUnwindSafe(|| analyzer.summarize(id))) {
                Ok(summary) => {
                    known.push((id, summary.clone()));
                    results.push((id, summary));
                }
                Err(payload) => {
                    quarantined.push(QuarantinedMethod {
                        method: program.describe_method(id),
                        error: panic_message(payload.as_ref()).to_owned(),
                    });
                    let identity = identity_summary(program, id);
                    known.push((id, identity.clone()));
                    results.push((id, identity));
                    *analyzed_lost += analyzer.stats().methods_analyzed;
                    *analyzer = seeded_analyzer(program, config, deadline, known);
                }
            }
        }
    }
    results
}

/// One wave's worth of work for a persistent worker: the groups it owns
/// plus the summaries published by *other* workers since its last task.
struct WaveTask {
    groups: Vec<Vec<MethodId>>,
    delta: Vec<(MethodId, MethodSummary)>,
}

/// A worker's results for one wave.
struct WaveBatch {
    results: Vec<(MethodId, MethodSummary)>,
    quarantined: Vec<QuarantinedMethod>,
    analyzed: usize,
}

/// A persistent wave worker: one analyzer (and one hierarchy) for the
/// whole run, re-seeded with each wave's published delta.
fn wave_worker(
    program: &Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    tasks: crossbeam::channel::Receiver<WaveTask>,
    batches: crossbeam::channel::Sender<WaveBatch>,
) {
    let mut known: Vec<(MethodId, MethodSummary)> = Vec::new();
    let mut analyzer = seeded_analyzer(program, config, deadline, &known);
    let mut lost = 0usize;
    while let Ok(task) = tasks.recv() {
        for (id, s) in task.delta {
            analyzer.seed_summary(id, s.clone());
            known.push((id, s));
        }
        let before = lost + analyzer.stats().methods_analyzed;
        let mut quarantined = Vec::new();
        let results = run_wave_groups(
            program,
            config,
            deadline,
            &mut analyzer,
            &mut known,
            &task.groups,
            &mut quarantined,
            &mut lost,
        );
        let analyzed = lost + analyzer.stats().methods_analyzed - before;
        if batches
            .send(WaveBatch {
                results,
                quarantined,
                analyzed,
            })
            .is_err()
        {
            return; // collector gone; the run is being abandoned
        }
    }
}

/// Sorted clean-seed list, the initial `known` log of every worker.
fn seed_log(clean: &HashMap<MethodId, MethodSummary>) -> Vec<(MethodId, MethodSummary)> {
    let mut log: Vec<(MethodId, MethodSummary)> =
        clean.iter().map(|(id, s)| (*id, s.clone())).collect();
    log.sort_unstable_by_key(|(id, _)| *id);
    log
}

/// Runs the whole schedule on one analyzer, wave by wave, group by group,
/// members in ascending id order — the reference execution every parallel
/// run must match byte-for-byte.
fn run_waves_sequential(
    program: &Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    clean: &HashMap<MethodId, MethodSummary>,
    schedule: &WaveSchedule,
) -> (
    Vec<(MethodId, MethodSummary)>,
    Vec<QuarantinedMethod>,
    usize,
) {
    let mut known = seed_log(clean);
    let mut analyzer = seeded_analyzer(program, config, deadline, &known);
    let mut quarantined = Vec::new();
    let mut lost = 0usize;
    let mut results = Vec::new();
    for wave in &schedule.waves {
        results.extend(run_wave_groups(
            program,
            config,
            deadline,
            &mut analyzer,
            &mut known,
            wave,
            &mut quarantined,
            &mut lost,
        ));
    }
    let analyzed = lost + analyzer.stats().methods_analyzed;
    (results, quarantined, analyzed)
}

/// Runs the schedule over a persistent worker pool, one barrier per wave.
///
/// Groups within a wave are mutually independent, so assignment is plain
/// round-robin; after the barrier every worker receives the summaries the
/// *other* workers produced, so wave *w+1* starts with the full table
/// published everywhere. Returns `None` if a worker or channel died
/// outside the per-method containment (the caller falls back to the
/// sequential pass, which recomputes deterministically from scratch).
fn run_waves_parallel(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    deadline: Option<Instant>,
    clean: &HashMap<MethodId, MethodSummary>,
    schedule: &WaveSchedule,
) -> Option<(
    Vec<(MethodId, MethodSummary)>,
    Vec<QuarantinedMethod>,
    usize,
)> {
    type WaveRun = (
        Vec<(MethodId, MethodSummary)>,
        Vec<QuarantinedMethod>,
        usize,
    );
    let joined = crossbeam::thread::scope(|scope| -> Option<WaveRun> {
        let mut task_txs = Vec::with_capacity(threads);
        let mut batch_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<WaveTask>();
            let (batch_tx, batch_rx) = crossbeam::channel::unbounded::<WaveBatch>();
            scope.spawn(move |_| wave_worker(program, config, deadline, task_rx, batch_tx));
            task_txs.push(task_tx);
            batch_rxs.push(batch_rx);
        }
        // Every worker starts from the clean seeds.
        let seeds = seed_log(clean);
        let mut pending: Vec<Vec<(MethodId, MethodSummary)>> = vec![seeds; threads];
        let mut results = Vec::new();
        let mut quarantined = Vec::new();
        let mut analyzed = 0usize;
        for wave in &schedule.waves {
            let mut assignment: Vec<Vec<Vec<MethodId>>> = vec![Vec::new(); threads];
            for (i, group) in wave.iter().enumerate() {
                assignment[i % threads].push(group.clone());
            }
            for (i, groups) in assignment.into_iter().enumerate() {
                let delta = std::mem::take(&mut pending[i]);
                if task_txs[i].send(WaveTask { groups, delta }).is_err() {
                    return None;
                }
            }
            for (i, batch_rx) in batch_rxs.iter().enumerate() {
                let Ok(batch) = batch_rx.recv() else {
                    return None;
                };
                quarantined.extend(batch.quarantined);
                analyzed += batch.analyzed;
                for (id, s) in batch.results {
                    for (j, p) in pending.iter_mut().enumerate() {
                        if j != i {
                            p.push((id, s.clone()));
                        }
                    }
                    results.push((id, s));
                }
            }
        }
        drop(task_txs); // workers drain and exit
        Some((results, quarantined, analyzed))
    });
    match joined {
        Ok(run) => run,
        Err(_) => None,
    }
}

/// Summarizes every method with a body, using up to `threads` workers,
/// quarantining methods whose analysis panics and honoring `deadline`.
pub fn summarize_program_contained(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    deadline: Option<Instant>,
) -> SummarizeOutcome {
    summarize_program_incremental_contained(
        program,
        config,
        threads,
        &HashSet::new(),
        &HashMap::new(),
        deadline,
    )
}

/// Incremental contained re-summarization: recomputes summaries for the
/// methods in `dirty` and reuses `seed` for everything else, scheduling
/// the recomputation over the SCC waves of the call subgraph induced by
/// the dirty set.
///
/// The caller is responsible for the dirty-set invariant: a method may only
/// be seeded if its body *and the bodies of everything its analysis can
/// reach* (resolved callees, transitively) are unchanged since the seed
/// summary was computed. The scan daemon establishes this by dirtying every
/// changed class plus its reverse-dependency cone — a caller-closed set,
/// which is exactly the shape under which the induced waves reproduce a
/// cold scan's summaries byte-for-byte.
///
/// Returns a summary for every method with a body; methods missing from
/// `seed` are treated as dirty.
pub fn summarize_program_incremental_contained(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    dirty: &HashSet<MethodId>,
    seed: &HashMap<MethodId, MethodSummary>,
    deadline: Option<Instant>,
) -> SummarizeOutcome {
    let mut summaries: HashMap<MethodId, MethodSummary> = HashMap::new();
    let mut todo: HashSet<MethodId> = HashSet::new();
    let mut bodies = 0usize;
    for id in program.method_ids() {
        if program.method(id).body.is_none() {
            continue;
        }
        bodies += 1;
        match seed.get(&id) {
            Some(s) if !dirty.contains(&id) => {
                summaries.insert(id, s.clone());
            }
            _ => {
                todo.insert(id);
            }
        }
    }
    if todo.is_empty() {
        return SummarizeOutcome {
            summaries,
            quarantined: Vec::new(),
            scheduler: SchedulerStats {
                methods_with_bodies: bodies,
                ..SchedulerStats::default()
            },
        };
    }
    let callgraph = StaticCallGraph::build(program);
    let schedule = callgraph.schedule(&todo);
    let mut scheduler = SchedulerStats {
        waves: schedule.waves.len(),
        scc_groups: schedule.groups,
        largest_scc: schedule.largest_scc,
        methods_with_bodies: bodies,
        summaries_computed: schedule.scheduled,
        methods_analyzed: 0,
    };
    let parallel = threads > 1 && todo.len() >= 64;
    let (results, quarantined, analyzed) = if parallel {
        match run_waves_parallel(program, config, threads, deadline, &summaries, &schedule) {
            Some(run) => run,
            // A worker died outside the per-method containment (should not
            // happen): fall back to one sequential contained pass.
            None => run_waves_sequential(program, config, deadline, &summaries, &schedule),
        }
    } else {
        run_waves_sequential(program, config, deadline, &summaries, &schedule)
    };
    scheduler.methods_analyzed = analyzed;
    summaries.extend(results);
    SummarizeOutcome {
        summaries,
        quarantined,
        scheduler,
    }
}

/// The PR-2 shard-and-recompute scheduler, kept as the benchmark baseline
/// for `bench summarize`.
///
/// Methods are dealt round-robin to `threads` shards; each shard's
/// analyzer recomputes any cross-shard callee summary it demands — zero
/// synchronization, but duplicated work that grows with call depth (its
/// [`SchedulerStats::duplicated_work_ratio`] exceeds 1.0 on anything
/// non-trivial). At one thread this is exactly the sequential
/// whole-program pass the wave scheduler's output is asserted against.
pub fn summarize_program_sharded_contained(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    deadline: Option<Instant>,
) -> SummarizeOutcome {
    let todo: Vec<MethodId> = program
        .method_ids()
        .filter(|&id| program.method(id).body.is_some())
        .collect();
    let mut scheduler = SchedulerStats {
        methods_with_bodies: todo.len(),
        summaries_computed: todo.len(),
        ..SchedulerStats::default()
    };
    let mut summaries: HashMap<MethodId, MethodSummary> = HashMap::new();
    if todo.is_empty() {
        scheduler.summaries_computed = 0;
        return SummarizeOutcome {
            summaries,
            quarantined: Vec::new(),
            scheduler,
        };
    }
    if threads <= 1 || todo.len() < 64 {
        let (results, quarantined, analyzed) =
            run_shard_contained(program, config, deadline, &[], &todo);
        scheduler.methods_analyzed = analyzed;
        summaries.extend(results);
        return SummarizeOutcome {
            summaries,
            quarantined,
            scheduler,
        };
    }
    let shards: Vec<Vec<MethodId>> = {
        let mut shards = vec![Vec::new(); threads];
        for (i, id) in todo.iter().enumerate() {
            shards[i % threads].push(*id);
        }
        shards
    };
    let (tx, rx) = crossbeam::channel::unbounded();
    let joined = crossbeam::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let batch = run_shard_contained(program, config, deadline, &[], shard);
                // A closed channel means the collector is gone; the batch is
                // then re-runnable by the sequential fallback below.
                let _ = tx.send(batch);
            });
        }
        drop(tx);
        rx.iter().collect::<Vec<_>>()
    });
    match joined {
        Ok(batches) => {
            let mut quarantined = Vec::new();
            for (results, q, analyzed) in batches {
                summaries.extend(results);
                quarantined.extend(q);
                scheduler.methods_analyzed += analyzed;
            }
            SummarizeOutcome {
                summaries,
                quarantined,
                scheduler,
            }
        }
        Err(_) => {
            let (results, quarantined, analyzed) =
                run_shard_contained(program, config, deadline, &[], &todo);
            scheduler.methods_analyzed = analyzed;
            summaries.extend(results);
            SummarizeOutcome {
                summaries,
                quarantined,
                scheduler,
            }
        }
    }
}

/// Summarizes one shard of methods with a fresh analyzer, containing
/// per-method panics; cross-shard callee demands recompute locally.
/// Returns the results, the quarantined methods, and the number of
/// fixpoint runs performed (including duplicated cross-shard work).
fn run_shard_contained(
    program: &Program,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    seeds: &[(MethodId, MethodSummary)],
    shard: &[MethodId],
) -> (
    Vec<(MethodId, MethodSummary)>,
    Vec<QuarantinedMethod>,
    usize,
) {
    let mut known: Vec<(MethodId, MethodSummary)> = seeds.to_vec();
    let mut analyzer = seeded_analyzer(program, config, deadline, &known);
    let mut quarantined = Vec::new();
    let mut lost = 0usize;
    let mut results: Vec<(MethodId, MethodSummary)> = Vec::with_capacity(shard.len());
    for &id in shard {
        match catch_unwind(AssertUnwindSafe(|| analyzer.summarize(id))) {
            Ok(summary) => {
                known.push((id, summary.clone()));
                results.push((id, summary));
            }
            Err(payload) => {
                quarantined.push(QuarantinedMethod {
                    method: program.describe_method(id),
                    error: panic_message(payload.as_ref()).to_owned(),
                });
                let identity = identity_summary(program, id);
                known.push((id, identity.clone()));
                results.push((id, identity));
                lost += analyzer.stats().methods_analyzed;
                analyzer = seeded_analyzer(program, config, deadline, &known);
            }
        }
    }
    let analyzed = lost + analyzer.stats().methods_analyzed;
    (results, quarantined, analyzed)
}

/// Summarizes every method with a body, using up to `threads` workers.
///
/// Equivalent to calling [`Analyzer::summarize`] for every method; with
/// `threads <= 1` it does exactly that, in bottom-up wave order. Panics
/// are contained per method (see [`summarize_program_contained`] for the
/// diagnostics-bearing form).
pub fn summarize_program(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
) -> HashMap<MethodId, MethodSummary> {
    summarize_program_contained(program, config, threads, None).summaries
}

/// Incremental re-summarization: recomputes summaries for the methods in
/// `dirty` and reuses `seed` for everything else.
///
/// See [`summarize_program_incremental_contained`] for the dirty-set
/// invariant and the diagnostics-bearing form.
pub fn summarize_program_incremental(
    program: &Program,
    config: &AnalysisConfig,
    threads: usize,
    dirty: &HashSet<MethodId>,
    seed: &HashMap<MethodId, MethodSummary>,
) -> HashMap<MethodId, MethodSummary> {
    summarize_program_incremental_contained(program, config, threads, dirty, seed, None).summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    fn corpus(classes: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..classes {
            let fqcn = format!("p.C{i}");
            let mut cb = pb.class(&fqcn);
            let obj = cb.object_type("java.lang.Object");
            cb.field("f", obj.clone());
            for j in 0..4 {
                let mut mb = cb.method(&format!("m{j}"), vec![obj.clone()], obj.clone());
                let this = mb.this();
                let p0 = mb.param(0);
                mb.put_field(this, &fqcn, "f", obj.clone(), p0);
                let peer = format!("p.C{}", (i + j + 1) % classes);
                let callee = mb.sig(&peer, "m0", &[obj.clone()], obj.clone());
                let v = mb.fresh();
                mb.get_field(v, this, &fqcn, "f", obj.clone());
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, callee, &[v.into()]);
                mb.ret(r);
                mb.finish();
            }
            cb.finish();
        }
        let _ = JType::Int;
        pb.build()
    }

    /// A call chain `C0.m <- C1.m <- ... <- C{n-1}.m` (Ci.m calls C{i-1}.m),
    /// acyclic, for cone tests.
    fn chain(classes: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        for i in 0..classes {
            let fqcn = format!("q.C{i}");
            let mut cb = pb.class(&fqcn);
            let obj = cb.object_type("java.lang.Object");
            let mut mb = cb.method("m", vec![obj.clone()], obj.clone());
            let p0 = mb.param(0);
            if i == 0 {
                mb.ret(p0);
            } else {
                let callee = mb.sig(&format!("q.C{}", i - 1), "m", &[obj.clone()], obj.clone());
                let this = mb.this();
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, callee, &[p0.into()]);
                mb.ret(r);
            }
            mb.finish();
            cb.finish();
        }
        pb.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = corpus(40); // 160 methods: above the parallel threshold
        let sequential = summarize_program(&p, &AnalysisConfig::default(), 1);
        let parallel = summarize_program(&p, &AnalysisConfig::default(), 4);
        assert_eq!(sequential.len(), parallel.len());
        assert_eq!(
            canonical_summary_dump(&p, &sequential),
            canonical_summary_dump(&p, &parallel)
        );
    }

    #[test]
    fn wave_scheduler_matches_shard_baseline() {
        let p = corpus(40);
        let cfg = AnalysisConfig::default();
        let waves = summarize_program_contained(&p, &cfg, 4, None);
        let sharded = summarize_program_sharded_contained(&p, &cfg, 1, None);
        assert_eq!(
            canonical_summary_dump(&p, &waves.summaries),
            canonical_summary_dump(&p, &sharded.summaries)
        );
    }

    #[test]
    fn wave_scheduler_analyzes_each_method_exactly_once() {
        let p = corpus(40); // m0s form one 40-member recursion SCC
        for threads in [1, 4] {
            let out = summarize_program_contained(&p, &AnalysisConfig::default(), threads, None);
            let s = out.scheduler;
            assert_eq!(s.methods_with_bodies, 160);
            assert_eq!(s.summaries_computed, 160, "threads={threads}");
            assert_eq!(s.methods_analyzed, 160, "threads={threads}");
            assert_eq!(s.duplicated_work_ratio(), 1.0);
            assert_eq!(s.largest_scc, 40);
            // Ring wave first, then the m1..m3 callers.
            assert_eq!(s.waves, 2, "threads={threads}");
        }
    }

    #[test]
    fn shard_baseline_duplicates_cross_shard_work() {
        let p = corpus(40);
        let out = summarize_program_sharded_contained(&p, &AnalysisConfig::default(), 4, None);
        assert_eq!(out.scheduler.summaries_computed, 160);
        assert!(
            out.scheduler.methods_analyzed > 160,
            "sharding recomputes cross-shard callees: analyzed {}",
            out.scheduler.methods_analyzed
        );
        assert!(out.scheduler.duplicated_work_ratio() > 1.0);
    }

    #[test]
    fn small_programs_stay_sequential() {
        let p = corpus(3);
        let out = summarize_program(&p, &AnalysisConfig::default(), 8);
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn incremental_with_clean_seed_returns_seed() {
        let p = corpus(10);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let out =
            summarize_program_incremental_contained(&p, &cfg, 1, &HashSet::new(), &full, None);
        assert_eq!(out.summaries.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out.summaries[id].action, s.action);
        }
        // A clean re-scan schedules nothing at all.
        assert_eq!(out.scheduler.summaries_computed, 0);
        assert_eq!(out.scheduler.methods_analyzed, 0);
        assert_eq!(out.scheduler.waves, 0);
    }

    #[test]
    fn incremental_from_empty_seed_matches_full_run() {
        let p = corpus(40);
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        let dirty: HashSet<MethodId> = p.method_ids().collect();
        let out = summarize_program_incremental(&p, &cfg, 4, &dirty, &HashMap::new());
        assert_eq!(out.len(), full.len());
        for (id, s) in &full {
            assert_eq!(out[id].action, s.action, "{}", p.describe_method(*id));
        }
    }

    #[test]
    fn incremental_dirty_method_recomputes_only_its_cone() {
        let p = chain(8); // C7.m -> C6.m -> ... -> C0.m
        let cfg = AnalysisConfig::default();
        let full = summarize_program(&p, &cfg, 1);
        assert_eq!(full.len(), 8);
        // Dirtying the chain's root (C0.m) invalidates every caller above
        // it: the caller-closed dirty cone is the whole chain.
        let root: HashSet<MethodId> = p
            .method_ids()
            .filter(|&id| p.describe_method(id).ends_with("C0.m"))
            .collect();
        let cg = StaticCallGraph::build(&p);
        let cone = cg.transitive_callers(root.iter().copied());
        assert_eq!(cone.len(), 8);
        // Dirtying the top caller (C7.m) touches nothing else: its cone is
        // itself, and the incremental run recomputes exactly one summary.
        let top: HashSet<MethodId> = p
            .method_ids()
            .filter(|&id| p.describe_method(id).ends_with("C7.m"))
            .collect();
        assert_eq!(cg.transitive_callers(top.iter().copied()).len(), 1);
        let out = summarize_program_incremental_contained(&p, &cfg, 1, &top, &full, None);
        assert_eq!(out.scheduler.summaries_computed, 1);
        assert_eq!(out.scheduler.methods_analyzed, 1);
        assert_eq!(
            canonical_summary_dump(&p, &out.summaries),
            canonical_summary_dump(&p, &full)
        );
    }

    #[test]
    fn injected_panic_quarantines_one_method_and_workers_survive() {
        let p = corpus(40); // above the parallel threshold
        let cfg = AnalysisConfig {
            panic_on_method: Some("C7.m2".into()),
            ..AnalysisConfig::default()
        };
        for threads in [1, 4] {
            let out = summarize_program_contained(&p, &cfg, threads, None);
            assert_eq!(out.quarantined.len(), 1, "threads={threads}");
            assert!(out.quarantined[0].method.contains("C7.m2"));
            assert!(out.quarantined[0].error.contains("injected fault"));
            // Every method still has a summary, including the quarantined one.
            assert_eq!(out.summaries.len(), 160);
        }
    }

    #[test]
    fn injected_panic_in_shard_baseline_still_contained() {
        let p = corpus(40);
        let cfg = AnalysisConfig {
            panic_on_method: Some("C7.m2".into()),
            ..AnalysisConfig::default()
        };
        for threads in [1, 4] {
            let out = summarize_program_sharded_contained(&p, &cfg, threads, None);
            assert_eq!(out.quarantined.len(), 1, "threads={threads}");
            assert_eq!(out.summaries.len(), 160);
        }
    }

    #[test]
    fn clean_run_has_empty_diagnostics() {
        let p = corpus(5);
        let out = summarize_program_contained(&p, &AnalysisConfig::default(), 1, None);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.fixpoint_truncations(), 0);
    }
}
