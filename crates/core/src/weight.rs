//! Controllability weights (Table V) and the variable map (`localMap`) of
//! Algorithm 1.
//!
//! A weight records *where a value originates* relative to the frame of the
//! method being analyzed:
//!
//! | paper | here | meaning |
//! |---|---|---|
//! | `∞` | [`Weight::Unknown`] | not controllable by the deserialized input |
//! | `0` | [`Weight::This`] | comes from the caller class or a class property |
//! | `i ∈ [1,n]` | [`Weight::Param`]`(i)` | comes from method parameter *i* (1-based) |
//!
//! At the graph boundary (`Polluted_Position` edge property), weights are
//! stored with the paper's integer encoding, using `-1` for ∞.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A controllability weight (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weight {
    /// `∞` — the value cannot be influenced by attacker-controlled input.
    Unknown,
    /// `0` — the value flows from `this` (the receiver) or one of its
    /// fields. During deserialization the receiver *is* the attacker's
    /// object, so this is controllable.
    This,
    /// `i ∈ [1, n]` — the value flows from the i-th method parameter
    /// (1-based, matching the paper and Table VII's Trigger_Conditions).
    Param(u16),
}

impl Weight {
    /// Whether the value is attacker-controllable.
    pub fn is_controllable(self) -> bool {
        !matches!(self, Weight::Unknown)
    }

    /// The paper's integer encoding: `-1` for ∞, `0` for this, `i` for
    /// parameter *i*.
    pub fn to_paper_int(self) -> i64 {
        match self {
            Weight::Unknown => -1,
            Weight::This => 0,
            Weight::Param(i) => i64::from(i),
        }
    }

    /// Parses the paper's integer encoding.
    ///
    /// # Panics
    ///
    /// Panics on values below `-1` or above `u16::MAX`.
    pub fn from_paper_int(v: i64) -> Weight {
        match v {
            -1 => Weight::Unknown,
            0 => Weight::This,
            i if i > 0 && i <= i64::from(u16::MAX) => Weight::Param(i as u16),
            other => panic!("invalid weight encoding {other}"),
        }
    }

    /// The join of two weights at a control-flow merge: prefer the
    /// controllable origin (the analysis over-approximates "can the attacker
    /// influence this value on *some* path", which is the question gadget
    /// chains ask — and the source of the paper's residual false positives
    /// from conditional statements, §IV-E).
    pub fn join(self, other: Weight) -> Weight {
        match (self, other) {
            (Weight::Unknown, w) | (w, Weight::Unknown) => w,
            (Weight::This, _) | (_, Weight::This) => Weight::This,
            (Weight::Param(a), Weight::Param(b)) => Weight::Param(a.min(b)),
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Weight::Unknown => f.write_str("∞"),
            Weight::This => f.write_str("0"),
            Weight::Param(i) => write!(f, "{i}"),
        }
    }
}

/// A `Polluted_Position` vector: position 0 is the callee's receiver,
/// positions `1..=n` are its arguments; each entry records the weight (in
/// the *caller's* frame) of the value flowing into that position.
pub type PollutedPosition = Vec<Weight>;

/// Encodes a PP vector with the paper's integer convention.
pub fn pp_to_ints(pp: &[Weight]) -> Vec<i64> {
    pp.iter().map(|w| w.to_paper_int()).collect()
}

/// Decodes a PP vector from the paper's integer convention.
pub fn pp_from_ints(ints: &[i64]) -> PollutedPosition {
    ints.iter().map(|&i| Weight::from_paper_int(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_encoding_round_trips() {
        for w in [
            Weight::Unknown,
            Weight::This,
            Weight::Param(1),
            Weight::Param(7),
        ] {
            assert_eq!(Weight::from_paper_int(w.to_paper_int()), w);
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight encoding")]
    fn bad_encoding_panics() {
        Weight::from_paper_int(-2);
    }

    #[test]
    fn join_prefers_controllable() {
        assert_eq!(Weight::Unknown.join(Weight::Param(2)), Weight::Param(2));
        assert_eq!(Weight::Param(2).join(Weight::Unknown), Weight::Param(2));
        assert_eq!(Weight::This.join(Weight::Param(2)), Weight::This);
        assert_eq!(Weight::Param(3).join(Weight::Param(2)), Weight::Param(2));
        assert_eq!(Weight::Unknown.join(Weight::Unknown), Weight::Unknown);
    }

    #[test]
    fn controllability() {
        assert!(!Weight::Unknown.is_controllable());
        assert!(Weight::This.is_controllable());
        assert!(Weight::Param(1).is_controllable());
    }

    #[test]
    fn pp_round_trip() {
        let pp = vec![Weight::Unknown, Weight::Unknown, Weight::Param(2)];
        assert_eq!(pp_to_ints(&pp), vec![-1, -1, 2]);
        assert_eq!(pp_from_ints(&pp_to_ints(&pp)), pp);
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(Weight::Unknown.to_string(), "∞");
        assert_eq!(Weight::This.to_string(), "0");
        assert_eq!(Weight::Param(2).to_string(), "2");
    }
}
