//! # tabby-core — code-property-graph construction & controllability analysis
//!
//! The core algorithms of *Tabby: Automated Gadget Chain Detection for Java
//! Deserialization Vulnerabilities* (DSN 2023):
//!
//! - the **variable-controllability analysis** (§III-C, Algorithm 1): a
//!   field-sensitive, interprocedural dataflow that classifies every value as
//!   ∞ / this / param-*i* ([`Weight`]), summarizes methods as [`Action`]s
//!   (Table III), and computes each call's `Polluted_Position`;
//! - **CPG construction** (§III-B): the ORG + PCG + MAG assembly into a
//!   property graph ([`Cpg`]) stored in the embedded `tabby-graph` database.
//!
//! Gadget-chain *search* over the CPG lives in `tabby-pathfinder`.
//!
//! # Examples
//!
//! ```
//! use tabby_core::{AnalysisConfig, Cpg};
//! use tabby_ir::{JType, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut cb = pb.class("demo.A").serializable();
//! let obj = cb.object_type("java.lang.Object");
//! let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
//! let this = mb.this();
//! let v = mb.fresh();
//! mb.get_field(v, this, "demo.A", "member", obj.clone());
//! let to_string = mb.sig("java.lang.Object", "toString", &[], obj);
//! mb.call_virtual(None, v, to_string, &[]);
//! mb.finish();
//! cb.finish();
//! let program = pb.build();
//! let cpg = Cpg::build(&program, AnalysisConfig::default());
//! assert!(cpg.stats.method_nodes >= 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod action;
pub mod callgraph;
pub mod config;
pub mod controllability;
pub mod cpg;
pub mod diagnostics;
pub mod envelope;
pub mod input;
pub mod parallel;
pub mod weight;

pub use action::{Action, ActionInput, ActionKey, ActionValue};
pub use callgraph::{StaticCallGraph, WaveSchedule};
pub use config::AnalysisConfig;
pub use controllability::{Analyzer, AnalyzerStats, CallSite, LocalMap, MethodSummary};
pub use cpg::{Cpg, CpgSchema, CpgStats};
pub use diagnostics::{
    ArtifactFault, ArtifactFaultKind, QuarantinedMethod, ScanDiagnostics, ShadowedClass,
    SkippedClass,
};
pub use envelope::{
    decode_envelope, encode_envelope, quarantine_file, read_envelope, write_envelope,
    EnvelopeError, Fault, Publish, ENVELOPE_MAGIC, ENVELOPE_VERSION, QUARANTINE_DIR,
};
pub use input::{
    archives_unsupported_error, classify, collect_inputs, is_archive_name, is_class_name,
    CollectedInputs, InputKind, ARCHIVE_EXTENSIONS,
};
pub use parallel::{
    canonical_summary_dump, summarize_program, summarize_program_contained,
    summarize_program_incremental, summarize_program_incremental_contained,
    summarize_program_sharded_contained, SchedulerStats, SummarizeOutcome,
};
pub use weight::{pp_from_ints, pp_to_ints, PollutedPosition, Weight};
