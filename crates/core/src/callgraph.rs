//! The static call graph and the SCC-wave summarization schedule.
//!
//! Algorithm 1's per-method summaries form a dependency graph: a method's
//! Action is a deterministic function of its body and of the Actions of its
//! resolved callees. This module materializes that graph once per program —
//! the same hierarchy-based resolution the analyzer itself performs at each
//! call site — condenses it with Tarjan's strongly-connected-components
//! algorithm, and lays the condensation out in bottom-up *waves*: every SCC
//! in wave *w* only calls into waves `< w`. A scheduler that publishes each
//! wave's summaries before starting the next therefore never re-derives a
//! callee summary: every method outside a genuine recursion cycle is
//! analyzed exactly once, at any worker count.
//!
//! Recursion SCCs (mutual or self) are kept whole: one worker summarizes
//! the members of a group in ascending [`MethodId`] order with a single
//! analyzer, so the in-progress cycle breaking of
//! [`crate::controllability::Analyzer`] unfolds exactly as it does in a
//! sequential whole-program pass.

use std::collections::{HashMap, HashSet};
use tabby_ir::{Expr, Hierarchy, InvokeExpr, InvokeKind, MethodId, Program, Stmt};

/// The method-level static call graph over methods *with bodies*.
///
/// Edges follow the analyzer's own resolution: for every non-`invokedynamic`
/// call site, the declared target is resolved through the class hierarchy;
/// targets without a body (abstract, native, phantom) have constant default
/// Actions and impose no ordering, so they carry no edge.
#[derive(Debug)]
pub struct StaticCallGraph {
    /// Methods with bodies, in program order (ascending [`MethodId`]).
    methods: Vec<MethodId>,
    index: HashMap<MethodId, u32>,
    /// Deduplicated callee edges, in first-encounter statement order.
    callees: Vec<Vec<u32>>,
    /// Reverse edges, for dirty-cone queries.
    callers: Vec<Vec<u32>>,
}

/// The bottom-up summarization schedule derived from the condensation.
#[derive(Debug, Clone, Default)]
pub struct WaveSchedule {
    /// `waves[w]` is the list of SCC groups runnable once waves `< w` are
    /// published; each group lists its members in ascending [`MethodId`]
    /// order. Groups within a wave are mutually independent.
    pub waves: Vec<Vec<Vec<MethodId>>>,
    /// Number of SCC groups scheduled.
    pub groups: usize,
    /// Size of the largest recursion SCC (1 when the scheduled subgraph is
    /// acyclic, 0 when nothing is scheduled).
    pub largest_scc: usize,
    /// Total methods scheduled.
    pub scheduled: usize,
}

/// Extracts the invoke expression of a statement, if any.
fn stmt_invoke(stmt: &Stmt) -> Option<&InvokeExpr> {
    match stmt {
        Stmt::Invoke(inv) => Some(inv),
        Stmt::Assign {
            rhs: Expr::Invoke(inv),
            ..
        } => Some(inv),
        _ => None,
    }
}

impl StaticCallGraph {
    /// Builds the call graph for `program`, resolving every call site the
    /// way [`crate::controllability::Analyzer`] does.
    pub fn build(program: &Program) -> Self {
        let hierarchy = Hierarchy::new(program);
        let methods: Vec<MethodId> = program
            .method_ids()
            .filter(|&id| program.method(id).body.is_some())
            .collect();
        let index: HashMap<MethodId, u32> = methods
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let mut callees: Vec<Vec<u32>> = vec![Vec::new(); methods.len()];
        let mut callers: Vec<Vec<u32>> = vec![Vec::new(); methods.len()];
        for (i, &id) in methods.iter().enumerate() {
            let Some(body) = &program.method(id).body else {
                continue;
            };
            let mut seen: HashSet<u32> = HashSet::new();
            for stmt in &body.stmts {
                let Some(inv) = stmt_invoke(stmt) else {
                    continue;
                };
                // invokedynamic is opaque to the analysis (§V-B): no edge.
                if inv.kind == InvokeKind::Dynamic {
                    continue;
                }
                let resolved = program.class_by_name(inv.callee.class).and_then(|class| {
                    hierarchy.resolve_method(class, inv.callee.name, inv.callee.params.len())
                });
                let Some(target) = resolved else { continue };
                let Some(&j) = index.get(&target) else {
                    continue; // bodiless target: constant default Action
                };
                if seen.insert(j) {
                    callees[i].push(j);
                    callers[j as usize].push(i as u32);
                }
            }
        }
        StaticCallGraph {
            methods,
            index,
            callees,
            callers,
        }
    }

    /// Methods with bodies, in program order.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// The reverse-dependency cone of `roots`: every method that can reach
    /// a root through call edges, roots included. This is the set a change
    /// to the roots' bodies can invalidate summaries of.
    pub fn transitive_callers<I: IntoIterator<Item = MethodId>>(
        &self,
        roots: I,
    ) -> HashSet<MethodId> {
        let mut cone: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = roots
            .into_iter()
            .filter_map(|id| self.index.get(&id).copied())
            .collect();
        while let Some(i) = stack.pop() {
            if !cone.insert(i) {
                continue;
            }
            stack.extend(self.callers[i as usize].iter().copied());
        }
        cone.into_iter().map(|i| self.methods[i as usize]).collect()
    }

    /// The schedule over every method with a body.
    pub fn schedule_all(&self) -> WaveSchedule {
        self.schedule_included(&vec![true; self.methods.len()])
    }

    /// The schedule over the subgraph induced by `todo` (methods outside it
    /// are assumed already summarized and published). For any caller-closed
    /// `todo` — the shape the incremental dirty cone guarantees — the
    /// induced SCCs and their entry order coincide with the full
    /// program's, so incremental waves reproduce cold-scan summaries
    /// byte-for-byte.
    pub fn schedule(&self, todo: &HashSet<MethodId>) -> WaveSchedule {
        let mut included = vec![false; self.methods.len()];
        for id in todo {
            if let Some(&i) = self.index.get(id) {
                included[i as usize] = true;
            }
        }
        self.schedule_included(&included)
    }

    /// Tarjan SCC over the induced subgraph, iteratively (corpora produce
    /// call chains far deeper than the thread stack tolerates), emitting
    /// components callees-first — which is exactly reverse topological
    /// order of the condensation, so wave numbers fall out of emission
    /// order.
    fn schedule_included(&self, included: &[bool]) -> WaveSchedule {
        let n = self.methods.len();
        const UNVISITED: u32 = u32::MAX;
        let mut order = vec![UNVISITED; n]; // discovery index
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n]; // SCC id per node
        let mut stack: Vec<u32> = Vec::new();
        let mut next_order = 0u32;
        let mut comp_members: Vec<Vec<u32>> = Vec::new();

        // Explicit DFS frames: (node, next-callee cursor).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if !included[root as usize] || order[root as usize] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            order[root as usize] = next_order;
            low[root as usize] = next_order;
            next_order += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                let vs = v as usize;
                let edges = &self.callees[vs];
                if *cursor < edges.len() {
                    let w = edges[*cursor];
                    *cursor += 1;
                    let ws = w as usize;
                    if !included[ws] {
                        continue;
                    }
                    if order[ws] == UNVISITED {
                        frames.push((w, 0));
                        order[ws] = next_order;
                        low[ws] = next_order;
                        next_order += 1;
                        stack.push(w);
                        on_stack[ws] = true;
                    } else if on_stack[ws] {
                        low[vs] = low[vs].min(order[ws]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        low[p as usize] = low[p as usize].min(low[vs]);
                    }
                    if low[vs] == order[vs] {
                        // Pop the completed component.
                        let c = comp_members.len() as u32;
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().unwrap_or(v);
                            on_stack[w as usize] = false;
                            comp[w as usize] = c;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        members.sort_unstable();
                        comp_members.push(members);
                    }
                }
            }
        }

        // Components were emitted callees-first: assign each the wave one
        // past its deepest callee component.
        let mut comp_wave = vec![0usize; comp_members.len()];
        let mut max_wave = 0usize;
        for (c, members) in comp_members.iter().enumerate() {
            let mut wave = 0usize;
            for &m in members {
                for &e in &self.callees[m as usize] {
                    if !included[e as usize] {
                        continue;
                    }
                    let ec = comp[e as usize] as usize;
                    if ec != c {
                        wave = wave.max(comp_wave[ec] + 1);
                    }
                }
            }
            comp_wave[c] = wave;
            max_wave = max_wave.max(wave);
        }

        let wave_count = if comp_members.is_empty() {
            0
        } else {
            max_wave + 1
        };
        let mut waves: Vec<Vec<Vec<MethodId>>> = vec![Vec::new(); wave_count];
        let mut largest_scc = 0usize;
        let mut scheduled = 0usize;
        for (c, members) in comp_members.iter().enumerate() {
            largest_scc = largest_scc.max(members.len());
            scheduled += members.len();
            let group: Vec<MethodId> = members.iter().map(|&m| self.methods[m as usize]).collect();
            waves[comp_wave[c]].push(group);
        }
        // Canonical group order within a wave: by least member. Groups are
        // independent, so this only fixes the report order.
        for wave in &mut waves {
            wave.sort_by_key(|g| g.first().copied());
        }
        WaveSchedule {
            waves,
            groups: comp_members.len(),
            largest_scc,
            scheduled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    /// `a -> b -> c`, plus `r1 <-> r2` mutual recursion calling `c`.
    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.T");
        let obj = cb.object_type("java.lang.Object");
        let spec = [
            ("a", vec!["b"]),
            ("b", vec!["c"]),
            ("c", vec![]),
            ("r1", vec!["r2", "c"]),
            ("r2", vec!["r1"]),
        ];
        for (name, callees) in spec {
            let mut mb = cb.method(name, vec![obj.clone()], obj.clone());
            let p0 = mb.param(0);
            let mut last = p0;
            for callee in callees {
                let sig = mb.sig("t.T", callee, &[obj.clone()], obj.clone());
                let this = mb.this();
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, sig, &[last.into()]);
                last = r;
            }
            mb.ret(last);
            mb.finish();
        }
        cb.finish();
        let _ = JType::Int;
        pb.build()
    }

    fn name_of(p: &Program, id: MethodId) -> String {
        p.describe_method(id)
    }

    #[test]
    fn waves_are_bottom_up_and_sccs_are_grouped() {
        let p = sample();
        let cg = StaticCallGraph::build(&p);
        let schedule = cg.schedule_all();
        assert_eq!(schedule.scheduled, 5);
        assert_eq!(schedule.largest_scc, 2, "{schedule:?}");
        // c must come strictly before b, b before a, c before the {r1, r2}
        // group.
        let wave_of = |needle: &str| {
            schedule
                .waves
                .iter()
                .position(|w| {
                    w.iter()
                        .any(|g| g.iter().any(|&m| name_of(&p, m).ends_with(needle)))
                })
                .unwrap()
        };
        assert!(wave_of(".c") < wave_of(".b"));
        assert!(wave_of(".b") < wave_of(".a"));
        assert!(wave_of(".c") < wave_of(".r1"));
        // r1 and r2 share a group.
        let group = schedule.waves[wave_of(".r1")]
            .iter()
            .find(|g| g.iter().any(|&m| name_of(&p, m).ends_with(".r1")))
            .unwrap();
        assert_eq!(group.len(), 2);
        let names: Vec<String> = group.iter().map(|&m| name_of(&p, m)).collect();
        assert!(names.contains(&"t.T.r2".to_owned()));
    }

    #[test]
    fn induced_schedule_keeps_sccs_whole() {
        let p = sample();
        let cg = StaticCallGraph::build(&p);
        let dirty: HashSet<MethodId> = cg
            .methods()
            .iter()
            .copied()
            .filter(|&m| {
                let n = name_of(&p, m);
                n.ends_with(".r1") || n.ends_with(".r2")
            })
            .collect();
        let schedule = cg.schedule(&dirty);
        assert_eq!(schedule.scheduled, 2);
        assert_eq!(schedule.groups, 1);
        assert_eq!(schedule.largest_scc, 2);
        assert_eq!(schedule.waves.len(), 1);
    }

    #[test]
    fn transitive_callers_is_the_reverse_cone() {
        let p = sample();
        let cg = StaticCallGraph::build(&p);
        let c = cg
            .methods()
            .iter()
            .copied()
            .find(|&m| name_of(&p, m).ends_with(".c"))
            .unwrap();
        let cone: HashSet<String> = cg
            .transitive_callers([c])
            .into_iter()
            .map(|m| name_of(&p, m))
            .collect();
        // Everything reaches c except nothing — a, b, r1, r2 all do.
        assert_eq!(cone.len(), 5, "{cone:?}");
    }

    #[test]
    fn empty_todo_schedules_nothing() {
        let p = sample();
        let cg = StaticCallGraph::build(&p);
        let schedule = cg.schedule(&HashSet::new());
        assert_eq!(schedule.scheduled, 0);
        assert_eq!(schedule.waves.len(), 0);
        assert_eq!(schedule.largest_scc, 0);
    }
}
