//! Crash-safe on-disk artifact envelope.
//!
//! Every artifact Tabby persists — service-cache chain sets and CPGs,
//! registry snapshots, pin lists — is wrapped in one fixed binary envelope
//! so a reader can tell a complete, untampered artifact from a torn write,
//! bit rot, or a blob written by an incompatible build *before* handing the
//! payload to a parser:
//!
//! ```text
//! offset  size  field
//! 0       4     magic          b"TBE\0"
//! 4       2     format version u16 LE ([`ENVELOPE_VERSION`])
//! 6       2     payload kind   u16 LE (caller-chosen artifact tag)
//! 8       8     payload length u64 LE
//! 16      8     FNV-64 checksum of the payload, u64 LE
//! 24      —     payload bytes
//! ```
//!
//! Writes are durable: the envelope goes to a unique temp file that is
//! fsync'd before an atomic publish (rename, or `link` for create-new
//! semantics), and the parent directory is fsync'd after the publish so the
//! directory entry itself survives power loss. Verification failures are
//! never fatal and never served — callers use [`quarantine_file`] to move
//! the bad file into a `quarantine/` sibling directory and recompute.
//!
//! The module also hosts the chaos-test [`Fault`] plan: a process-global
//! queue of injectable persistence faults (torn write at byte N, `ENOSPC`,
//! fsync failure) that the writer consults, so `tests/chaos.rs` can
//! deterministically simulate crashes without killing the process.

use std::collections::VecDeque;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tabby_graph::Fnv64;

/// The four magic bytes opening every envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"TBE\0";
/// Envelope format version this build writes and reads.
pub const ENVELOPE_VERSION: u16 = 1;
/// Total header size in bytes; the payload starts here.
pub const ENVELOPE_HEADER_LEN: usize = 24;
/// Byte offset of the format-version field (u16 LE) within the header.
pub const ENVELOPE_VERSION_OFFSET: usize = 4;
/// Name of the sibling directory corrupt artifacts are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Artifact kind tags (the `kind` header field). Purely a cross-wiring
/// guard: reading a chains blob as a CPG fails cleanly instead of feeding
/// one parser another artifact's JSON.
pub mod kind {
    /// Service-cache gadget-chain set.
    pub const CHAINS: u16 = 1;
    /// Service-cache serialized CPG.
    pub const CPG: u16 = 2;
    /// Registry snapshot.
    pub const SNAPSHOT: u16 = 3;
    /// Registry per-corpus pin list.
    pub const PINS: u16 = 4;
    /// Service-cache flat (offset-based, mmap-able) CPG.
    pub const FLAT_CPG: u16 = 5;
}

/// How [`write_envelope`] publishes the temp file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Publish {
    /// `rename(tmp, path)`: replaces any existing file. For caches, where
    /// concurrent writers of the same key race benignly (same content).
    Overwrite,
    /// `link(tmp, path)`: fails with [`EnvelopeError::AlreadyExists`] if
    /// the target exists. For immutable registry versions, where two
    /// writers must never mint the same `corpus@vN`.
    CreateNew,
}

/// Why an envelope read or write failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The file does not exist — a normal cache miss, not a fault.
    Missing,
    /// The file exists but does not start with the envelope magic; it may
    /// be a legacy plain-JSON artifact the caller can still parse.
    NotAnEnvelope,
    /// The file starts with the magic but fails verification: truncated
    /// header, length mismatch, or checksum mismatch.
    Corrupt(String),
    /// The envelope was written by a different envelope format version.
    WrongVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build reads.
        expected: u16,
    },
    /// The envelope holds a different artifact kind than the caller asked
    /// for.
    WrongKind {
        /// Kind tag found in the header.
        found: u16,
        /// Kind tag the caller expected.
        expected: u16,
    },
    /// Create-new publish found the target already present.
    AlreadyExists,
    /// An underlying I/O failure (including injected faults).
    Io(String),
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Missing => f.write_str("no such artifact"),
            EnvelopeError::NotAnEnvelope => f.write_str("not an envelope (no magic)"),
            EnvelopeError::Corrupt(reason) => write!(f, "corrupt envelope: {reason}"),
            EnvelopeError::WrongVersion { found, expected } => {
                write!(f, "envelope format v{found}, this build reads v{expected}")
            }
            EnvelopeError::WrongKind { found, expected } => {
                write!(
                    f,
                    "envelope holds artifact kind {found}, expected {expected}"
                )
            }
            EnvelopeError::AlreadyExists => f.write_str("target already exists"),
            EnvelopeError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl EnvelopeError {
    /// True for verification failures that should quarantine the file
    /// (as opposed to a miss, an I/O error, or a publish race).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            EnvelopeError::NotAnEnvelope
                | EnvelopeError::Corrupt(_)
                | EnvelopeError::WrongVersion { .. }
                | EnvelopeError::WrongKind { .. }
        )
    }
}

/// Serializes `payload` into envelope bytes (header + payload).
pub fn encode_envelope(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut hasher = Fnv64::new();
    hasher.write(payload);
    let checksum = hasher.finish();
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + payload.len());
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies envelope `bytes` and returns the payload slice.
///
/// # Errors
///
/// [`EnvelopeError::NotAnEnvelope`] when the magic is absent (legacy
/// plain-JSON files land here), otherwise the specific verification
/// failure.
pub fn decode_envelope(bytes: &[u8], expected_kind: u16) -> Result<&[u8], EnvelopeError> {
    if bytes.len() < ENVELOPE_MAGIC.len() || bytes[..ENVELOPE_MAGIC.len()] != ENVELOPE_MAGIC {
        return Err(EnvelopeError::NotAnEnvelope);
    }
    if bytes.len() < ENVELOPE_HEADER_LEN {
        return Err(EnvelopeError::Corrupt(format!(
            "truncated header: {} of {ENVELOPE_HEADER_LEN} bytes",
            bytes.len()
        )));
    }
    let u16_at = |off: usize| u16::from_le_bytes([bytes[off], bytes[off + 1]]);
    let u64_at = |off: usize| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[off..off + 8]);
        u64::from_le_bytes(raw)
    };
    let version = u16_at(ENVELOPE_VERSION_OFFSET);
    if version != ENVELOPE_VERSION {
        return Err(EnvelopeError::WrongVersion {
            found: version,
            expected: ENVELOPE_VERSION,
        });
    }
    let kind = u16_at(6);
    if kind != expected_kind {
        return Err(EnvelopeError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    let len = u64_at(8) as usize;
    let payload = &bytes[ENVELOPE_HEADER_LEN..];
    if payload.len() != len {
        return Err(EnvelopeError::Corrupt(format!(
            "payload length {} does not match header ({len})",
            payload.len()
        )));
    }
    let mut hasher = Fnv64::new();
    hasher.write(payload);
    let checksum = hasher.finish();
    let expected = u64_at(16);
    if checksum != expected {
        return Err(EnvelopeError::Corrupt(format!(
            "checksum {checksum:016x} does not match header {expected:016x}"
        )));
    }
    Ok(payload)
}

/// Reads and verifies the envelope at `path`, returning the payload.
///
/// # Errors
///
/// [`EnvelopeError::Missing`] when the file does not exist; otherwise the
/// verification or I/O failure.
pub fn read_envelope(path: &Path, expected_kind: u16) -> Result<Vec<u8>, EnvelopeError> {
    let bytes = fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            EnvelopeError::Missing
        } else {
            EnvelopeError::Io(format!("cannot read {}: {e}", path.display()))
        }
    })?;
    decode_envelope(&bytes, expected_kind).map(<[u8]>::to_vec)
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{name}.{}-{unique}.tmp", std::process::id()))
}

fn fsync_parent(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        // Directory fsync makes the new directory entry itself durable;
        // without it a power loss can forget the rename.
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Durably writes `payload` wrapped in an envelope to `path`.
///
/// The bytes go to a unique dot-prefixed `*.tmp` sibling, are fsync'd, and
/// are then atomically published per `publish`; finally the parent
/// directory is fsync'd. A failed write cleans up its temp file — except a
/// simulated crash ([`Fault::TornWrite`]), which deliberately leaves the
/// partial temp behind, exactly as a real power loss would.
///
/// # Errors
///
/// [`EnvelopeError::AlreadyExists`] when `publish` is
/// [`Publish::CreateNew`] and the target exists; [`EnvelopeError::Io`] on
/// any I/O failure (including injected faults).
pub fn write_envelope(
    path: &Path,
    kind: u16,
    payload: &[u8],
    publish: Publish,
) -> Result<(), EnvelopeError> {
    let bytes = encode_envelope(kind, payload);
    let tmp = tmp_path(path);
    let fault = take_fault(path);
    match fault {
        Some(Fault::TornWrite { at_byte }) => {
            // Simulated crash mid-write: some prefix of the temp file
            // reaches disk, the process "dies" before rename — the partial
            // temp file stays behind for the recovery sweep to find.
            let n = at_byte.min(bytes.len());
            let torn = fs::File::create(&tmp).and_then(|mut f| {
                f.write_all(&bytes[..n])?;
                f.sync_all()
            });
            return Err(EnvelopeError::Io(match torn {
                Ok(()) => format!("simulated crash after {n} bytes (torn write)"),
                Err(e) => format!("simulated crash (torn write): {e}"),
            }));
        }
        Some(Fault::Enospc) => {
            let _ = fs::remove_file(&tmp);
            return Err(EnvelopeError::Io(
                "No space left on device (simulated ENOSPC)".to_owned(),
            ));
        }
        Some(Fault::FsyncFail) => {
            let write = fs::File::create(&tmp).and_then(|mut f| f.write_all(&bytes));
            let _ = write;
            let _ = fs::remove_file(&tmp);
            return Err(EnvelopeError::Io("fsync failed (simulated)".to_owned()));
        }
        None => {}
    }
    let written = fs::File::create(&tmp).and_then(|mut f| {
        f.write_all(&bytes)?;
        f.sync_all()
    });
    if let Err(e) = written {
        let _ = fs::remove_file(&tmp);
        return Err(EnvelopeError::Io(format!(
            "cannot write {}: {e}",
            tmp.display()
        )));
    }
    match publish {
        Publish::Overwrite => {
            if let Err(e) = fs::rename(&tmp, path) {
                let _ = fs::remove_file(&tmp);
                return Err(EnvelopeError::Io(format!(
                    "cannot publish {}: {e}",
                    path.display()
                )));
            }
        }
        Publish::CreateNew => {
            // hard_link fails atomically when the target exists, closing
            // the check-then-rename race rename() would leave open.
            let linked = fs::hard_link(&tmp, path);
            let _ = fs::remove_file(&tmp);
            match linked {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    return Err(EnvelopeError::AlreadyExists);
                }
                Err(e) => {
                    return Err(EnvelopeError::Io(format!(
                        "cannot publish {}: {e}",
                        path.display()
                    )));
                }
            }
        }
    }
    if let Err(e) = fsync_parent(path) {
        return Err(EnvelopeError::Io(format!(
            "cannot fsync parent of {}: {e}",
            path.display()
        )));
    }
    Ok(())
}

/// Moves a corrupt artifact into the `quarantine/` directory next to it,
/// returning the new path. Creating the directory is lazy; an existing
/// quarantined file of the same name is overwritten (same artifact,
/// re-corrupted). Falls back to deleting the file if the move fails, so a
/// corrupt artifact is never left in place to be re-served.
///
/// # Errors
///
/// Returns a message when the file can be neither moved nor removed.
pub fn quarantine_file(path: &Path) -> Result<PathBuf, String> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let qdir = parent.join(QUARANTINE_DIR);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let dest = qdir.join(&name);
    let moved = fs::create_dir_all(&qdir).and_then(|()| fs::rename(path, &dest));
    match moved {
        Ok(()) => Ok(dest),
        Err(move_err) => match fs::remove_file(path) {
            Ok(()) => Ok(dest),
            Err(rm_err) => Err(format!(
                "cannot quarantine {}: move failed ({move_err}), remove failed ({rm_err})",
                path.display()
            )),
        },
    }
}

/// True for the dot-prefixed `*.tmp` siblings [`write_envelope`] stages
/// through — what a crash-recovery sweep should delete.
pub fn is_orphan_tmp(name: &str) -> bool {
    name.starts_with('.') && name.ends_with(".tmp")
}

/// Removes orphaned write-staging temp files under `dir` (non-recursive).
/// Returns how many were removed. Missing or unreadable directories count
/// as zero orphans — recovery never fails an open.
pub fn sweep_orphan_tmps(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_orphan_tmp(name) && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// One injectable persistence fault for the chaos harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The write dies after `at_byte` bytes reach the temp file: no
    /// publish, the partial temp is left behind (simulated power loss).
    TornWrite {
        /// How many bytes of header+payload reach disk before the "crash".
        at_byte: usize,
    },
    /// The write fails as if the disk were full; cleanup runs and the
    /// error surfaces to the caller.
    Enospc,
    /// The data fsync fails; cleanup runs and the error surfaces.
    FsyncFail,
}

struct PlannedFault {
    path_contains: String,
    fault: Fault,
}

static FAULT_PLAN: Mutex<VecDeque<PlannedFault>> = Mutex::new(VecDeque::new());

fn fault_plan() -> std::sync::MutexGuard<'static, VecDeque<PlannedFault>> {
    FAULT_PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms one fault: the next [`write_envelope`] whose target path contains
/// `path_contains` suffers `fault` (and the fault is consumed). Chaos
/// tests scope faults to their own temp directories via the substring so
/// parallel tests don't trip each other's plans.
pub fn inject_write_fault(path_contains: &str, fault: Fault) {
    fault_plan().push_back(PlannedFault {
        path_contains: path_contains.to_owned(),
        fault,
    });
}

/// Disarms all pending faults whose path filter contains `path_contains`
/// (an empty string clears everything). Returns how many were removed.
pub fn clear_write_faults(path_contains: &str) -> usize {
    let mut plan = fault_plan();
    let before = plan.len();
    plan.retain(|p| !p.path_contains.contains(path_contains));
    before - plan.len()
}

/// How many injected faults are still armed (any filter).
pub fn pending_write_faults() -> usize {
    fault_plan().len()
}

fn take_fault(path: &Path) -> Option<Fault> {
    let mut plan = fault_plan();
    if plan.is_empty() {
        return None;
    }
    let text = path.to_string_lossy();
    let idx = plan.iter().position(|p| text.contains(&p.path_contains))?;
    plan.remove(idx).map(|p| p.fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabby-envelope-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn round_trip_preserves_payload() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("artifact.tbe");
        write_envelope(&path, kind::CHAINS, b"[1,2,3]", Publish::Overwrite).expect("write");
        let payload = read_envelope(&path, kind::CHAINS).expect("read");
        assert_eq!(payload, b"[1,2,3]");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_as_missing() {
        let dir = temp_dir("missing");
        assert_eq!(
            read_envelope(&dir.join("nope.tbe"), kind::CHAINS),
            Err(EnvelopeError::Missing)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_json_is_not_an_envelope() {
        let dir = temp_dir("legacy");
        let path = dir.join("legacy.json");
        fs::write(&path, b"[\"legacy\"]").expect("write");
        assert_eq!(
            read_envelope(&path, kind::CHAINS),
            Err(EnvelopeError::NotAnEnvelope)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_bitflip_and_version_skew_are_detected() {
        let dir = temp_dir("verify");
        let path = dir.join("artifact.tbe");
        write_envelope(&path, kind::CHAINS, b"payload bytes", Publish::Overwrite).expect("write");
        let valid = fs::read(&path).expect("read back");

        // Truncated mid-payload: length mismatch.
        let err = decode_envelope(&valid[..valid.len() - 3], kind::CHAINS).expect_err("truncated");
        assert!(matches!(err, EnvelopeError::Corrupt(_)), "{err:?}");

        // Truncated mid-header.
        let err = decode_envelope(&valid[..10], kind::CHAINS).expect_err("short header");
        assert!(matches!(err, EnvelopeError::Corrupt(_)), "{err:?}");

        // One payload bit flipped: checksum mismatch.
        let mut flipped = valid.clone();
        flipped[ENVELOPE_HEADER_LEN + 2] ^= 0x40;
        let err = decode_envelope(&flipped, kind::CHAINS).expect_err("bit flip");
        assert!(matches!(err, EnvelopeError::Corrupt(_)), "{err:?}");

        // Future format version.
        let mut future = valid.clone();
        future[ENVELOPE_VERSION_OFFSET] = (ENVELOPE_VERSION + 1) as u8;
        let err = decode_envelope(&future, kind::CHAINS).expect_err("future version");
        assert_eq!(
            err,
            EnvelopeError::WrongVersion {
                found: ENVELOPE_VERSION + 1,
                expected: ENVELOPE_VERSION
            }
        );

        // Wrong artifact kind.
        let err = decode_envelope(&valid, kind::CPG).expect_err("kind mismatch");
        assert_eq!(
            err,
            EnvelopeError::WrongKind {
                found: kind::CHAINS,
                expected: kind::CPG
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_new_publish_is_immutable() {
        let dir = temp_dir("createnew");
        let path = dir.join("v1.json");
        write_envelope(&path, kind::SNAPSHOT, b"one", Publish::CreateNew).expect("first");
        let err = write_envelope(&path, kind::SNAPSHOT, b"two", Publish::CreateNew)
            .expect_err("second must fail");
        assert_eq!(err, EnvelopeError::AlreadyExists);
        assert_eq!(
            read_envelope(&path, kind::SNAPSHOT).expect("read"),
            b"one".to_vec()
        );
        // No temp debris either way.
        assert_eq!(sweep_orphan_tmps(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_partial_tmp_and_no_published_file() {
        let dir = temp_dir("torn");
        let path = dir.join("chains").join("artifact.tbe");
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        inject_write_fault(&dir.to_string_lossy(), Fault::TornWrite { at_byte: 7 });
        let err = write_envelope(&path, kind::CHAINS, b"payload", Publish::Overwrite)
            .expect_err("torn write must fail");
        assert!(matches!(err, EnvelopeError::Io(_)), "{err:?}");
        assert!(!path.exists(), "torn write must not publish");
        // Exactly the 7-byte partial temp file is left behind...
        let orphans = sweep_orphan_tmps(path.parent().expect("parent"));
        assert_eq!(orphans, 1, "partial temp survives the crash");
        // ...and the fault was consumed: the retry succeeds.
        write_envelope(&path, kind::CHAINS, b"payload", Publish::Overwrite).expect("retry");
        assert_eq!(
            read_envelope(&path, kind::CHAINS).expect("read"),
            b"payload".to_vec()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fails_clean_without_debris() {
        let dir = temp_dir("enospc");
        let path = dir.join("artifact.tbe");
        inject_write_fault(&dir.to_string_lossy(), Fault::Enospc);
        let err = write_envelope(&path, kind::CHAINS, b"payload", Publish::Overwrite)
            .expect_err("enospc must fail");
        assert!(format!("{err}").contains("No space left"), "{err:?}");
        assert!(!path.exists());
        assert_eq!(sweep_orphan_tmps(&dir), 0, "ENOSPC cleanup leaves no temp");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_file_into_sibling_dir() {
        let dir = temp_dir("quarantine");
        let path = dir.join("bad.tbe");
        fs::write(&path, b"garbage").expect("write");
        let dest = quarantine_file(&path).expect("quarantine");
        assert!(!path.exists());
        assert_eq!(dest, dir.join(QUARANTINE_DIR).join("bad.tbe"));
        assert_eq!(fs::read(&dest).expect("read"), b"garbage");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_filters_scope_to_matching_paths() {
        let dir = temp_dir("filters");
        inject_write_fault("no-such-path-substring", Fault::Enospc);
        let path = dir.join("artifact.tbe");
        write_envelope(&path, kind::CHAINS, b"x", Publish::Overwrite)
            .expect("non-matching fault must not fire");
        assert_eq!(clear_write_faults("no-such-path-substring"), 1);
        assert_eq!(pending_write_faults(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
