//! Analysis configuration knobs.
//!
//! Every knob corresponds either to a design decision the paper calls out
//! (and which `benches/ablation.rs` measures) or to a robustness bound the
//! paper leaves implicit.

/// Configuration for the controllability analysis and CPG construction.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Track one-level field paths (`a.f`) in the local map — Fig. 5's
    /// field-sensitive points-to analysis. Turning this off collapses
    /// `a.f` to `a` (ablation: precision loss).
    pub field_sensitive: bool,
    /// Memoize per-method [`crate::Action`] summaries — "the Action property
    /// also serves as a caching mechanism" (§III-C). Turning this off
    /// re-analyzes callees at every call site (ablation: analysis cost).
    pub action_cache: bool,
    /// Drop CALL edges whose Polluted_Position is all-∞, turning the Method
    /// Call Graph into the Precise Call Graph (§III-B2). Turning this off
    /// keeps the full MCG (ablation: path explosion, FPR).
    pub prune_uncontrollable_calls: bool,
    /// For calls whose target has no analyzable body (phantom classes,
    /// `native` methods), assume the permissive taint-through summary
    /// instead of the conservative identity summary.
    pub taint_through_unresolved: bool,
    /// Maximum interprocedural analysis depth before falling back to the
    /// identity summary (recursion/depth bound; the paper is silent, see
    /// DESIGN.md §6).
    pub max_call_depth: usize,
    /// Maximum fixed-point sweeps over one method body (safety bound; the
    /// weight lattice converges long before this in practice).
    pub max_iterations: usize,
    /// Maximum statement-transfer steps across one method's whole fixpoint
    /// (all sweeps combined). When the budget runs out the summary computed
    /// so far is kept and flagged truncated instead of hanging the phase.
    pub max_fixpoint_steps: usize,
    /// Fault-injection hook: panic when summarizing a method whose
    /// `Class.method` name contains this substring. Used by the corruption
    /// harness and the service's `inject_fault` option to prove panic
    /// containment; `None` in production.
    pub panic_on_method: Option<String>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            field_sensitive: true,
            action_cache: true,
            prune_uncontrollable_calls: true,
            taint_through_unresolved: true,
            max_call_depth: 48,
            max_iterations: 32,
            max_fixpoint_steps: 4_000_000,
            panic_on_method: None,
        }
    }
}

impl AnalysisConfig {
    /// The paper's configuration (all precision features on).
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = AnalysisConfig::default();
        assert!(c.field_sensitive);
        assert!(c.action_cache);
        assert!(c.prune_uncontrollable_calls);
    }
}
