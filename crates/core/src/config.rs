//! Analysis configuration knobs.
//!
//! Every knob corresponds either to a design decision the paper calls out
//! (and which `benches/ablation.rs` measures) or to a robustness bound the
//! paper leaves implicit.

/// Configuration for the controllability analysis and CPG construction.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Track one-level field paths (`a.f`) in the local map — Fig. 5's
    /// field-sensitive points-to analysis. Turning this off collapses
    /// `a.f` to `a` (ablation: precision loss).
    pub field_sensitive: bool,
    /// Memoize per-method [`crate::Action`] summaries — "the Action property
    /// also serves as a caching mechanism" (§III-C). Turning this off
    /// re-analyzes callees at every call site (ablation: analysis cost).
    pub action_cache: bool,
    /// Drop CALL edges whose Polluted_Position is all-∞, turning the Method
    /// Call Graph into the Precise Call Graph (§III-B2). Turning this off
    /// keeps the full MCG (ablation: path explosion, FPR).
    pub prune_uncontrollable_calls: bool,
    /// For calls whose target has no analyzable body (phantom classes,
    /// `native` methods), assume the permissive taint-through summary
    /// instead of the conservative identity summary.
    pub taint_through_unresolved: bool,
    /// Maximum interprocedural analysis depth before falling back to the
    /// identity summary (recursion/depth bound; the paper is silent, see
    /// DESIGN.md §6).
    pub max_call_depth: usize,
    /// Maximum fixed-point sweeps over one method body (safety bound; the
    /// weight lattice converges long before this in practice).
    pub max_iterations: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            field_sensitive: true,
            action_cache: true,
            prune_uncontrollable_calls: true,
            taint_through_unresolved: true,
            max_call_depth: 48,
            max_iterations: 32,
        }
    }
}

impl AnalysisConfig {
    /// The paper's configuration (all precision features on).
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = AnalysisConfig::default();
        assert!(c.field_sensitive);
        assert!(c.action_cache);
        assert!(c.prune_uncontrollable_calls);
    }
}
