//! Property-based tests for the analysis domain: weight-lattice laws,
//! paper-encoding round trips, and analyzer robustness over generated
//! programs.

use proptest::prelude::*;
use tabby_core::{pp_from_ints, pp_to_ints, AnalysisConfig, Analyzer, Cpg, Weight};
use tabby_ir::{Program, ProgramBuilder};

fn weight() -> impl Strategy<Value = Weight> {
    prop_oneof![
        Just(Weight::Unknown),
        Just(Weight::This),
        (1u16..6).prop_map(Weight::Param),
    ]
}

/// Deterministic mini-library generator (tabby-core cannot depend on
/// tabby-workloads, so the corpus lives here).
fn mini_lib(classes: usize, seed: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    for i in 0..classes {
        let fqcn = format!("g.C{i}");
        let mut cb = pb.class(&fqcn);
        let obj = cb.object_type("java.lang.Object");
        cb.field("f", obj.clone());
        let mut mb = cb.method("m", vec![obj.clone()], obj.clone());
        let this = mb.this();
        let p0 = mb.param(0);
        let peer = (i as u64 + seed) % classes as u64;
        let callee = mb.sig(&format!("g.C{peer}"), "m", &[obj.clone()], obj.clone());
        mb.put_field(this, &fqcn, "f", obj.clone(), p0);
        let v = mb.fresh();
        mb.get_field(v, this, &fqcn, "f", obj.clone());
        let r = mb.fresh();
        mb.call_virtual(Some(r), this, callee, &[v.into()]);
        mb.ret(r);
        mb.finish();
        cb.finish();
    }
    pb.build()
}

proptest! {
    #[test]
    fn join_is_commutative_associative_idempotent(a in weight(), b in weight(), c in weight()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        // Unknown is the identity.
        prop_assert_eq!(a.join(Weight::Unknown), a);
    }

    #[test]
    fn join_never_loses_controllability(a in weight(), b in weight()) {
        let j = a.join(b);
        prop_assert_eq!(j.is_controllable(), a.is_controllable() || b.is_controllable());
    }

    #[test]
    fn pp_encoding_round_trips(pp in prop::collection::vec(weight(), 0..8)) {
        prop_assert_eq!(pp_from_ints(&pp_to_ints(&pp)), pp);
    }

    #[test]
    fn analyzer_is_total_over_generated_chains(depth in 1usize..10, with_field in any::<bool>()) {
        // A call chain of the given depth, alternating direct and
        // field-loaded argument passing; the analyzer must terminate and
        // the final Action must keep the parameter controllable.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.Chain");
        let obj = cb.object_type("java.lang.Object");
        cb.field("hold", obj.clone());
        for i in 0..depth {
            let mut mb = cb.method(&format!("step{i}"), vec![obj.clone()], obj.clone());
            let this = mb.this();
            let p0 = mb.param(0);
            let arg = if with_field && i % 2 == 0 {
                mb.put_field(this, "t.Chain", "hold", obj.clone(), p0);
                let v = mb.fresh();
                mb.get_field(v, this, "t.Chain", "hold", obj.clone());
                v
            } else {
                p0
            };
            if i + 1 < depth {
                let callee = mb.sig("t.Chain", &format!("step{}", i + 1), &[obj.clone()], obj.clone());
                let r = mb.fresh();
                mb.call_virtual(Some(r), this, callee, &[arg.into()]);
                mb.ret(r);
            } else {
                mb.ret(arg);
            }
            mb.finish();
        }
        cb.finish();
        let p = pb.build();
        let mut analyzer = Analyzer::new(&p, AnalysisConfig::default());
        let step0 = p
            .method_ids()
            .find(|id| p.name(p.method(*id).name) == "step0")
            .unwrap();
        let action = analyzer.analyze(step0);
        use tabby_core::{ActionKey, ActionValue};
        let ret = action.get(ActionKey::Return).unwrap();
        prop_assert_ne!(ret, ActionValue::Null, "the chained value stays controllable");
    }

    #[test]
    fn cpg_build_is_deterministic(classes in 2usize..20, seed in 0u64..50) {
        let p1 = mini_lib(classes, seed);
        let p2 = mini_lib(classes, seed);
        let a = Cpg::build(&p1, AnalysisConfig::default());
        let b = Cpg::build(&p2, AnalysisConfig::default());
        prop_assert_eq!(a.stats.class_nodes, b.stats.class_nodes);
        prop_assert_eq!(a.stats.method_nodes, b.stats.method_nodes);
        prop_assert_eq!(a.stats.relationship_edges, b.stats.relationship_edges);
    }

    #[test]
    fn pruning_only_removes_edges(classes in 2usize..15, seed in 0u64..20) {
        // The MCG (pruning off) always has at least as many edges as the
        // PCG, and pruning never invents edges.
        let p = mini_lib(classes, seed);
        let pcg = Cpg::build(&p, AnalysisConfig::default());
        let mcg = Cpg::build(
            &p,
            AnalysisConfig {
                prune_uncontrollable_calls: false,
                ..AnalysisConfig::default()
            },
        );
        prop_assert!(mcg.stats.relationship_edges >= pcg.stats.relationship_edges);
        prop_assert_eq!(
            mcg.stats.relationship_edges - pcg.stats.relationship_edges,
            pcg.stats.pruned_calls
        );
    }
}
