//! The two-level content-addressed scan cache.
//!
//! **Level 1 — per class.** Keyed by the FNV-1a hash of the `.class` bytes:
//! the lifted IR [`Class`]. Because every job's program is built from one
//! shared append-only [`Interner`], the symbols inside a cached class stay
//! valid across scans, so a class parsed and lifted once is never lifted
//! again while its bytes are unchanged.
//!
//! **Level 2 — per job.** Keyed by the hash of the component's (sorted,
//! deduplicated) class-content hashes plus the analysis/search options:
//! the found chain set, and one level below it the assembled CPG with its
//! annotated sink/source nodes. A warm re-scan of an unchanged component
//! is a chain-cache hit (no work at all); a re-scan with different search
//! options is a CPG-cache hit (search only).
//!
//! Between the two levels sits the per-component summary state: the
//! Action/summary of every method from the previous scan of the same path
//! set, used to re-summarize only changed classes and their
//! reverse-dependency cone (see `engine`).
//!
//! Chain sets and CPGs persist to `cache_dir` (when configured) as JSON:
//! `chains/<key>.json` and `cpgs/<key>.json`, written atomically via a
//! temp file + rename. Per-class IR and method summaries are memory-only —
//! they embed interner symbols that are only meaningful within the owning
//! daemon process.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use tabby_core::{MethodSummary, ScanDiagnostics};
use tabby_graph::Graph;
use tabby_ir::{Class, Interner, MethodId, Symbol};
use tabby_pathfinder::GadgetChain;

/// A lifted class plus the metadata the engine needs without re-resolving
/// symbols.
#[derive(Debug, Clone)]
pub struct CachedClass {
    /// Dotted binary name (resolved once at lift time).
    pub fqcn: String,
    /// The lifted IR, symbols owned by the daemon's shared interner.
    pub class: Class,
}

/// A cached chain set together with the diagnostics of the scan that
/// produced it, so a cache hit reports the same degradations as the
/// original run did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedChains {
    /// The found gadget chains, source-first.
    pub chains: Vec<GadgetChain>,
    /// What was skipped/quarantined/truncated when they were computed.
    /// `#[serde(default)]` lets pre-existing disk entries (written before
    /// diagnostics existed) load as clean scans.
    #[serde(default)]
    pub diagnostics: ScanDiagnostics,
}

/// A cached assembled CPG: the graph plus the sink/source annotation the
/// chain search needs, in serializable form.
#[derive(Debug, Serialize, Deserialize)]
pub struct CachedCpg {
    /// The property graph (serde round-trip; callers must have run
    /// [`Graph::rebuild_after_deserialize`] — [`ScanCache::get_cpg`] does).
    pub graph: Graph,
    /// Annotated sink nodes: `(node id, Trigger_Condition, category)`.
    pub sinks: Vec<(u32, Vec<u16>, String)>,
    /// Annotated source nodes.
    pub sources: Vec<u32>,
    /// Lift/summarize-phase diagnostics of the scan that built this CPG
    /// (search-phase degradations are per-query, not cached here).
    #[serde(default)]
    pub diagnostics: ScanDiagnostics,
}

/// Per-component summary state from the previous scan of the same path
/// set: everything needed to reuse clean methods' summaries in the next
/// scan.
#[derive(Debug)]
pub struct ComponentState {
    /// Class-content hash per FQCN at the time of the scan.
    pub class_hashes: HashMap<String, u64>,
    /// `ClassId.0 → name symbol` of the previous program, for remapping
    /// the previous scan's `MethodId`s into the next program.
    pub class_order: Vec<Symbol>,
    /// Every body method's summary, keyed by the previous program's ids.
    pub summaries: HashMap<MethodId, MethodSummary>,
}

/// The daemon-wide scan cache. One instance lives behind a mutex in the
/// engine; entries handed out are `Arc`s or clones so the lock is never
/// held across expensive work.
pub struct ScanCache {
    interner: Interner,
    classes: HashMap<u64, CachedClass>,
    classes_order: VecDeque<u64>,
    chains: HashMap<u64, CachedChains>,
    chains_order: VecDeque<u64>,
    cpgs: HashMap<u64, Arc<CachedCpg>>,
    cpgs_order: VecDeque<u64>,
    components: HashMap<u64, Arc<ComponentState>>,
    components_order: VecDeque<u64>,
    dir: Option<PathBuf>,
    capacity: usize,
}

impl ScanCache {
    /// Creates a cache holding at most `capacity` per-job entries (class
    /// entries get 1024× that), persisting job-level entries under `dir`
    /// when given. The directory (with its `chains/` and `cpgs/`
    /// subdirectories) is created eagerly; creation failure disables
    /// persistence rather than failing the daemon.
    pub fn new(dir: Option<PathBuf>, capacity: usize) -> Self {
        let dir = dir.filter(|d| {
            std::fs::create_dir_all(d.join("chains")).is_ok()
                && std::fs::create_dir_all(d.join("cpgs")).is_ok()
        });
        ScanCache {
            interner: Interner::default(),
            classes: HashMap::new(),
            classes_order: VecDeque::new(),
            chains: HashMap::new(),
            chains_order: VecDeque::new(),
            cpgs: HashMap::new(),
            cpgs_order: VecDeque::new(),
            components: HashMap::new(),
            components_order: VecDeque::new(),
            dir,
            capacity: capacity.max(1),
        }
    }

    /// A snapshot of the shared interner. Append-only, so symbols interned
    /// before the snapshot keep their indices in every later snapshot —
    /// the invariant that makes cached classes and summaries reusable.
    pub fn interner_snapshot(&self) -> Interner {
        self.interner.clone()
    }

    /// Mutable access to the shared interner (lifting interns through it).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    // ----- level 1: classes -------------------------------------------------

    /// Looks up a lifted class by content hash.
    pub fn get_class(&self, hash: u64) -> Option<&CachedClass> {
        self.classes.get(&hash)
    }

    /// Inserts a lifted class, evicting the oldest entry beyond capacity.
    pub fn put_class(&mut self, hash: u64, entry: CachedClass) {
        if self.classes.insert(hash, entry).is_none() {
            self.classes_order.push_back(hash);
        }
        while self.classes.len() > self.capacity * 1024 {
            if let Some(old) = self.classes_order.pop_front() {
                self.classes.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- level 2: chains + CPGs ------------------------------------------

    /// Looks up a cached chain set (with its diagnostics), falling back to
    /// disk. Disk entries written before diagnostics existed (a bare chain
    /// array) load as clean scans.
    pub fn get_chains(&mut self, key: u64) -> Option<CachedChains> {
        if let Some(c) = self.chains.get(&key) {
            return Some(c.clone());
        }
        let path = self.dir.as_ref()?.join("chains").join(file_name(key));
        let bytes = std::fs::read(path).ok()?;
        let entry: CachedChains = serde_json::from_slice(&bytes)
            .or_else(|_| {
                serde_json::from_slice::<Vec<GadgetChain>>(&bytes).map(|chains| CachedChains {
                    chains,
                    diagnostics: ScanDiagnostics::default(),
                })
            })
            .ok()?;
        self.insert_chains_mem(key, entry.clone());
        Some(entry)
    }

    /// Caches a chain set in memory and (best-effort) on disk.
    pub fn put_chains(&mut self, key: u64, entry: &CachedChains) {
        self.insert_chains_mem(key, entry.clone());
        if let Some(dir) = &self.dir {
            if let Ok(bytes) = serde_json::to_vec(entry) {
                write_atomic(&dir.join("chains").join(file_name(key)), &bytes);
            }
        }
    }

    fn insert_chains_mem(&mut self, key: u64, chains: CachedChains) {
        if self.chains.insert(key, chains).is_none() {
            self.chains_order.push_back(key);
        }
        while self.chains.len() > self.capacity {
            if let Some(old) = self.chains_order.pop_front() {
                self.chains.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Looks up a cached CPG, falling back to disk (rebuilding the graph's
    /// transient state after deserialization).
    pub fn get_cpg(&mut self, key: u64) -> Option<Arc<CachedCpg>> {
        if let Some(c) = self.cpgs.get(&key) {
            return Some(Arc::clone(c));
        }
        let path = self.dir.as_ref()?.join("cpgs").join(file_name(key));
        let bytes = std::fs::read(path).ok()?;
        let mut cached: CachedCpg = serde_json::from_slice(&bytes).ok()?;
        cached.graph.rebuild_after_deserialize();
        let cached = Arc::new(cached);
        self.insert_cpg_mem(key, Arc::clone(&cached));
        Some(cached)
    }

    /// Caches an assembled CPG in memory and (best-effort) on disk.
    pub fn put_cpg(&mut self, key: u64, cpg: Arc<CachedCpg>) {
        if let Some(dir) = &self.dir {
            if let Ok(bytes) = serde_json::to_vec(cpg.as_ref()) {
                write_atomic(&dir.join("cpgs").join(file_name(key)), &bytes);
            }
        }
        self.insert_cpg_mem(key, cpg);
    }

    fn insert_cpg_mem(&mut self, key: u64, cpg: Arc<CachedCpg>) {
        if self.cpgs.insert(key, cpg).is_none() {
            self.cpgs_order.push_back(key);
        }
        while self.cpgs.len() > self.capacity {
            if let Some(old) = self.cpgs_order.pop_front() {
                self.cpgs.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- per-component summary state -------------------------------------

    /// The previous scan's summary state for a component key.
    pub fn get_component(&self, key: u64) -> Option<Arc<ComponentState>> {
        self.components.get(&key).map(Arc::clone)
    }

    /// Replaces the summary state for a component key.
    pub fn put_component(&mut self, key: u64, state: ComponentState) {
        if self.components.insert(key, Arc::new(state)).is_none() {
            self.components_order.push_back(key);
        }
        while self.components.len() > self.capacity {
            if let Some(old) = self.components_order.pop_front() {
                self.components.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Lifted classes currently cached.
    pub fn cached_classes(&self) -> usize {
        self.classes.len()
    }

    /// Chain sets currently cached in memory.
    pub fn cached_jobs(&self) -> usize {
        self.chains.len()
    }

    /// CPGs currently cached in memory.
    pub fn cached_cpgs(&self) -> usize {
        self.cpgs.len()
    }
}

fn file_name(key: u64) -> String {
    format!("{key:016x}.json")
}

/// Best-effort atomic write: temp file in the same directory, then rename.
/// Concurrent writers of the same key write identical content (the key is
/// a content hash), so the race is benign.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) {
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(sig: &str) -> CachedChains {
        CachedChains {
            chains: vec![GadgetChain {
                signatures: vec![sig.to_owned()],
                sink_category: "EXEC".to_owned(),
                nodes: Vec::new(),
            }],
            diagnostics: ScanDiagnostics::default(),
        }
    }

    #[test]
    fn chains_round_trip_through_memory() {
        let mut cache = ScanCache::new(None, 4);
        assert!(cache.get_chains(1).is_none());
        cache.put_chains(1, &chain("a.b()"));
        let got = cache.get_chains(1).unwrap();
        assert_eq!(got.chains[0].signatures, vec!["a.b()".to_owned()]);
        assert!(!got.diagnostics.is_degraded());
    }

    #[test]
    fn chains_evict_oldest_beyond_capacity() {
        let mut cache = ScanCache::new(None, 2);
        cache.put_chains(1, &chain("one"));
        cache.put_chains(2, &chain("two"));
        cache.put_chains(3, &chain("three"));
        assert!(cache.get_chains(1).is_none(), "oldest entry survives");
        assert!(cache.get_chains(2).is_some());
        assert!(cache.get_chains(3).is_some());
    }

    #[test]
    fn chains_persist_to_disk_across_instances() {
        let dir = std::env::temp_dir().join(format!(
            "tabby-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ScanCache::new(Some(dir.clone()), 4);
            cache.put_chains(7, &chain("persisted"));
        }
        let mut fresh = ScanCache::new(Some(dir.clone()), 4);
        let got = fresh.get_chains(7).expect("disk entry");
        assert_eq!(got.chains[0].signatures, vec!["persisted".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_array_disk_entries_load_as_clean_scans() {
        let dir = std::env::temp_dir().join(format!(
            "tabby-cache-legacy-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("chains")).unwrap();
        // Simulate a pre-diagnostics cache file: a bare chain array.
        let legacy = serde_json::to_vec(&chain("old").chains).unwrap();
        std::fs::write(dir.join("chains").join(super::file_name(9)), legacy).unwrap();
        let mut cache = ScanCache::new(Some(dir.clone()), 4);
        let got = cache.get_chains(9).expect("legacy entry still loads");
        assert_eq!(got.chains[0].signatures, vec!["old".to_owned()]);
        assert!(!got.diagnostics.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interner_snapshot_preserves_symbols() {
        let mut cache = ScanCache::new(None, 4);
        let a = cache.interner_mut().intern("java.util.HashMap");
        let snap = cache.interner_snapshot();
        let b = cache.interner_mut().intern("java.util.HashMap");
        assert_eq!(a, b);
        assert_eq!(snap.resolve(a), "java.util.HashMap");
    }
}
