//! The two-level content-addressed scan cache.
//!
//! **Level 1 — per class.** Keyed by the FNV-1a hash of the `.class` bytes:
//! the lifted IR [`Class`]. Because every job's program is built from one
//! shared append-only [`Interner`], the symbols inside a cached class stay
//! valid across scans, so a class parsed and lifted once is never lifted
//! again while its bytes are unchanged.
//!
//! **Level 2 — per job.** Keyed by the hash of the component's (sorted,
//! deduplicated) class-content hashes plus the analysis/search options:
//! the found chain set, and one level below it the assembled CPG with its
//! annotated sink/source nodes. A warm re-scan of an unchanged component
//! is a chain-cache hit (no work at all); a re-scan with different search
//! options is a CPG-cache hit (search only).
//!
//! Between the two levels sits the per-component summary state: the
//! Action/summary of every method from the previous scan of the same path
//! set, used to re-summarize only changed classes and their
//! reverse-dependency cone (see `engine`).
//!
//! Chain sets and CPGs persist to `cache_dir` (when configured) inside the
//! crash-safe checksummed envelope (`tabby_core::envelope`): JSON payloads
//! at `chains/<key>.tbe` and `cpgs/<key>.tbe`, written durably via an
//! fsync'd temp file + rename. Reads verify the envelope; anything that
//! fails verification is moved into a `quarantine/` sibling directory,
//! recorded as an [`ArtifactFault`], and treated as a miss — corruption is
//! recomputed, never served. Legacy pre-envelope `<key>.json` files are
//! still readable. Per-class IR and method summaries are memory-only —
//! they embed interner symbols that are only meaningful within the owning
//! daemon process.
//!
//! Alongside each serde CPG, a **flat mmap-able twin** is persisted at
//! `flat/<key>.tbe` (envelope kind `FLAT_CPG` wrapping the
//! `tabby_graph::flat` layout): per-edge-type CSR arrays, the pre-decoded
//! Polluted_Position arena, interned NAME/CLASS_NAME columns, and a meta
//! blob carrying the sink/source annotation ([`FlatMeta`]). A later
//! process opens it with one `mmap` ([`ScanCache::get_flat`]) and serves
//! chain searches zero-copy, with no JSON decode and no CSR freeze. Open
//! mappings are LRU-bounded by a byte budget ([`ScanCache::set_map_budget`]).
//!
//! When a disk size budget is set, each persist is followed by an
//! oldest-first sweep of the `chains/`, `cpgs/`, and `flat/` files until
//! the cache directory fits the budget again.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tabby_core::envelope::{
    self, decode_envelope, kind, quarantine_file, read_envelope, write_envelope, EnvelopeError,
    Publish, ENVELOPE_HEADER_LEN,
};
use tabby_core::{ArtifactFault, ArtifactFaultKind, MethodSummary, ScanDiagnostics};
use tabby_graph::{encode_flat_cpg, FlatCpg, Graph, MappedBuf};
use tabby_ir::{Class, Interner, MethodId, Symbol};
use tabby_pathfinder::GadgetChain;

/// A lifted class plus the metadata the engine needs without re-resolving
/// symbols.
#[derive(Debug, Clone)]
pub struct CachedClass {
    /// Dotted binary name (resolved once at lift time).
    pub fqcn: String,
    /// The lifted IR, symbols owned by the daemon's shared interner.
    pub class: Class,
}

/// A cached chain set together with the diagnostics of the scan that
/// produced it, so a cache hit reports the same degradations as the
/// original run did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedChains {
    /// The found gadget chains, source-first.
    pub chains: Vec<GadgetChain>,
    /// What was skipped/quarantined/truncated when they were computed.
    /// `#[serde(default)]` lets pre-existing disk entries (written before
    /// diagnostics existed) load as clean scans.
    #[serde(default)]
    pub diagnostics: ScanDiagnostics,
}

/// A cached assembled CPG: the graph plus the sink/source annotation the
/// chain search needs, in serializable form.
#[derive(Debug, Serialize, Deserialize)]
pub struct CachedCpg {
    /// The property graph (serde round-trip; callers must have run
    /// [`Graph::rebuild_after_deserialize`] — [`ScanCache::get_cpg`] does).
    pub graph: Graph,
    /// Annotated sink nodes: `(node id, Trigger_Condition, category)`.
    pub sinks: Vec<(u32, Vec<u16>, String)>,
    /// Annotated source nodes.
    pub sources: Vec<u32>,
    /// Lift/summarize-phase diagnostics of the scan that built this CPG
    /// (search-phase degradations are per-query, not cached here).
    #[serde(default)]
    pub diagnostics: ScanDiagnostics,
}

/// The sink/source annotation and provenance a flat CPG artifact carries
/// in its meta blob, so a mapped graph can serve a chain search with no
/// [`Graph`] reconstruction at all.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatMeta {
    /// Annotated sink nodes: `(node id, Trigger_Condition, category)`.
    pub sinks: Vec<(u32, Vec<u16>, String)>,
    /// Annotated source nodes.
    pub sources: Vec<u32>,
    /// Lift/summarize-phase diagnostics of the originating scan.
    #[serde(default)]
    pub diagnostics: ScanDiagnostics,
    /// CALL edge-type id in the stored graph's type space.
    pub call_ty: u16,
    /// ALIAS edge-type id in the stored graph's type space.
    pub alias_ty: u16,
}

/// One flat CPG held open by the daemon: the zero-copy view plus its
/// decoded meta and the instant it was mapped (for age reporting).
pub struct MappedFlat {
    /// The validated flat view over the mapping.
    pub cpg: FlatCpg,
    /// Sink/source annotation decoded once at open.
    pub meta: FlatMeta,
    /// When this entry was mapped.
    pub opened_at: std::time::Instant,
}

impl MappedFlat {
    /// Bytes of the underlying file this entry keeps mapped.
    pub fn bytes(&self) -> u64 {
        self.cpg.mapped_bytes()
    }
}

/// Per-component summary state from the previous scan of the same path
/// set: everything needed to reuse clean methods' summaries in the next
/// scan.
#[derive(Debug)]
pub struct ComponentState {
    /// Class-content hash per FQCN at the time of the scan.
    pub class_hashes: HashMap<String, u64>,
    /// `ClassId.0 → name symbol` of the previous program, for remapping
    /// the previous scan's `MethodId`s into the next program.
    pub class_order: Vec<Symbol>,
    /// Every body method's summary, keyed by the previous program's ids.
    pub summaries: HashMap<MethodId, MethodSummary>,
}

/// The daemon-wide scan cache. One instance lives behind a mutex in the
/// engine; entries handed out are `Arc`s or clones so the lock is never
/// held across expensive work.
pub struct ScanCache {
    interner: Interner,
    classes: HashMap<u64, CachedClass>,
    classes_order: VecDeque<u64>,
    chains: HashMap<u64, CachedChains>,
    chains_order: VecDeque<u64>,
    cpgs: HashMap<u64, Arc<CachedCpg>>,
    cpgs_order: VecDeque<u64>,
    components: HashMap<u64, Arc<ComponentState>>,
    components_order: VecDeque<u64>,
    maps: HashMap<u64, Arc<MappedFlat>>,
    maps_order: VecDeque<u64>,
    map_budget: u64,
    dir: Option<PathBuf>,
    capacity: usize,
    disk_budget: Option<u64>,
    faults: Vec<ArtifactFault>,
    quarantined_total: u64,
    write_failures_total: u64,
    disk_evictions_total: u64,
    map_hits_total: u64,
    map_misses_total: u64,
    maps_evicted_total: u64,
    chain_hits_total: u64,
    chain_misses_total: u64,
    cpg_hits_total: u64,
    cpg_misses_total: u64,
}

/// Default byte budget for concurrently mapped flat CPGs (1 GiB). Virtual
/// address space, not resident memory — the kernel pages the mapping in
/// and out on demand — but bounded so a daemon watching many corpora does
/// not accumulate mappings without limit.
pub const DEFAULT_MAP_BUDGET: u64 = 1 << 30;

impl ScanCache {
    /// Creates a cache holding at most `capacity` per-job entries (class
    /// entries get 1024× that), persisting job-level entries under `dir`
    /// when given. The directory (with its `chains/` and `cpgs/`
    /// subdirectories) is created eagerly; creation failure disables
    /// persistence rather than failing the daemon. Opening also runs a
    /// crash-recovery sweep: orphaned write-staging `*.tmp` files left by
    /// a killed process are deleted.
    pub fn new(dir: Option<PathBuf>, capacity: usize) -> Self {
        let dir = dir.filter(|d| {
            std::fs::create_dir_all(d.join("chains")).is_ok()
                && std::fs::create_dir_all(d.join("cpgs")).is_ok()
                && std::fs::create_dir_all(d.join("flat")).is_ok()
        });
        if let Some(d) = &dir {
            envelope::sweep_orphan_tmps(&d.join("chains"));
            envelope::sweep_orphan_tmps(&d.join("cpgs"));
            envelope::sweep_orphan_tmps(&d.join("flat"));
        }
        ScanCache {
            interner: Interner::default(),
            classes: HashMap::new(),
            classes_order: VecDeque::new(),
            chains: HashMap::new(),
            chains_order: VecDeque::new(),
            cpgs: HashMap::new(),
            cpgs_order: VecDeque::new(),
            components: HashMap::new(),
            components_order: VecDeque::new(),
            maps: HashMap::new(),
            maps_order: VecDeque::new(),
            map_budget: DEFAULT_MAP_BUDGET,
            dir,
            capacity: capacity.max(1),
            disk_budget: None,
            faults: Vec::new(),
            quarantined_total: 0,
            write_failures_total: 0,
            disk_evictions_total: 0,
            map_hits_total: 0,
            map_misses_total: 0,
            maps_evicted_total: 0,
            chain_hits_total: 0,
            chain_misses_total: 0,
            cpg_hits_total: 0,
            cpg_misses_total: 0,
        }
    }

    /// Sets the byte budget for concurrently mapped flat CPGs. Oldest
    /// mappings are dropped (unmapped) once the live total exceeds it; the
    /// newest entry is always kept so the current job can still run
    /// zero-copy.
    pub fn set_map_budget(&mut self, budget_bytes: u64) {
        self.map_budget = budget_bytes.max(1);
        self.enforce_map_budget();
    }

    /// Sets (or clears) the on-disk size budget in bytes. When set, every
    /// persist is followed by an oldest-first eviction sweep over the
    /// `chains/` and `cpgs/` files until the total fits the budget.
    pub fn set_disk_budget(&mut self, budget_bytes: Option<u64>) {
        self.disk_budget = budget_bytes;
    }

    /// Drains the artifact faults (quarantines, failed writes) recorded
    /// since the last drain. The engine folds these into the current job's
    /// [`ScanDiagnostics`] while holding the cache lock, so faults are
    /// attributed to the job whose cache traffic caused them.
    pub fn take_artifact_faults(&mut self) -> Vec<ArtifactFault> {
        std::mem::take(&mut self.faults)
    }

    /// Total corrupt artifacts quarantined since this cache was opened.
    pub fn artifacts_quarantined(&self) -> u64 {
        self.quarantined_total
    }

    /// Total failed artifact writes since this cache was opened.
    pub fn artifact_write_failures(&self) -> u64 {
        self.write_failures_total
    }

    /// Total files evicted from disk by the size budget.
    pub fn disk_evictions(&self) -> u64 {
        self.disk_evictions_total
    }

    fn record_fault(&mut self, path: &Path, fault_kind: ArtifactFaultKind, detail: String) {
        match fault_kind {
            ArtifactFaultKind::Quarantined => self.quarantined_total += 1,
            ArtifactFaultKind::WriteFailed => self.write_failures_total += 1,
        }
        // Bounded so an endlessly failing disk cannot grow the daemon.
        if self.faults.len() < 256 {
            self.faults.push(ArtifactFault {
                path: path.display().to_string(),
                kind: fault_kind,
                detail,
            });
        }
    }

    /// Quarantines `path` and records the fault. The file is moved (or,
    /// failing that, removed), so the same corrupt artifact is never seen
    /// — and never re-quarantined — on a later read: the next persist
    /// writes a fresh valid envelope at the original path.
    fn quarantine(&mut self, path: &Path, detail: String) {
        let outcome = quarantine_file(path);
        let detail = match outcome {
            Ok(dest) => format!("{detail}; moved to {}", dest.display()),
            Err(e) => format!("{detail}; {e}"),
        };
        self.record_fault(path, ArtifactFaultKind::Quarantined, detail);
    }

    /// A snapshot of the shared interner. Append-only, so symbols interned
    /// before the snapshot keep their indices in every later snapshot —
    /// the invariant that makes cached classes and summaries reusable.
    pub fn interner_snapshot(&self) -> Interner {
        self.interner.clone()
    }

    /// Mutable access to the shared interner (lifting interns through it).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    // ----- level 1: classes -------------------------------------------------

    /// Looks up a lifted class by content hash.
    pub fn get_class(&self, hash: u64) -> Option<&CachedClass> {
        self.classes.get(&hash)
    }

    /// Inserts a lifted class, evicting the oldest entry beyond capacity.
    pub fn put_class(&mut self, hash: u64, entry: CachedClass) {
        if self.classes.insert(hash, entry).is_none() {
            self.classes_order.push_back(hash);
        }
        while self.classes.len() > self.capacity * 1024 {
            if let Some(old) = self.classes_order.pop_front() {
                self.classes.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- level 2: chains + CPGs ------------------------------------------

    /// Looks up a cached chain set (with its diagnostics), falling back to
    /// disk. The envelope is verified on the way in: a corrupt file is
    /// quarantined, recorded as an [`ArtifactFault`], and reported as a
    /// miss so the engine recomputes. Legacy pre-envelope `<key>.json`
    /// entries (including the oldest bare-chain-array form) still load.
    pub fn get_chains(&mut self, key: u64) -> Option<CachedChains> {
        let got = self.get_chains_inner(key);
        if got.is_some() {
            self.chain_hits_total += 1;
        } else {
            self.chain_misses_total += 1;
        }
        got
    }

    fn get_chains_inner(&mut self, key: u64) -> Option<CachedChains> {
        if let Some(c) = self.chains.get(&key) {
            return Some(c.clone());
        }
        let dir = self.dir.clone()?;
        let path = dir.join("chains").join(envelope_file_name(key));
        let payload = match read_envelope(&path, kind::CHAINS) {
            Ok(payload) => Some(payload),
            Err(EnvelopeError::Missing) => None,
            Err(e) if e.is_corruption() => {
                self.quarantine(&path, e.to_string());
                None
            }
            Err(_) => None, // transient read failure: treat as a miss
        };
        let entry: CachedChains = match payload {
            Some(payload) => match serde_json::from_slice(&payload) {
                Ok(entry) => entry,
                Err(e) => {
                    // Checksum held but the payload does not parse: a blob
                    // from a build with an incompatible schema.
                    self.quarantine(&path, format!("unparseable payload: {e}"));
                    return None;
                }
            },
            None => {
                // Legacy pre-envelope file, kept readable for caches
                // written by older builds. The oldest form is a bare chain
                // array, every later one a `CachedChains` object — probe
                // the first JSON token once and parse exactly once instead
                // of parsing the whole payload twice on every legacy hit.
                let legacy = dir.join("chains").join(legacy_file_name(key));
                let bytes = std::fs::read(&legacy).ok()?;
                let first = bytes.iter().copied().find(|b| !b.is_ascii_whitespace());
                let parsed = if first == Some(b'[') {
                    serde_json::from_slice::<Vec<GadgetChain>>(&bytes).map(|chains| CachedChains {
                        chains,
                        diagnostics: ScanDiagnostics::default(),
                    })
                } else {
                    serde_json::from_slice::<CachedChains>(&bytes)
                };
                match parsed {
                    Ok(entry) => entry,
                    Err(e) => {
                        self.quarantine(&legacy, format!("unparseable legacy entry: {e}"));
                        return None;
                    }
                }
            }
        };
        self.insert_chains_mem(key, entry.clone());
        Some(entry)
    }

    /// Caches a chain set in memory and on disk. The disk write is durable
    /// (checksummed envelope, fsync'd temp + rename) but still best-effort:
    /// a failure is recorded as an [`ArtifactFault`] diagnostic instead of
    /// failing the job, and leaves no temp debris behind.
    pub fn put_chains(&mut self, key: u64, entry: &CachedChains) {
        self.insert_chains_mem(key, entry.clone());
        if let Some(dir) = self.dir.clone() {
            if let Ok(bytes) = serde_json::to_vec(entry) {
                let path = dir.join("chains").join(envelope_file_name(key));
                if let Err(e) = write_envelope(&path, kind::CHAINS, &bytes, Publish::Overwrite) {
                    self.record_fault(&path, ArtifactFaultKind::WriteFailed, e.to_string());
                }
            }
            self.enforce_disk_budget();
        }
    }

    fn insert_chains_mem(&mut self, key: u64, chains: CachedChains) {
        if self.chains.insert(key, chains).is_none() {
            self.chains_order.push_back(key);
        }
        while self.chains.len() > self.capacity {
            if let Some(old) = self.chains_order.pop_front() {
                self.chains.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Looks up a cached CPG, falling back to disk (rebuilding the graph's
    /// transient state after deserialization). Envelope verification and
    /// quarantine mirror [`ScanCache::get_chains`]; legacy `<key>.json`
    /// files still load.
    pub fn get_cpg(&mut self, key: u64) -> Option<Arc<CachedCpg>> {
        let got = self.get_cpg_inner(key);
        if got.is_some() {
            self.cpg_hits_total += 1;
        } else {
            self.cpg_misses_total += 1;
        }
        got
    }

    fn get_cpg_inner(&mut self, key: u64) -> Option<Arc<CachedCpg>> {
        if let Some(c) = self.cpgs.get(&key) {
            return Some(Arc::clone(c));
        }
        let dir = self.dir.clone()?;
        let path = dir.join("cpgs").join(envelope_file_name(key));
        let (bytes, src) = match read_envelope(&path, kind::CPG) {
            Ok(payload) => (payload, path),
            Err(EnvelopeError::Missing) => {
                let legacy = dir.join("cpgs").join(legacy_file_name(key));
                (std::fs::read(&legacy).ok()?, legacy)
            }
            Err(e) if e.is_corruption() => {
                self.quarantine(&path, e.to_string());
                return None;
            }
            Err(_) => return None,
        };
        let mut cached: CachedCpg = match serde_json::from_slice(&bytes) {
            Ok(cached) => cached,
            Err(e) => {
                self.quarantine(&src, format!("unparseable payload: {e}"));
                return None;
            }
        };
        cached.graph.rebuild_after_deserialize();
        let cached = Arc::new(cached);
        self.insert_cpg_mem(key, Arc::clone(&cached));
        Some(cached)
    }

    /// Caches an assembled CPG in memory and on disk (durable envelope
    /// write; failures become [`ArtifactFault`] diagnostics). Alongside the
    /// serde CPG a flat mmap-able artifact is written under `flat/`, so the
    /// next process serving this key opens it with one `mmap` instead of a
    /// full JSON decode.
    pub fn put_cpg(&mut self, key: u64, cpg: Arc<CachedCpg>) {
        if let Some(dir) = self.dir.clone() {
            if let Ok(bytes) = serde_json::to_vec(cpg.as_ref()) {
                let path = dir.join("cpgs").join(envelope_file_name(key));
                if let Err(e) = write_envelope(&path, kind::CPG, &bytes, Publish::Overwrite) {
                    self.record_fault(&path, ArtifactFaultKind::WriteFailed, e.to_string());
                }
            }
            self.persist_flat(key, cpg.as_ref());
            self.enforce_disk_budget();
        }
        self.insert_cpg_mem(key, cpg);
    }

    /// Writes the flat mmap-able twin of a cached CPG. Best-effort like
    /// every persist: a graph the flat layout cannot hold (no CALL/ALIAS
    /// types, u32 overflow) or a failed write leaves only the serde
    /// artifact, which keeps serving the key.
    fn persist_flat(&mut self, key: u64, cpg: &CachedCpg) {
        let Some(dir) = self.dir.clone() else { return };
        let g = &cpg.graph;
        let (Some(call), Some(alias)) = (g.get_edge_type("CALL"), g.get_edge_type("ALIAS")) else {
            return;
        };
        let meta = FlatMeta {
            sinks: cpg.sinks.clone(),
            sources: cpg.sources.clone(),
            diagnostics: cpg.diagnostics.clone(),
            call_ty: call.0,
            alias_ty: alias.0,
        };
        let Ok(meta_bytes) = serde_json::to_vec(&meta) else {
            return;
        };
        let Ok(payload) = encode_flat_cpg(
            g,
            g.get_prop_key("POLLUTED_POSITION"),
            g.get_prop_key("NAME"),
            g.get_prop_key("CLASS_NAME"),
            &meta_bytes,
        ) else {
            return;
        };
        let path = dir.join("flat").join(envelope_file_name(key));
        if let Err(e) = write_envelope(&path, kind::FLAT_CPG, &payload, Publish::Overwrite) {
            self.record_fault(&path, ArtifactFaultKind::WriteFailed, e.to_string());
        }
        // Any open mapping of this key is now stale; drop it so the next
        // get_flat re-opens the fresh artifact.
        if self.maps.remove(&key).is_some() {
            self.maps_order.retain(|k| *k != key);
        }
    }

    /// Opens (or returns the already-open) flat mmap view of a cached CPG.
    ///
    /// A hit costs one `mmap` + header validation on first open and a map
    /// lookup afterwards — no JSON decode, no graph reconstruction, no CSR
    /// freeze. Corruption at any layer (envelope checksum, flat header,
    /// unparseable meta) quarantines the file exactly once and reports a
    /// miss, mirroring [`ScanCache::get_cpg`]; the engine then falls back
    /// to the serde artifact or recomputes.
    pub fn get_flat(&mut self, key: u64) -> Option<Arc<MappedFlat>> {
        if let Some(m) = self.maps.get(&key) {
            self.map_hits_total += 1;
            return Some(Arc::clone(m));
        }
        self.map_misses_total += 1;
        let dir = self.dir.clone()?;
        let path = dir.join("flat").join(envelope_file_name(key));
        let buf = match MappedBuf::open(&path) {
            Ok(buf) => Arc::new(buf),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => return None, // transient read failure: treat as a miss
        };
        let payload_len = match decode_envelope(buf.as_bytes(), kind::FLAT_CPG) {
            Ok(payload) => payload.len(),
            Err(e) if e.is_corruption() => {
                self.quarantine(&path, e.to_string());
                return None;
            }
            Err(_) => return None,
        };
        let payload = ENVELOPE_HEADER_LEN..ENVELOPE_HEADER_LEN + payload_len;
        let cpg = match FlatCpg::from_buf(buf, payload) {
            Ok(cpg) => cpg,
            Err(e) => {
                if e.is_corruption() {
                    self.quarantine(&path, e.to_string());
                }
                return None;
            }
        };
        let meta: FlatMeta = match serde_json::from_slice(cpg.meta()) {
            Ok(meta) => meta,
            Err(e) => {
                drop(cpg); // unmap before moving the file aside
                self.quarantine(&path, format!("unparseable flat meta: {e}"));
                return None;
            }
        };
        let entry = Arc::new(MappedFlat {
            cpg,
            meta,
            opened_at: std::time::Instant::now(),
        });
        self.maps.insert(key, Arc::clone(&entry));
        self.maps_order.push_back(key);
        self.enforce_map_budget();
        Some(entry)
    }

    /// Drops open mappings, oldest first, until the live total fits the
    /// budget. The newest entry always survives (a single oversized graph
    /// must still be servable). Dropping the `Arc` here unmaps lazily: a
    /// search still holding the entry keeps its pages valid until it ends.
    fn enforce_map_budget(&mut self) {
        while self.maps.len() > 1 && self.bytes_mapped() > self.map_budget {
            let Some(old) = self.maps_order.pop_front() else {
                break;
            };
            if self.maps.remove(&old).is_some() {
                self.maps_evicted_total += 1;
            }
        }
    }

    /// Total bytes of all flat CPG files currently mapped.
    pub fn bytes_mapped(&self) -> u64 {
        self.maps.values().map(|m| m.bytes()).sum()
    }

    /// Flat-map cache hits since this cache was opened.
    pub fn map_hits(&self) -> u64 {
        self.map_hits_total
    }

    /// Flat-map cache misses (including first opens) since open.
    pub fn map_misses(&self) -> u64 {
        self.map_misses_total
    }

    /// Mappings dropped by the map byte budget since open.
    pub fn maps_evicted(&self) -> u64 {
        self.maps_evicted_total
    }

    /// Chain-set cache hits (memory or disk) since this cache was opened.
    pub fn chain_hits(&self) -> u64 {
        self.chain_hits_total
    }

    /// Chain-set cache misses since this cache was opened.
    pub fn chain_misses(&self) -> u64 {
        self.chain_misses_total
    }

    /// CPG cache hits (memory or disk) since this cache was opened.
    pub fn cpg_hits(&self) -> u64 {
        self.cpg_hits_total
    }

    /// CPG cache misses since this cache was opened.
    pub fn cpg_misses(&self) -> u64 {
        self.cpg_misses_total
    }

    /// Age in milliseconds of every open mapping, keyed by the cache key's
    /// hex form — the "per-corpus map age" of the daemon stats surface.
    pub fn map_ages_ms(&self) -> Vec<(String, u64)> {
        self.maps_order
            .iter()
            .filter_map(|key| {
                let m = self.maps.get(key)?;
                Some((
                    format!("{key:016x}"),
                    m.opened_at.elapsed().as_millis() as u64,
                ))
            })
            .collect()
    }

    fn insert_cpg_mem(&mut self, key: u64, cpg: Arc<CachedCpg>) {
        if self.cpgs.insert(key, cpg).is_none() {
            self.cpgs_order.push_back(key);
        }
        while self.cpgs.len() > self.capacity {
            if let Some(old) = self.cpgs_order.pop_front() {
                self.cpgs.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- per-component summary state -------------------------------------

    /// The previous scan's summary state for a component key.
    pub fn get_component(&self, key: u64) -> Option<Arc<ComponentState>> {
        self.components.get(&key).map(Arc::clone)
    }

    /// Replaces the summary state for a component key.
    pub fn put_component(&mut self, key: u64, state: ComponentState) {
        if self.components.insert(key, Arc::new(state)).is_none() {
            self.components_order.push_back(key);
        }
        while self.components.len() > self.capacity {
            if let Some(old) = self.components_order.pop_front() {
                self.components.remove(&old);
            } else {
                break;
            }
        }
    }

    // ----- introspection ----------------------------------------------------

    /// Lifted classes currently cached.
    pub fn cached_classes(&self) -> usize {
        self.classes.len()
    }

    /// Chain sets currently cached in memory.
    pub fn cached_jobs(&self) -> usize {
        self.chains.len()
    }

    /// CPGs currently cached in memory.
    pub fn cached_cpgs(&self) -> usize {
        self.cpgs.len()
    }

    /// Flat CPG mappings currently open.
    pub fn open_maps(&self) -> usize {
        self.maps.len()
    }

    // ----- disk size budget -------------------------------------------------

    /// Evicts persisted artifacts, oldest first (by modification time),
    /// until the `chains/` + `cpgs/` + `flat/` files fit the configured
    /// budget.
    /// Quarantined files are not part of the budget — they are debris for
    /// a human to inspect, already off the serving path.
    fn enforce_disk_budget(&mut self) {
        let (Some(budget), Some(dir)) = (self.disk_budget, self.dir.clone()) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let mut total: u64 = 0;
        for sub in ["chains", "cpgs", "flat"] {
            let Ok(entries) = std::fs::read_dir(dir.join(sub)) else {
                continue;
            };
            for entry in entries.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                total += meta.len();
                files.push((modified, meta.len(), entry.path()));
            }
        }
        if total <= budget {
            return;
        }
        files.sort();
        for (_, len, path) in files {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.disk_evictions_total += 1;
            }
        }
    }
}

fn envelope_file_name(key: u64) -> String {
    format!("{key:016x}.tbe")
}

/// Pre-envelope cache files: plain JSON, still readable.
fn legacy_file_name(key: u64) -> String {
    format!("{key:016x}.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(sig: &str) -> CachedChains {
        CachedChains {
            chains: vec![GadgetChain {
                signatures: vec![sig.to_owned()],
                sink_category: "EXEC".to_owned(),
                tier: None,
                nodes: Vec::new(),
            }],
            diagnostics: ScanDiagnostics::default(),
        }
    }

    #[test]
    fn chains_round_trip_through_memory() {
        let mut cache = ScanCache::new(None, 4);
        assert!(cache.get_chains(1).is_none());
        cache.put_chains(1, &chain("a.b()"));
        let got = cache.get_chains(1).unwrap();
        assert_eq!(got.chains[0].signatures, vec!["a.b()".to_owned()]);
        assert!(!got.diagnostics.is_degraded());
    }

    #[test]
    fn chains_evict_oldest_beyond_capacity() {
        let mut cache = ScanCache::new(None, 2);
        cache.put_chains(1, &chain("one"));
        cache.put_chains(2, &chain("two"));
        cache.put_chains(3, &chain("three"));
        assert!(cache.get_chains(1).is_none(), "oldest entry survives");
        assert!(cache.get_chains(2).is_some());
        assert!(cache.get_chains(3).is_some());
    }

    #[test]
    fn chains_persist_to_disk_across_instances() {
        let dir = std::env::temp_dir().join(format!(
            "tabby-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ScanCache::new(Some(dir.clone()), 4);
            cache.put_chains(7, &chain("persisted"));
        }
        let mut fresh = ScanCache::new(Some(dir.clone()), 4);
        let got = fresh.get_chains(7).expect("disk entry");
        assert_eq!(got.chains[0].signatures, vec!["persisted".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_array_disk_entries_load_as_clean_scans() {
        let dir = std::env::temp_dir().join(format!(
            "tabby-cache-legacy-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("chains")).unwrap();
        // Simulate a pre-diagnostics cache file: a bare chain array.
        let legacy = serde_json::to_vec(&chain("old").chains).unwrap();
        std::fs::write(dir.join("chains").join(super::legacy_file_name(9)), legacy).unwrap();
        let mut cache = ScanCache::new(Some(dir.clone()), 4);
        let got = cache.get_chains(9).expect("legacy entry still loads");
        assert_eq!(got.chains[0].signatures, vec!["old".to_owned()]);
        assert!(!got.diagnostics.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn temp_cache_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabby-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_entries_are_enveloped_and_verified() {
        let dir = temp_cache_dir("envelope");
        {
            let mut cache = ScanCache::new(Some(dir.clone()), 4);
            cache.put_chains(11, &chain("wrapped"));
            assert!(cache.take_artifact_faults().is_empty(), "clean write");
        }
        let path = dir.join("chains").join(super::envelope_file_name(11));
        let raw = std::fs::read(&path).expect("envelope file on disk");
        assert_eq!(&raw[..4], b"TBE\0", "file carries the envelope magic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_quarantines_exactly_once() {
        let dir = temp_cache_dir("corrupt");
        {
            let mut cache = ScanCache::new(Some(dir.clone()), 4);
            cache.put_chains(13, &chain("victim"));
        }
        // Flip one payload bit on disk.
        let path = dir.join("chains").join(super::envelope_file_name(13));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x20;
        std::fs::write(&path, &raw).unwrap();

        let mut fresh = ScanCache::new(Some(dir.clone()), 4);
        assert!(
            fresh.get_chains(13).is_none(),
            "corruption must read as a miss, never be served"
        );
        let faults = fresh.take_artifact_faults();
        assert_eq!(faults.len(), 1, "{faults:?}");
        assert_eq!(faults[0].kind, ArtifactFaultKind::Quarantined);
        assert!(!path.exists(), "corrupt file moved out of the way");
        assert!(
            dir.join("chains")
                .join(envelope::QUARANTINE_DIR)
                .join(super::envelope_file_name(13))
                .exists(),
            "corrupt file lands in quarantine/"
        );
        assert_eq!(fresh.artifacts_quarantined(), 1);

        // The second read is a plain miss: nothing left to quarantine.
        assert!(fresh.get_chains(13).is_none());
        assert!(fresh.take_artifact_faults().is_empty(), "quarantined once");
        assert_eq!(fresh.artifacts_quarantined(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_disk_write_surfaces_as_diagnostic_without_debris() {
        let dir = temp_cache_dir("writefail");
        let mut cache = ScanCache::new(Some(dir.clone()), 4);
        envelope::inject_write_fault(&dir.to_string_lossy(), envelope::Fault::Enospc);
        cache.put_chains(17, &chain("unwritten"));
        let faults = cache.take_artifact_faults();
        assert_eq!(faults.len(), 1, "{faults:?}");
        assert_eq!(faults[0].kind, ArtifactFaultKind::WriteFailed);
        assert!(faults[0].detail.contains("No space left"), "{faults:?}");
        // The in-memory entry is unaffected; no temp debris on disk.
        assert!(cache.get_chains(17).is_some());
        assert_eq!(envelope::sweep_orphan_tmps(&dir.join("chains")), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_write_staging_tmps() {
        let dir = temp_cache_dir("sweep");
        std::fs::create_dir_all(dir.join("chains")).unwrap();
        std::fs::create_dir_all(dir.join("cpgs")).unwrap();
        let orphan = dir.join("chains").join(".deadbeef.tbe.1-1.tmp");
        std::fs::write(&orphan, b"partial").unwrap();
        let _ = ScanCache::new(Some(dir.clone()), 4);
        assert!(!orphan.exists(), "open must clean up crash debris");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_oldest_artifacts() {
        let dir = temp_cache_dir("budget");
        let mut cache = ScanCache::new(Some(dir.clone()), 64);
        cache.set_disk_budget(Some(1)); // pathological: nothing fits
        cache.put_chains(1, &chain("a"));
        cache.put_chains(2, &chain("b"));
        assert!(cache.disk_evictions() >= 1, "budget must evict");
        let remaining: u64 = std::fs::read_dir(dir.join("chains"))
            .unwrap()
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .filter(|m| m.is_file())
            .map(|m| m.len())
            .sum();
        assert!(
            remaining <= chain_file_upper_bound(),
            "at most one artifact can linger right after its own write"
        );
        // Memory serving is unaffected by disk eviction.
        assert!(cache.get_chains(1).is_some());
        assert!(cache.get_chains(2).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn chain_file_upper_bound() -> u64 {
        4096
    }

    #[test]
    fn interner_snapshot_preserves_symbols() {
        let mut cache = ScanCache::new(None, 4);
        let a = cache.interner_mut().intern("java.util.HashMap");
        let snap = cache.interner_snapshot();
        let b = cache.interner_mut().intern("java.util.HashMap");
        assert_eq!(a, b);
        assert_eq!(snap.resolve(a), "java.util.HashMap");
    }
}
