//! SIGINT/SIGTERM flagging without a libc dependency.
//!
//! The daemon's accept loop polls [`termination_requested`] between
//! accepts; when a termination signal arrives it stops accepting new
//! connections, drops the job queue's sender, and lets the workers drain
//! in-flight jobs before exiting. The handler itself only stores to an
//! atomic, which is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT/SIGTERM has been observed since
/// [`install_handlers`] was called.
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TERMINATION.store(true, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that flip the termination flag.
///
/// Only the `tabby serve` entry point calls this — libraries and tests
/// must not, since handlers are process-global.
#[cfg(unix)]
pub fn install_handlers() {
    // `std` does not expose signal(2) and the workspace deliberately has
    // no libc-level dependency, so declare the one symbol we need.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No-op on non-Unix targets (ctrl-c still terminates the process).
#[cfg(not(unix))]
pub fn install_handlers() {}
