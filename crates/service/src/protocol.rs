//! The JSON-lines wire protocol.
//!
//! Every request and every response is one JSON object on one line,
//! newline-terminated. A connection is a synchronous request/response
//! conversation: the daemon replies to each request before reading the
//! next, and malformed lines get an error reply instead of a dropped
//! connection. The schema is documented in the repository README under
//! "Running as a service".

use serde::{Deserialize, Serialize};
use tabby_core::ScanDiagnostics;
use tabby_pathfinder::GadgetChain;
use tabby_registry::DiffReport;

/// The protocol version this build speaks. Every request must carry it in
/// a top-level `"v"` field and every response echoes it, so a client and a
/// daemon from different releases fail loudly instead of misinterpreting
/// each other. v1 was the unversioned scan-only protocol; v2 added the
/// `"v"` field and the `query` command; v3 added the `diff` command
/// (differential scanning against a snapshot registry) and watch mode;
/// v4 added the overload contract — `busy` rejections carrying a
/// `retry_after_ms` backoff hint (full queue or per-client in-flight cap)
/// that well-behaved clients honor — and artifact-fault diagnostics; v5
/// added the witness stage: [`ScanRequestOptions::witness`] asks the daemon
/// to tier every chain (`witnessed` > `plan-found` > `static-only`). Like
/// `search_threads`, the flag is excluded from job cache keys — the chain
/// *set* is unchanged, so witnessing runs post-hoc even on a cache hit.
/// v6 added the mapped-artifact surface: [`JobStats`] reports when a scan
/// ran zero-copy off a memory-mapped flat CPG (`cpg_map_hit`, `map_bytes`,
/// `map_age_ms`), and [`DaemonInfo`] carries the fleet-health metrics —
/// queue depth, per-tier cache hit/miss counters, `bytes_mapped`, open-map
/// ages, and `ns_per_expansion`.
/// v7 added archive ingestion: scan/query/diff paths may name `.jar`,
/// `.war`, and `.zip` archives (including nested fat jars and wars), the
/// content key covers every archive entry, diagnostics report shadowed
/// duplicate classes, and [`ScanRequestOptions::no_archives`] restores the
/// pre-v7 rejection of archive inputs.
pub const PROTOCOL_VERSION: u32 = 7;

/// Parses one request line, enforcing the protocol version.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing `"v"`
/// field (an unversioned v1 client), or a version mismatch.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: serde_json::Value =
        serde_json::from_str(line).map_err(|e| format!("malformed request: {e}"))?;
    match value.get("v") {
        None => {
            return Err(format!(
                "unversioned request: this daemon speaks protocol v{PROTOCOL_VERSION} and \
                 every request must carry \"v\":{PROTOCOL_VERSION} (unversioned v1 clients \
                 must upgrade)"
            ))
        }
        Some(v) => match v.as_u64() {
            Some(n) if n == u64::from(PROTOCOL_VERSION) => {}
            Some(n) => {
                return Err(format!(
                    "protocol version mismatch: request is v{n}, daemon speaks v{PROTOCOL_VERSION}"
                ))
            }
            None => {
                return Err(format!(
                "protocol version mismatch: \"v\" must be the integer {PROTOCOL_VERSION}, got {v}"
            ))
            }
        },
    }
    serde_json::from_value(value).map_err(|e| format!("malformed request: {e}"))
}

/// Attaches the protocol version to a request and serializes it to one
/// JSON line (without the trailing newline).
///
/// # Errors
///
/// Propagates serialization failures as strings.
pub fn encode_request(req: &Request) -> Result<String, String> {
    let mut value = serde_json::to_value(req).map_err(|e| format!("encode request: {e}"))?;
    if let Some(obj) = value.as_object_mut() {
        obj.insert("v".to_owned(), serde_json::json!(PROTOCOL_VERSION));
    }
    serde_json::to_string(&value).map_err(|e| format!("encode request: {e}"))
}

/// Default chain-search depth (the paper's Algorithm 3 default).
fn default_depth() -> usize {
    12
}

/// The TC-dominance memo defaults on: it only prunes provably chain-free
/// subtrees, so the chain set is unchanged and the search is never slower.
fn default_tc_memo() -> bool {
    true
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(b: &bool) -> bool {
    !*b
}

/// A client request, tagged by `cmd`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "lowercase")]
pub enum Request {
    /// Scan one or more `.class` files / directories for gadget chains.
    Scan {
        /// Optional client-chosen correlation id, echoed in the reply.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
        /// Paths (files or directories) to collect `.class` files from.
        /// Relative paths are resolved against the daemon's working
        /// directory, so clients should send absolute paths.
        paths: Vec<String>,
        /// Scan options; every field has a default.
        #[serde(default)]
        options: ScanRequestOptions,
    },
    /// Run one TQL query against the (content-addressed, cached) CPG of
    /// the given paths. The reply is a header [`Response`] carrying the
    /// column names, then one `{"row":[...]}` line per result row, then a
    /// `{"done":true,...}` trailer — JSON-lines streaming, same framing as
    /// everything else.
    Query {
        /// Optional correlation id, echoed in the header reply.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
        /// Paths (files or directories) to collect `.class` files from.
        paths: Vec<String>,
        /// The TQL query text.
        query: String,
        /// Query options; every field has a default.
        #[serde(default)]
        options: QueryRequestOptions,
    },
    /// Differential scan: scan `paths` (through the same cache tiers as a
    /// plain scan), register the result as the next version of `corpus` in
    /// the snapshot registry rooted at `registry`, and diff it against the
    /// previously registered latest version. The reply carries a
    /// [`DiffOutcome`]: the first scan of a corpus registers the `v1`
    /// baseline, unchanged content is a no-op, and everything else reports
    /// newly activated chains and near-chains.
    Diff {
        /// Optional correlation id, echoed in the reply.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
        /// Paths (files or directories) to collect `.class` files from.
        paths: Vec<String>,
        /// Snapshot-registry root directory (daemon-side path).
        registry: String,
        /// Bare corpus name (the daemon assigns the next version number).
        corpus: String,
        /// Scan options; every field has a default.
        #[serde(default)]
        options: ScanRequestOptions,
        /// Register this corpus for watch mode: the daemon polls the paths
        /// and re-runs the diff whenever their content changes.
        #[serde(default)]
        watch: bool,
    },
    /// Liveness probe.
    Ping {
        /// Optional correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
    },
    /// Daemon-wide statistics (uptime, job counters, cache occupancy).
    Stats {
        /// Optional correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
    },
    /// Graceful shutdown: stop accepting work, drain queued jobs, exit.
    Shutdown {
        /// Optional correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<String>,
    },
}

/// Options of a [`Request::Scan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanRequestOptions {
    /// Maximum chain length in edges.
    #[serde(default = "default_depth")]
    pub depth: usize,
    /// Use the extended source catalog (`hashCode`/`equals`/…) in addition
    /// to native serialization entry points.
    #[serde(default)]
    pub extended: bool,
    /// Bypass cache *reads* (results are still cached): forces a cold scan,
    /// used for benchmarking and cache-invalidation escape hatches.
    #[serde(default)]
    pub fresh: bool,
    /// Fail the job on the first malformed class instead of quarantining it
    /// and scanning the survivors in degraded mode.
    #[serde(default)]
    pub strict: bool,
    /// Fault-injection hook for containment testing: `"job"` panics inside
    /// the job itself (exercising the worker's panic isolation); any other
    /// value panics while summarizing the first method whose name contains
    /// it. Fault-injected jobs bypass the cache entirely.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub inject_fault: Option<String>,
    /// Worker threads for the backwards chain search. `None` uses the
    /// daemon's configured default; `Some(0)` means one per CPU core.
    /// Canonical chain ordering makes the result identical either way, so
    /// this is a latency knob, not a semantics knob.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub search_threads: Option<usize>,
    /// Enable the `(method, Trigger_Condition)` dominance memo in the
    /// search (default true). Turning it off exists for benchmarking the
    /// unmemoized walk; the chain set is identical either way.
    #[serde(default = "default_tc_memo")]
    pub tc_memo: bool,
    /// Run the post-search witness stage: synthesize a concrete plan per
    /// chain, execute it in the IR interpreter, and tier every chain
    /// (`witnessed` > `plan-found` > `static-only`). Like `search_threads`
    /// and `tc_memo`, this does not change the chain *set*, so it is
    /// excluded from job cache keys and applied post-hoc on cache hits.
    #[serde(default)]
    pub witness: bool,
    /// Reject `.jar`/`.war`/`.zip` inputs with the pre-v7 "unpack it first"
    /// error instead of streaming them through the archive ingester.
    #[serde(default)]
    pub no_archives: bool,
}

impl Default for ScanRequestOptions {
    fn default() -> Self {
        Self {
            depth: default_depth(),
            extended: false,
            fresh: false,
            strict: false,
            inject_fault: None,
            search_threads: None,
            tc_memo: true,
            witness: false,
            no_archives: false,
        }
    }
}

/// Default row cap of a [`Request::Query`].
fn default_max_rows() -> usize {
    10_000
}

/// Default expansion budget of a [`Request::Query`].
fn default_max_expansions() -> usize {
    2_000_000
}

/// Options of a [`Request::Query`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRequestOptions {
    /// Use the extended source catalog when annotating the CPG (matches
    /// the scan option of the same name; changes `IS_SOURCE` tagging).
    #[serde(default)]
    pub extended: bool,
    /// Bypass cache *reads* (the resolved CPG is still cached).
    #[serde(default)]
    pub fresh: bool,
    /// Maximum rows returned; overflow sets `truncated` in the trailer.
    #[serde(default = "default_max_rows")]
    pub max_rows: usize,
    /// Maximum edge expansions in the pattern search.
    #[serde(default = "default_max_expansions")]
    pub max_expansions: usize,
    /// Optional executor wall-clock budget in milliseconds (the job's own
    /// deadline still applies on top).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeout_ms: Option<u64>,
}

impl Default for QueryRequestOptions {
    fn default() -> Self {
        QueryRequestOptions {
            extended: false,
            fresh: false,
            max_rows: default_max_rows(),
            max_expansions: default_max_expansions(),
            timeout_ms: None,
        }
    }
}

/// Timing and cache-effectiveness stats of one scan job, reported in every
/// successful scan response.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    /// Milliseconds spent waiting in the job queue.
    pub queue_ms: u64,
    /// Milliseconds spent parsing + lifting `.class` files (cache misses
    /// only — cached classes cost nothing here).
    pub lift_ms: u64,
    /// Milliseconds spent in the controllability analysis (Algorithm 1).
    pub summarize_ms: u64,
    /// Milliseconds spent assembling the CPG and annotating sinks/sources.
    pub build_ms: u64,
    /// Milliseconds spent in the backwards chain search.
    pub search_ms: u64,
    /// Milliseconds spent in the witness stage (0 unless the request set
    /// [`ScanRequestOptions::witness`]).
    #[serde(default)]
    pub witness_ms: u64,
    /// End-to-end milliseconds including queue wait.
    pub total_ms: u64,
    /// Distinct classes in the scanned component.
    pub classes: usize,
    /// Classes actually parsed + lifted (the rest came from the per-class
    /// content-addressed cache).
    pub classes_lifted: usize,
    /// Methods with bodies in the component.
    pub methods: usize,
    /// Methods whose summary was recomputed (the rest were reused from a
    /// previous scan of the same component).
    pub methods_summarized: usize,
    /// Fraction of per-method summarization work served from cache:
    /// `1 - methods_summarized / methods` (and `1.0` when the whole job —
    /// chains or CPG — was a cache hit).
    pub cache_hit_ratio: f64,
    /// The chain set itself was served from the per-job cache; lift,
    /// summarize, build, and search were all skipped.
    pub job_cache_hit: bool,
    /// The assembled CPG was served from the per-job cache; only the chain
    /// search ran.
    pub cpg_cache_hit: bool,
    /// The job ran zero-copy off a memory-mapped flat CPG artifact: no
    /// serde decode, no graph rebuild, no CSR freeze — the search (or
    /// query expansion) read the mapped arrays directly.
    #[serde(default)]
    pub cpg_map_hit: bool,
    /// Size in bytes of the mapped artifact backing this job (0 unless
    /// `cpg_map_hit`).
    #[serde(default)]
    pub map_bytes: u64,
    /// Milliseconds the backing mapping had been open when this job used
    /// it (0 unless `cpg_map_hit`; 0 also on the first use after open).
    #[serde(default)]
    pub map_age_ms: u64,
    /// Topological waves the SCC-wave summarization scheduler ran (0 when
    /// summarization was skipped entirely — a job or CPG cache hit, or a
    /// warm re-scan with nothing dirty).
    #[serde(default)]
    pub summarize_waves: usize,
    /// Methods in the largest recursion SCC the scheduler condensed.
    #[serde(default)]
    pub summarize_largest_scc: usize,
    /// Summaries the scheduler actually computed, as counted by the
    /// scheduler itself. Equals `methods_summarized` on a clean run — the
    /// exactly-once invariant means no method is ever recomputed.
    #[serde(default)]
    pub summaries_computed: usize,
}

/// What a [`Request::Diff`] did to the registry, reported in every
/// successful diff reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffOutcome {
    /// True when this was the corpus's first snapshot: the scan was
    /// registered as `v1` and there was nothing to diff against.
    pub baseline: bool,
    /// True when the paths' content matched the latest registered version:
    /// nothing was registered and nothing diffed (the watch thread's
    /// steady state).
    pub identical: bool,
    /// `corpus@vN` of the previous latest version, when one existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub old_ref: Option<String>,
    /// `corpus@vN` this scan now corresponds to (newly registered, or the
    /// unchanged latest on an identical run).
    pub new_ref: String,
    /// The differential report, present exactly when a previous version
    /// existed and the content changed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<DiffReport>,
}

/// Daemon-wide statistics, returned by [`Request::Stats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DaemonInfo {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Jobs completed successfully.
    pub jobs_done: u64,
    /// Jobs that failed (bad paths, timeouts, lift errors).
    pub jobs_failed: u64,
    /// Jobs rejected by load shedding: full queue or per-client in-flight
    /// cap (each such rejection is a `busy` reply with a retry hint).
    pub jobs_rejected: u64,
    /// Lifted classes in the content-addressed class cache.
    pub cached_classes: usize,
    /// Chain sets in the per-job cache.
    pub cached_jobs: usize,
    /// Assembled CPGs in the per-job cache.
    pub cached_cpgs: usize,
    /// Corpora registered for watch mode.
    #[serde(default)]
    pub watched_corpora: usize,
    /// Watch-triggered diff jobs completed since startup.
    #[serde(default)]
    pub watch_diffs: u64,
    /// Corrupt persisted artifacts quarantined since startup (envelope
    /// verification failures moved to `quarantine/` and recomputed).
    #[serde(default)]
    pub artifacts_quarantined: u64,
    /// Failed artifact disk writes since startup (the results were still
    /// served from memory).
    #[serde(default)]
    pub artifact_write_failures: u64,
    /// Cache files evicted from disk by the size budget since startup.
    #[serde(default)]
    pub cache_disk_evictions: u64,
    /// Jobs currently waiting in the queue (admitted, not yet started).
    #[serde(default)]
    pub queue_depth: usize,
    /// Chain-set cache hits (memory or disk) since startup.
    #[serde(default)]
    pub chain_cache_hits: u64,
    /// Chain-set cache misses since startup.
    #[serde(default)]
    pub chain_cache_misses: u64,
    /// CPG cache hits (memory or disk) since startup.
    #[serde(default)]
    pub cpg_cache_hits: u64,
    /// CPG cache misses since startup.
    #[serde(default)]
    pub cpg_cache_misses: u64,
    /// Flat-map hits (an already-open mapping served a job) since startup.
    #[serde(default)]
    pub map_hits: u64,
    /// Flat-map misses (no open mapping; includes first opens) since
    /// startup.
    #[serde(default)]
    pub map_misses: u64,
    /// Total bytes of flat CPG artifacts currently memory-mapped.
    #[serde(default)]
    pub bytes_mapped: u64,
    /// Flat CPG mappings currently open.
    #[serde(default)]
    pub open_maps: usize,
    /// Mappings dropped by the map byte budget since startup.
    #[serde(default)]
    pub maps_evicted: u64,
    /// Age in milliseconds of every open mapping, keyed by the artifact's
    /// content hash (hex), oldest first.
    #[serde(default)]
    pub map_ages_ms: Vec<(String, u64)>,
    /// Mean nanoseconds per chain-search edge expansion since startup
    /// (0 before the first search) — the daemon's search-throughput
    /// health metric.
    #[serde(default)]
    pub ns_per_expansion: u64,
}

/// A daemon reply. One line of JSON per request (queries follow the header
/// with row and trailer lines); `ok` tells the client whether to look at
/// the payload fields or at `error`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version of the daemon that produced this reply. Replies
    /// missing the field deserialize as `0` — an unversioned v1 daemon.
    #[serde(default)]
    pub v: u32,
    /// Echo of the request's correlation id, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Human-readable failure description when `ok` is false.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// True when the failure is load shedding (full queue or per-client
    /// in-flight cap): the daemon is healthy, the job was simply not
    /// admitted, and the same request will succeed once load drains.
    #[serde(default, skip_serializing_if = "is_false")]
    pub busy: bool,
    /// Suggested client backoff before retrying a `busy` rejection, in
    /// milliseconds (derived from observed job latency and queue depth).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_ms: Option<u64>,
    /// Found gadget chains (scan replies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chains: Option<Vec<GadgetChain>>,
    /// Per-job stats (scan replies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<JobStats>,
    /// What was skipped, quarantined, or truncated during a degraded scan
    /// (scan replies only; omitted when the scan was clean and complete).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub diagnostics: Option<ScanDiagnostics>,
    /// Daemon-wide stats (stats replies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub daemon: Option<DaemonInfo>,
    /// Column headers (query header replies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub columns: Option<Vec<String>>,
    /// Planner warnings — unknown names, anchor notes (query headers only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub warnings: Option<Vec<String>>,
    /// Human-readable anchor description (query headers only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub anchor: Option<String>,
    /// Registry outcome (diff replies only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub diff: Option<DiffOutcome>,
}

impl Default for Response {
    fn default() -> Self {
        Response {
            v: PROTOCOL_VERSION,
            id: None,
            ok: false,
            error: None,
            busy: false,
            retry_after_ms: None,
            chains: None,
            stats: None,
            diagnostics: None,
            daemon: None,
            columns: None,
            warnings: None,
            anchor: None,
            diff: None,
        }
    }
}

impl Response {
    /// A successful reply with no payload (ping/shutdown acks).
    pub fn ack(id: Option<String>) -> Self {
        Response {
            id,
            ok: true,
            ..Response::default()
        }
    }

    /// An error reply.
    pub fn failure(id: Option<String>, error: impl Into<String>) -> Self {
        Response {
            id,
            ok: false,
            error: Some(error.into()),
            ..Response::default()
        }
    }

    /// A load-shedding rejection: the daemon is healthy but did not admit
    /// the job; the client should back off `retry_after_ms` and retry.
    pub fn busy(id: Option<String>, error: impl Into<String>, retry_after_ms: u64) -> Self {
        Response {
            id,
            ok: false,
            error: Some(error.into()),
            busy: true,
            retry_after_ms: Some(retry_after_ms),
            ..Response::default()
        }
    }

    /// A successful scan reply. A clean, complete scan omits the
    /// diagnostics field entirely; degraded scans and scans that hit
    /// persisted-artifact faults (quarantines, failed writes) carry it.
    pub fn scan(
        id: Option<String>,
        chains: Vec<GadgetChain>,
        stats: JobStats,
        diagnostics: ScanDiagnostics,
    ) -> Self {
        Response {
            id,
            ok: true,
            chains: Some(chains),
            stats: Some(stats),
            diagnostics: reportable(diagnostics),
            ..Response::default()
        }
    }

    /// A successful diff reply. Like scan replies, a clean underlying scan
    /// omits the diagnostics field entirely.
    pub fn diff_reply(
        id: Option<String>,
        diff: DiffOutcome,
        stats: JobStats,
        diagnostics: ScanDiagnostics,
    ) -> Self {
        Response {
            id,
            ok: true,
            diff: Some(diff),
            stats: Some(stats),
            diagnostics: reportable(diagnostics),
            ..Response::default()
        }
    }

    /// A successful stats reply.
    pub fn info(id: Option<String>, daemon: DaemonInfo) -> Self {
        Response {
            id,
            ok: true,
            daemon: Some(daemon),
            ..Response::default()
        }
    }

    /// The header reply of a successful query; row and trailer lines
    /// follow on the same connection.
    pub fn query_header(
        id: Option<String>,
        columns: Vec<String>,
        warnings: Vec<String>,
        anchor: String,
        stats: JobStats,
    ) -> Self {
        Response {
            id,
            ok: true,
            columns: Some(columns),
            warnings: if warnings.is_empty() {
                None
            } else {
                Some(warnings)
            },
            anchor: Some(anchor),
            stats: Some(stats),
            ..Response::default()
        }
    }
}

/// Diagnostics worth sending: a degradation, or informational artifact
/// faults (corruption quarantined / write failed) the operator should see.
fn reportable(diagnostics: ScanDiagnostics) -> Option<ScanDiagnostics> {
    if diagnostics.is_degraded() || !diagnostics.artifact_faults.is_empty() {
        Some(diagnostics)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_request_round_trips() {
        let req = Request::Scan {
            id: Some("job-1".into()),
            paths: vec!["/tmp/app".into()],
            options: ScanRequestOptions {
                depth: 8,
                extended: true,
                ..ScanRequestOptions::default()
            },
        };
        let line = encode_request(&req).unwrap();
        assert!(line.contains("\"cmd\":\"scan\""));
        assert!(
            line.contains(&format!("\"v\":{PROTOCOL_VERSION}")),
            "{line}"
        );
        let back = parse_request(&line).unwrap();
        match back {
            Request::Scan { id, paths, options } => {
                assert_eq!(id.as_deref(), Some("job-1"));
                assert_eq!(paths, vec!["/tmp/app".to_owned()]);
                assert_eq!(options.depth, 8);
                assert!(options.extended);
            }
            other => panic!("unexpected request: {other:?}"),
        }
    }

    #[test]
    fn scan_options_default_when_absent() {
        let req = parse_request(r#"{"v":6,"cmd":"scan","paths":["a.class"]}"#).unwrap();
        match req {
            Request::Scan { id, options, .. } => {
                assert!(id.is_none());
                assert_eq!(options, ScanRequestOptions::default());
                assert_eq!(options.depth, 12);
                assert!(!options.witness, "witness defaults off when absent");
            }
            other => panic!("unexpected request: {other:?}"),
        }
    }

    #[test]
    fn query_request_round_trips_with_default_options() {
        let req = parse_request(
            r#"{"v":6,"cmd":"query","paths":["/tmp/app"],"query":"MATCH (m) RETURN m"}"#,
        )
        .unwrap();
        match req {
            Request::Query {
                id,
                paths,
                query,
                options,
            } => {
                assert!(id.is_none());
                assert_eq!(paths, vec!["/tmp/app".to_owned()]);
                assert_eq!(query, "MATCH (m) RETURN m");
                assert_eq!(options, QueryRequestOptions::default());
                assert_eq!(options.max_rows, 10_000);
            }
            other => panic!("unexpected request: {other:?}"),
        }
    }

    #[test]
    fn unversioned_request_is_rejected_with_a_clear_message() {
        let err = parse_request(r#"{"cmd":"ping"}"#).unwrap_err();
        assert!(err.contains("unversioned request"), "{err}");
        assert!(err.contains("v6"), "{err}");
    }

    #[test]
    fn version_mismatch_names_both_versions() {
        let err = parse_request(r#"{"v":1,"cmd":"ping"}"#).unwrap_err();
        assert!(err.contains("request is v1"), "{err}");
        assert!(err.contains("daemon speaks v6"), "{err}");
        // A v5 client (pre-map-metrics protocol) hitting a v6 daemon gets
        // the same structured rejection, not a guessy partial parse.
        let err = parse_request(r#"{"v":5,"cmd":"ping"}"#).unwrap_err();
        assert!(err.contains("request is v5"), "{err}");
        assert!(err.contains("daemon speaks v6"), "{err}");
        let err = parse_request(r#"{"v":"two","cmd":"ping"}"#).unwrap_err();
        assert!(err.contains("must be the integer 6"), "{err}");
    }

    #[test]
    fn unknown_command_is_a_parse_error() {
        assert!(parse_request(r#"{"v":6,"cmd":"explode"}"#)
            .unwrap_err()
            .contains("malformed request"));
        assert!(parse_request("not json")
            .unwrap_err()
            .contains("malformed request"));
    }

    #[test]
    fn responses_carry_the_protocol_version() {
        let line = serde_json::to_string(&Response::ack(None)).unwrap();
        assert!(
            line.contains(&format!("\"v\":{PROTOCOL_VERSION}")),
            "{line}"
        );
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.v, PROTOCOL_VERSION);
        // An unversioned (v1) reply deserializes as v = 0.
        let old: Response = serde_json::from_str(r#"{"ok":true}"#).unwrap();
        assert_eq!(old.v, 0);
    }

    #[test]
    fn clean_scan_reply_omits_diagnostics() {
        let reply = Response::scan(
            None,
            vec![],
            JobStats::default(),
            ScanDiagnostics::default(),
        );
        let line = serde_json::to_string(&reply).unwrap();
        assert!(!line.contains("diagnostics"));
    }

    #[test]
    fn degraded_scan_reply_carries_diagnostics() {
        let d = ScanDiagnostics {
            search_truncated: true,
            ..ScanDiagnostics::default()
        };
        let reply = Response::scan(None, vec![], JobStats::default(), d);
        let line = serde_json::to_string(&reply).unwrap();
        assert!(line.contains("\"search_truncated\":true"));
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.diagnostics.unwrap().search_truncated);
    }

    #[test]
    fn diff_request_round_trips_with_defaults() {
        let req = parse_request(
            r#"{"v":6,"cmd":"diff","paths":["/tmp/app"],"registry":"/tmp/reg","corpus":"demo"}"#,
        )
        .unwrap();
        match req {
            Request::Diff {
                id,
                paths,
                registry,
                corpus,
                options,
                watch,
            } => {
                assert!(id.is_none());
                assert_eq!(paths, vec!["/tmp/app".to_owned()]);
                assert_eq!(registry, "/tmp/reg");
                assert_eq!(corpus, "demo");
                assert_eq!(options, ScanRequestOptions::default());
                assert!(!watch);
            }
            other => panic!("unexpected request: {other:?}"),
        }
    }

    #[test]
    fn diff_reply_carries_the_outcome() {
        let outcome = DiffOutcome {
            baseline: true,
            identical: false,
            old_ref: None,
            new_ref: "demo@v1".to_owned(),
            report: None,
        };
        let reply = Response::diff_reply(
            Some("d-1".into()),
            outcome,
            JobStats::default(),
            ScanDiagnostics::default(),
        );
        let line = serde_json::to_string(&reply).unwrap();
        assert!(line.contains("\"baseline\":true"), "{line}");
        assert!(!line.contains("old_ref"), "baseline omits old_ref: {line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        let diff = back.diff.expect("diff payload");
        assert_eq!(diff.new_ref, "demo@v1");
        assert!(diff.report.is_none());
    }

    #[test]
    fn error_response_omits_empty_payloads() {
        let line = serde_json::to_string(&Response::failure(None, "queue full")).unwrap();
        assert!(!line.contains("chains"));
        assert!(!line.contains("stats"));
        assert!(line.contains("queue full"));
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("queue full"));
    }
}
