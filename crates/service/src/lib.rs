//! # tabby-service — a persistent scan daemon with content-addressed caching
//!
//! Running Tabby as a one-shot CLI pays the full lift → summarize → build →
//! search cost on every invocation, even when only one class in a component
//! changed. This crate keeps the expensive state alive in a daemon:
//!
//! - a TCP front-end speaking a **JSON-lines protocol** ([`protocol`]):
//!   one JSON object per line, synchronous request/reply, malformed input
//!   answered with an error reply instead of a dropped connection;
//! - a **bounded job queue** drained by a worker pool, with explicit
//!   rejection when full, per-job timeouts, and graceful drain on
//!   shutdown ([`daemon`]);
//! - a **two-level content-addressed cache** ([`cache`]): per-class
//!   (hash of the `.class` bytes → lifted IR) and per-job (hash of the
//!   component's class hashes + options → chain set, and the assembled
//!   CPG one level below), with chain/CPG entries persisted to disk;
//! - an **incremental engine** ([`engine`]): re-scanning a component in
//!   which *k* classes changed re-summarizes only those *k* plus their
//!   reverse-dependency cone, reusing every other method's Action summary
//!   from the previous scan.
//!
//! Every scan reply carries [`protocol::JobStats`] — queue wait, per-phase
//! milliseconds, and the summarize-cache hit ratio — so cache behavior is
//! observable, not inferred.
//!
//! Besides scans, the daemon serves **TQL queries** (`"cmd": "query"`)
//! against the same content-addressed CPG cache: the reply is a header
//! line followed by one `{"row": [...]}` line per result row and a
//! `{"done": ...}` trailer carrying truncation accounting. Requests are
//! versioned (`"v"`): the daemon rejects other protocol versions with a
//! clear error instead of guessing ([`protocol::PROTOCOL_VERSION`]).
//!
//! Protocol v3 adds **differential scanning** (`"cmd": "diff"`): the
//! daemon scans the paths, registers the result as the next version of a
//! named corpus in a [`tabby_registry::Registry`], and replies with the
//! chain-level diff against the previous version — newly activated
//! chains with edge attribution, plus near-chains one edge short of
//! activating. Identical content short-circuits before any scan work.
//! With `"watch": true` the daemon re-fingerprints the corpus paths on a
//! poll cadence ([`ServiceConfig::watch_poll`]) and re-diffs through the
//! same worker queue whenever the content changes.
//!
//! Protocol v4 adds the **overload contract**: a submission the daemon
//! does not admit — full queue, or one client exceeding its
//! [`ServiceConfig::per_client_inflight`] cap — is answered with
//! `busy: true` and a `retry_after_ms` hint sized from observed job
//! latency; [`client::submit_with_retry`] honors the hint with jittered
//! exponential backoff. Persisted artifacts (cache entries, registry
//! snapshots) are wrapped in `tabby_core::envelope`'s checksummed format:
//! corrupt files are quarantined and recomputed, never served, and each
//! such event is reported through the reply's diagnostics and the
//! `stats` counters (`artifacts_quarantined`, `artifact_write_failures`,
//! `cache_disk_evictions`).
//!
//! The CLI front-ends are `tabby serve`, `tabby submit`, and
//! `tabby submit --query`; the protocol itself is plain enough for `nc`
//! (see the repository README, "Running as a service").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod signal;

pub use cache::{
    CachedChains, CachedClass, CachedCpg, ComponentState, FlatMeta, MappedFlat, ScanCache,
    DEFAULT_MAP_BUDGET,
};
pub use client::{diff, query, request, submit, submit_with_retry, QueryReply, RetryPolicy};
pub use daemon::{Daemon, DaemonHandle, ServiceConfig};
pub use engine::{DiffJobOutcome, Engine, JobOutcome, QueryOutcome};
pub use protocol::{
    encode_request, parse_request, DaemonInfo, DiffOutcome, JobStats, QueryRequestOptions, Request,
    Response, ScanRequestOptions, PROTOCOL_VERSION,
};
pub use signal::{install_handlers, termination_requested};
