//! A minimal blocking client for the daemon protocol.
//!
//! One request, one reply, one connection — exactly what `tabby submit`
//! and the integration tests need. Long-lived clients can keep a
//! connection open and frame lines themselves; the protocol is plain
//! JSON-lines either way.

use crate::protocol::{Request, Response, ScanRequestOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Sends one request to the daemon at `addr` and waits for its reply.
///
/// # Errors
///
/// Fails on connection, encoding, transport, or reply-decoding errors —
/// all as human-readable strings. A daemon-side failure is *not* an
/// error here: it comes back as a [`Response`] with `ok == false`.
pub fn request(addr: &str, req: &Request) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut line = serde_json::to_string(req).map_err(|e| format!("encode request: {e}"))?;
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("read reply: {e}"))?;
    if n == 0 {
        return Err("connection closed before reply".to_owned());
    }
    serde_json::from_str(reply.trim()).map_err(|e| format!("malformed reply: {e}"))
}

/// Convenience wrapper: submits a scan of `paths` and returns the reply.
///
/// # Errors
///
/// Same failure modes as [`request`].
pub fn submit(
    addr: &str,
    paths: Vec<String>,
    options: ScanRequestOptions,
) -> Result<Response, String> {
    request(
        addr,
        &Request::Scan {
            id: None,
            paths,
            options,
        },
    )
}
