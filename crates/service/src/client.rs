//! A minimal blocking client for the daemon protocol.
//!
//! One request, one reply, one connection — exactly what `tabby submit`
//! and the integration tests need. Long-lived clients can keep a
//! connection open and frame lines themselves; the protocol is plain
//! JSON-lines either way.

use crate::protocol::{
    encode_request, QueryRequestOptions, Request, Response, ScanRequestOptions, PROTOCOL_VERSION,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Opens a connection, sends one versioned request line, and returns a
/// buffered reader positioned at the daemon's first reply line.
fn send(addr: &str, req: &Request) -> Result<BufReader<TcpStream>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut line = encode_request(req)?;
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    Ok(BufReader::new(stream))
}

/// Reads one reply line, or errors on a closed connection.
fn read_reply_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("read reply: {e}"))?;
    if n == 0 {
        return Err("connection closed before reply".to_owned());
    }
    Ok(reply)
}

/// Sends one request to the daemon at `addr` and waits for its reply.
///
/// # Errors
///
/// Fails on connection, encoding, transport, reply-decoding, or protocol
/// version-mismatch errors — all as human-readable strings. A daemon-side
/// failure is *not* an error here: it comes back as a [`Response`] with
/// `ok == false`.
pub fn request(addr: &str, req: &Request) -> Result<Response, String> {
    let mut reader = send(addr, req)?;
    let reply = read_reply_line(&mut reader)?;
    let reply: Response =
        serde_json::from_str(reply.trim()).map_err(|e| format!("malformed reply: {e}"))?;
    check_reply_version(&reply)?;
    Ok(reply)
}

/// A daemon speaking another protocol version gets rejected client-side
/// too, so a stale client can't silently misread newer replies.
fn check_reply_version(reply: &Response) -> Result<(), String> {
    if reply.v == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(format!(
            "protocol version mismatch: daemon replied v{}, this client speaks v{PROTOCOL_VERSION}",
            reply.v
        ))
    }
}

/// A fully-read `query` reply: the header plus every streamed row and the
/// trailer's accounting.
#[derive(Debug)]
pub struct QueryReply {
    /// The header response (columns, warnings, anchor, stats — or the
    /// failure, in which case `rows` is empty).
    pub header: Response,
    /// Streamed rows, in arrival order.
    pub rows: Vec<Vec<serde_json::Value>>,
    /// True when a budget truncated the row stream.
    pub truncated: bool,
    /// Edge expansions the daemon-side search performed.
    pub expansions: u64,
}

/// Submits a TQL query over `paths` and reads the streamed reply to its
/// trailer: header line, `{"row": [...]}` lines, `{"done": ...}` line.
///
/// # Errors
///
/// Same failure modes as [`request`], plus a truncated stream (connection
/// dropped before the trailer). A daemon-side failure (bad path, parse
/// error) is not an `Err`: it is a header with `ok == false`.
pub fn query(
    addr: &str,
    paths: Vec<String>,
    query: &str,
    options: &QueryRequestOptions,
) -> Result<QueryReply, String> {
    let mut reader = send(
        addr,
        &Request::Query {
            id: None,
            paths,
            query: query.to_owned(),
            options: options.clone(),
        },
    )?;
    let header = read_reply_line(&mut reader)?;
    let header: Response =
        serde_json::from_str(header.trim()).map_err(|e| format!("malformed reply: {e}"))?;
    check_reply_version(&header)?;
    if !header.ok {
        return Ok(QueryReply {
            header,
            rows: Vec::new(),
            truncated: false,
            expansions: 0,
        });
    }
    let mut rows = Vec::new();
    loop {
        let line = read_reply_line(&mut reader)
            .map_err(|e| format!("query stream ended before its trailer: {e}"))?;
        let value: serde_json::Value =
            serde_json::from_str(line.trim()).map_err(|e| format!("malformed row line: {e}"))?;
        if let Some(row) = value.get("row") {
            let cells = row
                .as_array()
                .cloned()
                .ok_or_else(|| format!("row line is not an array: {value}"))?;
            rows.push(cells);
        } else if value.get("done").is_some() {
            let truncated = value
                .get("truncated")
                .and_then(serde_json::Value::as_bool)
                .unwrap_or(false);
            let expansions = value
                .get("expansions")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let reported = value.get("rows").and_then(serde_json::Value::as_u64);
            if reported.is_some_and(|n| n != rows.len() as u64) {
                return Err(format!(
                    "query stream dropped rows: trailer says {}, received {}",
                    reported.unwrap_or(0),
                    rows.len()
                ));
            }
            return Ok(QueryReply {
                header,
                rows,
                truncated,
                expansions,
            });
        } else {
            return Err(format!("unexpected line in query stream: {value}"));
        }
    }
}

/// Convenience wrapper: submits a scan of `paths` and returns the reply.
///
/// # Errors
///
/// Same failure modes as [`request`].
pub fn submit(
    addr: &str,
    paths: Vec<String>,
    options: ScanRequestOptions,
) -> Result<Response, String> {
    request(
        addr,
        &Request::Scan {
            id: None,
            paths,
            options,
        },
    )
}

/// Convenience wrapper: submits a differential scan of `paths` against
/// the registry at `registry_root`, registering the result as the next
/// version of `corpus`. With `watch`, the daemon also re-diffs whenever
/// the corpus content changes on disk.
///
/// # Errors
///
/// Same failure modes as [`request`].
pub fn diff(
    addr: &str,
    paths: Vec<String>,
    registry_root: &str,
    corpus: &str,
    watch: bool,
    options: ScanRequestOptions,
) -> Result<Response, String> {
    request(
        addr,
        &Request::Diff {
            id: None,
            paths,
            registry: registry_root.to_owned(),
            corpus: corpus.to_owned(),
            options,
            watch,
        },
    )
}

/// Bounded-retry policy for [`submit_with_retry`]: exponential backoff
/// with jitter, applied only to *transient* failures (connection refused,
/// `"queue full"` rejections). Permanent failures — bad paths, malformed
/// classes, job errors — surface immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retrying).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the `--no-retry` escape hatch).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`,
    /// capped at `max_delay`, plus up to 25% jitter so a burst of rejected
    /// clients doesn't re-dogpile the queue in lockstep.
    fn delay(&self, retry: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << (retry - 1).min(16));
        let capped = exp.min(self.max_delay);
        capped + jitter(capped / 4)
    }
}

/// Pseudo-random jitter in `[0, bound)` from the clock's subsecond nanos —
/// no RNG dependency needed for spreading retries out.
fn jitter(bound: Duration) -> Duration {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    if bound.is_zero() {
        Duration::ZERO
    } else {
        Duration::from_nanos(nanos % bound.as_nanos() as u64)
    }
}

/// Whether a transport-level error is worth retrying (the daemon may still
/// be starting up, or restarting).
fn transient_transport_error(err: &str) -> bool {
    err.starts_with("connect ")
}

/// Whether a daemon reply is a transient rejection worth backing off on:
/// any reply with the v4 `busy` flag (full queue, per-client cap), plus
/// the exact `"queue full"` error text older daemons send without it.
fn transient_rejection(resp: &Response) -> bool {
    !resp.ok && (resp.busy || resp.error.as_deref() == Some("queue full"))
}

/// Like [`submit`], but retries transient failures — connection refused
/// and `busy`/`"queue full"` rejections — under the given policy. When a
/// busy reply carries a `retry_after_ms` hint, the client sleeps at least
/// that long (plus jitter) before retrying, even if the policy's own
/// backoff is shorter; the daemon knows its queue better than we do.
/// Everything else returns on the first attempt.
///
/// # Errors
///
/// Same failure modes as [`request`], after the policy's attempts are
/// exhausted.
pub fn submit_with_retry(
    addr: &str,
    paths: Vec<String>,
    options: ScanRequestOptions,
    policy: &RetryPolicy,
) -> Result<Response, String> {
    let attempts = policy.attempts.max(1);
    let mut last_err = String::new();
    let mut retry_after: Option<Duration> = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            let mut delay = policy.delay(attempt - 1);
            if let Some(hinted) = retry_after.take() {
                let hinted = hinted + jitter(hinted / 4);
                delay = delay.max(hinted);
            }
            std::thread::sleep(delay);
        }
        match submit(addr, paths.clone(), options.clone()) {
            Ok(resp) if transient_rejection(&resp) && attempt < attempts => {
                retry_after = resp.retry_after_ms.map(Duration::from_millis);
                last_err = resp.error.unwrap_or_else(|| "busy".to_owned());
            }
            Ok(resp) => return Ok(resp),
            Err(e) if transient_transport_error(&e) && attempt < attempts => {
                last_err = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(format!("gave up after {attempts} attempts: {last_err}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(300),
        };
        // Jitter adds at most 25%, so bounds are deterministic.
        let d1 = policy.delay(1);
        assert!(d1 >= Duration::from_millis(100) && d1 < Duration::from_millis(126));
        let d2 = policy.delay(2);
        assert!(d2 >= Duration::from_millis(200) && d2 < Duration::from_millis(251));
        let d9 = policy.delay(9);
        assert!(d9 >= Duration::from_millis(300) && d9 < Duration::from_millis(376));
    }

    #[test]
    fn transient_predicates_classify_failures() {
        assert!(transient_transport_error(
            "connect 127.0.0.1:1: Connection refused"
        ));
        assert!(!transient_transport_error("read reply: broken pipe"));
        assert!(transient_rejection(&Response::failure(None, "queue full")));
        assert!(transient_rejection(&Response::busy(
            None,
            "client has 8 jobs in flight",
            250
        )));
        assert!(!transient_rejection(&Response::failure(None, "bad path")));
        assert!(!transient_rejection(&Response::ack(None)));
    }

    #[test]
    fn connection_refused_retries_then_surfaces_the_error() {
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
        };
        let started = std::time::Instant::now();
        // Nothing listens on this address; every attempt is refused.
        let err = submit_with_retry(
            "127.0.0.1:1",
            vec!["/tmp/none".to_owned()],
            ScanRequestOptions::default(),
            &policy,
        )
        .unwrap_err();
        assert!(err.starts_with("connect "), "{err}");
        // Two backoffs ran: >= 10ms + 20ms (jitter only adds).
        assert!(started.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn no_retry_policy_fails_fast() {
        let started = std::time::Instant::now();
        let err = submit_with_retry(
            "127.0.0.1:1",
            vec!["/tmp/none".to_owned()],
            ScanRequestOptions::default(),
            &RetryPolicy::none(),
        )
        .unwrap_err();
        assert!(err.starts_with("connect "), "{err}");
        assert!(started.elapsed() < Duration::from_millis(500));
    }
}
