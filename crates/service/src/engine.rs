//! The incremental scan engine.
//!
//! One [`Engine`] lives for the daemon's lifetime and executes every job.
//! A scan resolves through four tiers, cheapest first:
//!
//! 1. **Chain cache** — same class bytes, same options: return the stored
//!    chain set (no analysis at all).
//! 2. **CPG cache** — same class bytes and analysis options but a
//!    different search depth: re-run only the backwards search over the
//!    stored graph.
//! 3. **Incremental** — the same path set was scanned before and *k* of
//!    its classes changed: re-lift the changed files (clean classes come
//!    from the per-class cache), re-summarize the changed classes plus
//!    their reverse-dependency cone, and reuse every other method's
//!    summary from the previous scan.
//! 4. **Cold** — full lift + summarize + build + search.
//!
//! The reverse-dependency cone is computed by name: a class is dirty if
//! its bytes changed, it is new, or it (transitively) references a dirty
//! name via its superclass, interfaces, or any call site. Because method
//! resolution only ever walks loaded classes reachable through those same
//! references, a clean method's summary — including its resolved callees
//! and their Actions — cannot be affected by any change outside its cone.

use crate::cache::{CachedChains, CachedClass, CachedCpg, ComponentState, MappedFlat, ScanCache};
use crate::protocol::{DiffOutcome, JobStats, QueryRequestOptions, ScanRequestOptions};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tabby_core::{
    archives_unsupported_error, collect_inputs, summarize_program_incremental_contained,
    AnalysisConfig, Cpg, CpgSchema, MethodSummary, ScanDiagnostics, ShadowedClass, SkippedClass,
};
use tabby_graph::{content_hash64, CsrSnapshot, EdgeType, Fnv64, NodeId};
use tabby_ingest::{plan_corpus, BlobSource, CorpusReader, IngestLimits};
use tabby_ir::lift::lift_class;
use tabby_ir::{ClassId, MethodId, Program, ProgramBuilder, Symbol};
use tabby_pathfinder::{
    find_chains_raw_detailed, find_chains_snapshot_detailed, GadgetChain, NearChainConfig,
    SearchConfig, SinkCatalog, SourceCatalog, TriggerCondition,
};
use tabby_query::{ExecConfig, QueryOutput};
use tabby_registry::{corpus_content_key, diff_snapshots, parse_corpus_ref, Registry, Snapshot};

/// The result of one scan job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Found gadget chains, source-first.
    pub chains: Vec<GadgetChain>,
    /// Timing and cache-effectiveness stats.
    pub stats: JobStats,
    /// What was skipped, quarantined, or truncated (empty for a clean,
    /// complete scan).
    pub diagnostics: ScanDiagnostics,
}

/// The result of one differential-scan job.
#[derive(Debug)]
pub struct DiffJobOutcome {
    /// What was registered and what changed.
    pub diff: DiffOutcome,
    /// Timing and cache-effectiveness stats of the underlying scan.
    pub stats: JobStats,
    /// CPG/search-phase diagnostics of the underlying scan (a degraded
    /// scan never gets this far: snapshotting it is refused).
    pub diagnostics: ScanDiagnostics,
}

/// The result of one TQL query job.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Columns, rows, truncation flags, and planner notes.
    pub output: QueryOutput,
    /// Timing and cache-effectiveness stats.
    pub stats: JobStats,
    /// CPG-phase diagnostics (lift quarantines, summarize truncations).
    pub diagnostics: ScanDiagnostics,
}

/// Mutable per-job accounting threaded through the CPG resolution tiers.
struct JobTrace<'a> {
    stats: &'a mut JobStats,
    diagnostics: &'a mut ScanDiagnostics,
}

/// The daemon's scan engine: analysis configuration plus the shared cache.
pub struct Engine {
    cache: Mutex<ScanCache>,
    config: AnalysisConfig,
    analysis_threads: usize,
    /// Default worker threads for the backwards chain search; a job can
    /// override it per request. Not part of any cache key: the search is
    /// canonically ordered, so thread count never changes a result.
    search_threads: usize,
    /// Fingerprint of the analysis configuration, folded into every cache
    /// key so a config change can never serve stale entries.
    analysis_fp: u64,
    /// Size budget for registries written by diff jobs; enforced with
    /// [`Registry::gc`] after each snapshot save when set.
    registry_budget: Option<u64>,
    /// Lifetime nanoseconds spent in the backwards chain search, across
    /// graph-backed and mapped searches alike. Paired with
    /// [`Engine::search_expansions`] it yields the daemon's
    /// `ns_per_expansion` health metric.
    search_nanos: AtomicU64,
    /// Lifetime edge expansions performed by the chain search.
    search_expansions: AtomicU64,
}

impl Engine {
    /// Creates an engine with the default analysis configuration.
    pub fn new(
        cache_dir: Option<PathBuf>,
        cache_capacity: usize,
        analysis_threads: usize,
    ) -> Engine {
        let config = AnalysisConfig::default();
        let analysis_fp = content_hash64(format!("{config:?}").as_bytes());
        Engine {
            cache: Mutex::new(ScanCache::new(cache_dir, cache_capacity)),
            config,
            analysis_threads: analysis_threads.max(1),
            search_threads: 1,
            analysis_fp,
            registry_budget: None,
            search_nanos: AtomicU64::new(0),
            search_expansions: AtomicU64::new(0),
        }
    }

    /// Sets the default search-thread count for jobs that don't request
    /// one (`0` means one per CPU core).
    #[must_use]
    pub fn with_search_threads(mut self, search_threads: usize) -> Engine {
        self.search_threads = search_threads;
        self
    }

    /// Sets a size budget in bytes for the on-disk artifact cache; the
    /// oldest entries are evicted when a write pushes the total over it.
    #[must_use]
    pub fn with_cache_budget(self, budget_bytes: Option<u64>) -> Engine {
        self.lock_cache().set_disk_budget(budget_bytes);
        self
    }

    /// Sets a size budget in bytes for registries written by diff jobs;
    /// [`Registry::gc`] runs after each snapshot save when set.
    #[must_use]
    pub fn with_registry_budget(mut self, budget_bytes: Option<u64>) -> Engine {
        self.registry_budget = budget_bytes;
        self
    }

    /// Sets a size budget in bytes for memory-mapped flat CPG artifacts
    /// kept open at once; the oldest mappings are dropped (files stay on
    /// disk) when a new map pushes the total over it.
    #[must_use]
    pub fn with_map_budget(self, budget_bytes: u64) -> Engine {
        self.lock_cache().set_map_budget(budget_bytes);
        self
    }

    /// Locks the cache, recovering from poisoning: a panic in another
    /// worker (already contained and reported there) must not cascade into
    /// every future job. The cache's invariants are append-only, so an
    /// interrupted writer leaves at worst a missing entry.
    fn lock_cache(&self) -> MutexGuard<'_, ScanCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current cache occupancy: `(classes, chain sets, CPGs)`.
    pub fn cache_counts(&self) -> (usize, usize, usize) {
        let cache = self.lock_cache();
        (
            cache.cached_classes(),
            cache.cached_jobs(),
            cache.cached_cpgs(),
        )
    }

    /// Lifetime persistence-health counters:
    /// `(artifacts quarantined, artifact write failures, disk evictions)`.
    pub fn persistence_stats(&self) -> (u64, u64, u64) {
        let cache = self.lock_cache();
        (
            cache.artifacts_quarantined(),
            cache.artifact_write_failures(),
            cache.disk_evictions(),
        )
    }

    /// Lifetime cache-traffic counters:
    /// `(chain hits, chain misses, CPG hits, CPG misses)`.
    pub fn cache_traffic(&self) -> (u64, u64, u64, u64) {
        let cache = self.lock_cache();
        (
            cache.chain_hits(),
            cache.chain_misses(),
            cache.cpg_hits(),
            cache.cpg_misses(),
        )
    }

    /// Mapped-artifact health: `(map hits, map misses, bytes mapped,
    /// mappings evicted, open maps)`.
    pub fn map_stats(&self) -> (u64, u64, u64, u64, usize) {
        let cache = self.lock_cache();
        (
            cache.map_hits(),
            cache.map_misses(),
            cache.bytes_mapped(),
            cache.maps_evicted(),
            cache.open_maps(),
        )
    }

    /// Age in milliseconds of every currently open mapping, keyed by the
    /// artifact's content hash (hex), oldest first.
    pub fn map_ages_ms(&self) -> Vec<(String, u64)> {
        self.lock_cache().map_ages_ms()
    }

    /// Mean nanoseconds per chain-search edge expansion across the
    /// engine's lifetime (0 before the first search).
    pub fn ns_per_expansion(&self) -> u64 {
        let expansions = self.search_expansions.load(Ordering::Relaxed);
        if expansions == 0 {
            return 0;
        }
        self.search_nanos.load(Ordering::Relaxed) / expansions
    }

    /// Folds one chain search into the lifetime `ns_per_expansion` metric.
    fn record_search(&self, elapsed: Duration, expansions: usize) {
        self.search_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.search_expansions
            .fetch_add(expansions as u64, Ordering::Relaxed);
    }

    /// Runs one scan job to completion (or until `deadline`).
    ///
    /// # Errors
    ///
    /// Fails on nonexistent/unreadable paths, paths that are neither
    /// `.class` files nor directories, malformed class files, components
    /// with no `.class` files, and deadline overruns.
    pub fn run_scan(
        &self,
        paths: &[String],
        options: &ScanRequestOptions,
        deadline: Instant,
    ) -> Result<JobOutcome, String> {
        let started = Instant::now();
        let mut stats = JobStats::default();
        let mut diagnostics = ScanDiagnostics::default();

        // Fault-injected jobs exist to test containment; they must neither
        // read stale clean results nor poison the cache with faulty ones.
        let faulty = options.inject_fault.is_some();
        if options.inject_fault.as_deref() == Some("job") {
            panic!("injected fault in job execution");
        }
        // A `sleep:<ms>` fault stalls the job while staying responsive to
        // its deadline — the lever the overload and timeout tests use to
        // hold queue slots for a controlled time.
        if let Some(ms) = options
            .inject_fault
            .as_deref()
            .and_then(|f| f.strip_prefix("sleep:"))
        {
            let total = ms
                .parse::<u64>()
                .map_err(|e| format!("bad sleep fault {ms:?}: {e}"))?;
            sleep_fault(total, deadline)?;
        }
        let config = {
            let mut c = self.config.clone();
            if let Some(f) = &options.inject_fault {
                c.panic_on_method = Some(f.clone());
            }
            c
        };

        // ----- collect, read, hash, key -----------------------------------
        let input = collect_and_hash(paths, options.no_archives)?;
        // Shadowing is derived fresh from the input plan on every job and
        // never replayed from a cache tier.
        diagnostics.shadowed_classes = input.shadowed.clone();
        let keys = self.job_keys(&input, options);
        // Note that the chains key deliberately excludes `search_threads`
        // and `tc_memo`: only complete (non-truncated) chain sets are
        // cached, and complete sets are invariant to both knobs — they are
        // byte-identical across every thread count and memo setting.
        let search_cfg = SearchConfig {
            max_depth: options.depth,
            deadline: Some(deadline),
            search_threads: options.search_threads.unwrap_or(self.search_threads),
            tc_memo: options.tc_memo,
            ..SearchConfig::default()
        };

        // ----- tier 1: chain cache ----------------------------------------
        if !options.fresh && !faulty {
            // Artifact faults (a corrupt entry quarantined by this lookup)
            // are drained under the same lock so they attribute to this
            // job, not whichever job happens to lock the cache next.
            let cached = {
                let mut cache = self.lock_cache();
                let cached = cache.get_chains(keys.chains);
                diagnostics
                    .artifact_faults
                    .extend(cache.take_artifact_faults());
                cached
            };
            if let Some(cached) = cached {
                stats.classes = input.content.len();
                stats.job_cache_hit = true;
                stats.cache_hit_ratio = 1.0;
                let mut served = cached.diagnostics;
                served
                    .artifact_faults
                    .extend(std::mem::take(&mut diagnostics.artifact_faults));
                served.shadowed_classes = std::mem::take(&mut diagnostics.shadowed_classes);
                // The chain cache stores tier-free chains (the witness flag
                // is excluded from job keys: it never changes the chain
                // set), so witnessing runs post-hoc even on a hit. The
                // per-class cache makes the re-lift nearly free.
                let mut chains = cached.chains;
                if options.witness {
                    self.apply_witness(&input, &mut chains, &mut stats, &mut served);
                }
                stats.total_ms = ms_since(started);
                return Ok(JobOutcome {
                    chains,
                    stats,
                    diagnostics: served,
                });
            }
        }

        // ----- tier 1.5: memory-mapped flat CPG ---------------------------
        // A persisted flat artifact lets the search run zero-copy off the
        // mapping: no serde decode, no graph rebuild, no CSR freeze. The
        // chain set is byte-identical to the graph-backed search (the flat
        // arrays *are* the frozen CSR arrays), so this is purely a latency
        // tier. Witnessing still works post-hoc — it re-lifts from the
        // input bytes, not from the CPG.
        if !options.fresh && !faulty {
            let flat = {
                let mut cache = self.lock_cache();
                let flat = cache.get_flat(keys.cpg);
                diagnostics
                    .artifact_faults
                    .extend(cache.take_artifact_faults());
                flat
            };
            if let Some(flat) = flat {
                return self.scan_mapped(
                    &flat,
                    &input,
                    &keys,
                    options,
                    &search_cfg,
                    stats,
                    diagnostics,
                    started,
                );
            }
        }

        // ----- tiers 2–4: CPG cache, incremental, or cold build -----------
        let cpg = self.resolve_cpg(
            &input,
            &keys,
            options,
            &config,
            deadline,
            &mut JobTrace {
                stats: &mut stats,
                diagnostics: &mut diagnostics,
            },
        )?;

        // ----- search ------------------------------------------------------
        let t_search = Instant::now();
        let schema =
            CpgSchema::lookup(&cpg.graph).ok_or("resolved CPG is missing its schema vocabulary")?;
        let sinks: Vec<(NodeId, TriggerCondition)> = cpg
            .sinks
            .iter()
            .map(|(n, tc, _)| (NodeId(*n), tc.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = cpg
            .sinks
            .iter()
            .map(|(n, _, cat)| (NodeId(*n), cat.clone()))
            .collect();
        let sources: HashSet<NodeId> = cpg.sources.iter().map(|&n| NodeId(n)).collect();
        let search = find_chains_raw_detailed(
            &cpg.graph,
            &schema,
            sinks,
            categories,
            &sources,
            &search_cfg,
        );
        stats.search_ms = ms_since(t_search);
        self.record_search(t_search.elapsed(), search.expansions);
        diagnostics.search_truncated = search.truncated;
        diagnostics.search_expansions = search.expansions;
        diagnostics.search_memo_hits = search.memo_hits;
        // A truncated search is deadline-dependent, not content-addressed —
        // never serve it to a later job. Faulty jobs never write caches.
        if !faulty && !search.truncated {
            // Artifact faults are this job's events, not a property of the
            // chain set — strip them from the stored entry so cache hits
            // don't replay them, then drain any fault the write itself hit.
            // Shadowing likewise re-derives per job from the input plan.
            let mut stored = diagnostics.clone();
            stored.artifact_faults.clear();
            stored.shadowed_classes.clear();
            let mut cache = self.lock_cache();
            cache.put_chains(
                keys.chains,
                &CachedChains {
                    chains: search.chains.clone(),
                    diagnostics: stored,
                },
            );
            diagnostics
                .artifact_faults
                .extend(cache.take_artifact_faults());
        }
        // Witness *after* the cache write: stored chain sets stay tier-free
        // so witness and non-witness jobs can share them.
        let mut chains = search.chains;
        if options.witness {
            self.apply_witness(&input, &mut chains, &mut stats, &mut diagnostics);
        }
        stats.total_ms = ms_since(started);
        Ok(JobOutcome {
            chains,
            stats,
            diagnostics,
        })
    }

    /// Tier 1.5 of [`Engine::run_scan`]: the backwards chain search run
    /// zero-copy off a memory-mapped flat CPG artifact. The mapped arrays
    /// are byte-for-byte the CSR arrays `CsrSnapshot::freeze` would build
    /// from the decoded graph, so the chain set is identical to the
    /// graph-backed tiers — only the decode/rebuild/freeze cost is gone.
    #[allow(clippy::too_many_arguments)]
    fn scan_mapped(
        &self,
        flat: &MappedFlat,
        input: &JobInput,
        keys: &JobKeys,
        options: &ScanRequestOptions,
        search_cfg: &SearchConfig,
        mut stats: JobStats,
        mut diagnostics: ScanDiagnostics,
        started: Instant,
    ) -> Result<JobOutcome, String> {
        stats.classes = input.content.len();
        stats.cpg_map_hit = true;
        stats.cache_hit_ratio = 1.0;
        stats.map_bytes = flat.bytes();
        stats.map_age_ms = flat.opened_at.elapsed().as_millis() as u64;
        diagnostics.merge(flat.meta.diagnostics.clone());

        let t_search = Instant::now();
        // CALL must be layer 0 and ALIAS layer 1 — the contract of
        // `find_chains_snapshot_detailed` (`CALL_LAYER` / `ALIAS_LAYER`).
        let csr = flat
            .cpg
            .snapshot(&[EdgeType(flat.meta.call_ty), EdgeType(flat.meta.alias_ty)]);
        let sinks: Vec<(NodeId, TriggerCondition)> = flat
            .meta
            .sinks
            .iter()
            .map(|(n, tc, _)| (NodeId(*n), tc.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = flat
            .meta
            .sinks
            .iter()
            .map(|(n, _, cat)| (NodeId(*n), cat.clone()))
            .collect();
        let sources: HashSet<NodeId> = flat.meta.sources.iter().map(|&n| NodeId(n)).collect();
        let describe = |n: NodeId| {
            format!(
                "{}.{}",
                flat.cpg.node_class(n).unwrap_or("?"),
                flat.cpg.node_name(n).unwrap_or("?")
            )
        };
        let search =
            find_chains_snapshot_detailed(&csr, &describe, sinks, categories, &sources, search_cfg);
        stats.search_ms = ms_since(t_search);
        self.record_search(t_search.elapsed(), search.expansions);
        diagnostics.search_truncated = search.truncated;
        diagnostics.search_expansions = search.expansions;
        diagnostics.search_memo_hits = search.memo_hits;
        if !search.truncated {
            let mut stored = diagnostics.clone();
            stored.artifact_faults.clear();
            stored.shadowed_classes.clear();
            let mut cache = self.lock_cache();
            cache.put_chains(
                keys.chains,
                &CachedChains {
                    chains: search.chains.clone(),
                    diagnostics: stored,
                },
            );
            diagnostics
                .artifact_faults
                .extend(cache.take_artifact_faults());
        }
        let mut chains = search.chains;
        if options.witness {
            self.apply_witness(input, &mut chains, &mut stats, &mut diagnostics);
        }
        stats.total_ms = ms_since(started);
        Ok(JobOutcome {
            chains,
            stats,
            diagnostics,
        })
    }

    /// Runs one TQL query job against the CPG for `paths`. The CPG
    /// resolves through the same content-addressed cache tiers as a scan,
    /// so a query right after a scan of the same bytes costs only the
    /// pattern search.
    ///
    /// # Errors
    ///
    /// Fails on the same path/lift errors as [`Engine::run_scan`], and on
    /// TQL parse errors (rendered with a caret pointing at the offending
    /// span). Budget overruns are not errors: the output is marked
    /// truncated instead.
    pub fn run_query(
        &self,
        paths: &[String],
        query: &str,
        options: &QueryRequestOptions,
        deadline: Instant,
    ) -> Result<QueryOutcome, String> {
        let started = Instant::now();
        let mut stats = JobStats::default();
        let mut diagnostics = ScanDiagnostics::default();
        // A query needs exactly the CPG a default scan would build; only
        // the source catalog (extended) and cache policy (fresh) carry
        // over, so scans and queries share cache entries.
        let scan_options = ScanRequestOptions {
            extended: options.extended,
            fresh: options.fresh,
            ..ScanRequestOptions::default()
        };
        let input = collect_and_hash(paths, false)?;
        diagnostics.shadowed_classes = input.shadowed.clone();
        let keys = self.job_keys(&input, &scan_options);
        let cpg = self.resolve_cpg(
            &input,
            &keys,
            &scan_options,
            &self.config,
            deadline,
            &mut JobTrace {
                stats: &mut stats,
                diagnostics: &mut diagnostics,
            },
        )?;
        let remaining = deadline.saturating_duration_since(Instant::now());
        let cfg = ExecConfig {
            max_rows: options.max_rows,
            max_expansions: options.max_expansions,
            timeout: Some(match options.timeout_ms {
                Some(ms) => remaining.min(Duration::from_millis(ms)),
                None => remaining,
            }),
        };
        // Variable-length pattern expansion runs over a CSR snapshot; when
        // the component's flat artifact is mapped, hand the executor views
        // straight into the mapping instead of freezing fresh arrays from
        // the decoded graph. Row output is identical either way.
        let flat = if options.fresh {
            None
        } else {
            let mut cache = self.lock_cache();
            let flat = cache.get_flat(keys.cpg);
            diagnostics
                .artifact_faults
                .extend(cache.take_artifact_faults());
            flat
        };
        if let Some(f) = &flat {
            stats.cpg_map_hit = true;
            stats.map_bytes = f.bytes();
            stats.map_age_ms = f.opened_at.elapsed().as_millis() as u64;
        }
        let t_query = Instant::now();
        let output = tabby_query::run_query_with(&cpg.graph, query, &cfg, |types| match &flat {
            Some(f) => Some(f.cpg.snapshot(types)),
            None => CsrSnapshot::freeze(&cpg.graph, types, None).ok(),
        })
        .map_err(|e| e.render(query))?;
        stats.search_ms = ms_since(t_query);
        stats.total_ms = ms_since(started);
        Ok(QueryOutcome {
            output,
            stats,
            diagnostics,
        })
    }

    /// Runs one differential-scan job: scans `paths` through the same
    /// cache tiers as [`Engine::run_scan`], registers the result as the
    /// next version of `corpus` in the registry at `registry_root`, and
    /// diffs it against the previously registered latest version.
    ///
    /// Three shapes of outcome:
    ///
    /// - **baseline** — the corpus had no snapshots; the scan is saved as
    ///   `v1` and there is nothing to diff;
    /// - **identical** — the paths' content hashes match the latest
    ///   version's; nothing is scanned, registered, or diffed (this check
    ///   runs *before* the scan, so an unchanged corpus costs only file
    ///   reads — the watch thread's steady state);
    /// - **diffed** — the scan is saved as the next version and compared
    ///   to the previous latest, near-chain relaxation included.
    ///
    /// # Errors
    ///
    /// Fails on the same path/lift errors as [`Engine::run_scan`], on a
    /// versioned corpus reference (the daemon assigns versions), on
    /// registry I/O errors, and on degraded scans — a truncated or
    /// quarantined chain set is refused at snapshot time so later diffs
    /// can never report phantom activations.
    pub fn run_diff(
        &self,
        paths: &[String],
        registry_root: &str,
        corpus: &str,
        options: &ScanRequestOptions,
        deadline: Instant,
    ) -> Result<DiffJobOutcome, String> {
        let started = Instant::now();
        let reference = parse_corpus_ref(corpus)?;
        if reference.version.is_some() {
            return Err(format!(
                "diff jobs take a bare corpus name (the daemon assigns the next \
                 version), got {corpus:?}"
            ));
        }
        if options.inject_fault.is_some() {
            return Err("diff jobs do not support fault injection".to_owned());
        }
        let corpus = reference.corpus.as_str();
        let registry = Registry::open(PathBuf::from(registry_root))?;
        let mut stats = JobStats::default();
        let mut diagnostics = ScanDiagnostics::default();
        let input = collect_and_hash(paths, options.no_archives)?;
        diagnostics.shadowed_classes = input.shadowed.clone();
        // Snapshot hashes key on provenance labels: for archive corpora
        // each class hashes under its `archive!/entry` chain, so version
        // diffs track archive content exactly like loose trees.
        let class_hashes: BTreeMap<String, u64> = input
            .entries
            .iter()
            .map(|e| (e.label.clone(), e.hash))
            .collect();
        let content_key = corpus_content_key(&class_hashes);
        let previous = match registry.latest_version(corpus) {
            Some(v) => Some(registry.load(corpus, v)?),
            None => None,
        };
        if let Some(prev) = &previous {
            if prev.content_key == content_key {
                stats.classes = input.content.len();
                stats.total_ms = ms_since(started);
                return Ok(DiffJobOutcome {
                    diff: DiffOutcome {
                        baseline: false,
                        identical: true,
                        old_ref: Some(prev.reference()),
                        new_ref: prev.reference(),
                        report: None,
                    },
                    stats,
                    diagnostics,
                });
            }
        }

        // ----- scan (shared cache tiers) + search --------------------------
        let keys = self.job_keys(&input, options);
        let search_cfg = SearchConfig {
            max_depth: options.depth,
            deadline: Some(deadline),
            search_threads: options.search_threads.unwrap_or(self.search_threads),
            tc_memo: options.tc_memo,
            ..SearchConfig::default()
        };
        let cpg = self.resolve_cpg(
            &input,
            &keys,
            options,
            &self.config,
            deadline,
            &mut JobTrace {
                stats: &mut stats,
                diagnostics: &mut diagnostics,
            },
        )?;
        let t_search = Instant::now();
        let schema =
            CpgSchema::lookup(&cpg.graph).ok_or("resolved CPG is missing its schema vocabulary")?;
        let sinks: Vec<(NodeId, TriggerCondition)> = cpg
            .sinks
            .iter()
            .map(|(n, tc, _)| (NodeId(*n), tc.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = cpg
            .sinks
            .iter()
            .map(|(n, _, cat)| (NodeId(*n), cat.clone()))
            .collect();
        let sources: HashSet<NodeId> = cpg.sources.iter().map(|&n| NodeId(n)).collect();
        let search = find_chains_raw_detailed(
            &cpg.graph,
            &schema,
            sinks,
            categories,
            &sources,
            &search_cfg,
        );
        stats.search_ms = ms_since(t_search);
        self.record_search(t_search.elapsed(), search.expansions);
        diagnostics.search_truncated = search.truncated;
        diagnostics.search_expansions = search.expansions;
        diagnostics.search_memo_hits = search.memo_hits;
        if !search.truncated {
            let mut stored = diagnostics.clone();
            stored.artifact_faults.clear();
            stored.shadowed_classes.clear();
            let mut cache = self.lock_cache();
            cache.put_chains(
                keys.chains,
                &CachedChains {
                    chains: search.chains.clone(),
                    diagnostics: stored,
                },
            );
            diagnostics
                .artifact_faults
                .extend(cache.take_artifact_faults());
        }

        // ----- witness (tiers recorded in the snapshot) --------------------
        // Runs after the cache write (stored chain sets stay tier-free) and
        // before the snapshot build, so registered versions carry tiers and
        // later diffs can report tier promotions.
        let mut chains = search.chains;
        if options.witness {
            self.apply_witness(&input, &mut chains, &mut stats, &mut diagnostics);
        }

        // ----- snapshot + register + diff ----------------------------------
        let snapshot_sinks: Vec<(NodeId, Vec<u16>, String)> = cpg
            .sinks
            .iter()
            .map(|(n, tc, cat)| (NodeId(*n), tc.clone(), cat.clone()))
            .collect();
        let snapshot_sources: Vec<NodeId> = cpg.sources.iter().map(|&n| NodeId(n)).collect();
        let version = previous.as_ref().map_or(1, |p| p.version + 1);
        // Degraded scans are refused here: the registry never holds a
        // partial chain set a later diff could misread as activations.
        let mut snapshot = Snapshot::build(
            corpus,
            version,
            &cpg.graph,
            &schema,
            &snapshot_sinks,
            &snapshot_sources,
            &chains,
            &diagnostics,
            class_hashes,
            options.depth,
        )?;
        // `save_next` re-derives the version under the registry's atomic
        // publish, so two concurrent diff jobs of the same corpus cannot
        // mint the same `corpus@vN` — a lost race becomes a version bump.
        registry.save_next(&mut snapshot)?;
        if let Some(budget) = self.registry_budget {
            registry.gc(&tabby_registry::GcPolicy {
                budget_bytes: budget,
                keep_latest: 2,
            })?;
        }
        let report = previous.as_ref().map(|prev| {
            let near = NearChainConfig {
                max_depth: options.depth,
                ..NearChainConfig::default()
            };
            diff_snapshots(prev, &snapshot, &near)
        });
        stats.total_ms = ms_since(started);
        Ok(DiffJobOutcome {
            diff: DiffOutcome {
                baseline: previous.is_none(),
                identical: false,
                old_ref: previous.as_ref().map(Snapshot::reference),
                new_ref: snapshot.reference(),
                report,
            },
            stats,
            diagnostics,
        })
    }

    /// Runs the witness stage over `chains` in place: re-lifts the job's
    /// classes through the per-class cache (the chain search works on the
    /// CPG and never keeps the IR around) and tiers every chain. Witness
    /// counters land in the diagnostics, time in `stats.witness_ms`.
    fn apply_witness(
        &self,
        input: &JobInput,
        chains: &mut [GadgetChain],
        stats: &mut JobStats,
        diagnostics: &mut ScanDiagnostics,
    ) {
        let t_witness = Instant::now();
        let program = self.lift_for_witness(input);
        let witness_stats = tabby_witness::witness_chains(
            &program,
            &SinkCatalog::paper(),
            chains,
            &tabby_witness::WitnessConfig::default(),
        );
        diagnostics.chains_witnessed = witness_stats.witnessed;
        diagnostics.chains_plan_found = witness_stats.plan_found;
        diagnostics.witness_failures = witness_stats.failures;
        stats.witness_ms = ms_since(t_witness);
    }

    /// Lifts the job's classes into a [`Program`] for the witness stage,
    /// riding the per-class cache (on a warm cache this is lookups plus
    /// assembly, no parsing). Lift failures are skipped silently here: the
    /// scan itself already recorded them as skipped classes, or rejected
    /// the job outright in strict mode. Class ordering and name dedup
    /// mirror [`Engine::resolve_cpg`], so `MethodId`s line up with the
    /// scanned program.
    fn lift_for_witness(&self, input: &JobInput) -> Program {
        let mut cache = self.lock_cache();
        let mut reader = CorpusReader::new(IngestLimits::default());
        let mut resolved = Vec::with_capacity(input.entries.len());
        let mut seen = HashSet::new();
        for entry in &input.entries {
            if !seen.insert(entry.hash) {
                continue;
            }
            if let Some(c) = cache.get_class(entry.hash) {
                resolved.push((c.fqcn.clone(), c.class.clone()));
                continue;
            }
            let Ok(bytes) = reader.fetch(&entry.source) else {
                continue;
            };
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || -> Result<(String, tabby_ir::Class), ()> {
                    let cf = tabby_classfile::parse_class(&bytes).map_err(|_| ())?;
                    let interner = cache.interner_mut();
                    let class = lift_class(interner, &cf).map_err(|_| ())?;
                    let fqcn = interner.resolve(class.name).to_owned();
                    Ok((fqcn, class))
                },
            ));
            if let Ok(Ok((fqcn, class))) = attempt {
                cache.put_class(
                    entry.hash,
                    CachedClass {
                        fqcn: fqcn.clone(),
                        class: class.clone(),
                    },
                );
                resolved.push((fqcn, class));
            }
        }
        resolved.sort_by(|a, b| a.0.cmp(&b.0));
        let mut pb = ProgramBuilder::with_interner(cache.interner_snapshot());
        let mut seen_names: HashSet<String> = HashSet::new();
        for (fqcn, class) in resolved {
            if !seen_names.insert(fqcn) {
                continue;
            }
            pb.push_class(class);
        }
        pb.build()
    }

    /// Derives the three cache keys for one job. The CPG and chain keys
    /// are content-addressed; the component key is deliberately path-keyed
    /// so incremental state follows the component, not the bytes.
    fn job_keys(&self, input: &JobInput, options: &ScanRequestOptions) -> JobKeys {
        let cpg = {
            let mut k = Fnv64::new();
            for h in &input.content {
                k.write_u64(*h);
            }
            k.write_u64(self.analysis_fp);
            k.write_u64(u64::from(options.extended));
            // Strict and tolerant scans of the same bytes can include
            // different classes, so they must never share cache entries.
            k.write_u64(u64::from(options.strict));
            k.finish()
        };
        let chains = {
            let mut k = Fnv64::new();
            k.write_u64(cpg);
            k.write_u64(options.depth as u64);
            k.finish()
        };
        let component = {
            let mut k = Fnv64::new();
            for e in &input.entries {
                k.write(e.label.as_bytes());
                k.write(&[0]);
            }
            k.write_u64(self.analysis_fp);
            k.finish()
        };
        JobKeys {
            cpg,
            chains,
            component,
        }
    }

    /// Resolves the annotated CPG for one job: serve the content-addressed
    /// CPG cache when allowed, otherwise lift (per-class cache), summarize
    /// (incrementally when a prior component state exists), build,
    /// annotate, and populate the caches. Both the backwards chain search
    /// and TQL queries run over the returned value, so the two job kinds
    /// can never disagree about the graph they saw.
    fn resolve_cpg(
        &self,
        input: &JobInput,
        keys: &JobKeys,
        options: &ScanRequestOptions,
        config: &AnalysisConfig,
        deadline: Instant,
        trace: &mut JobTrace<'_>,
    ) -> Result<Arc<CachedCpg>, String> {
        let faulty = options.inject_fault.is_some();

        // ----- tier 2: CPG cache ------------------------------------------
        if !options.fresh && !faulty {
            let cpg = {
                let mut cache = self.lock_cache();
                let cpg = cache.get_cpg(keys.cpg);
                trace
                    .diagnostics
                    .artifact_faults
                    .extend(cache.take_artifact_faults());
                cpg
            };
            if let Some(cpg) = cpg {
                trace.stats.classes = input.content.len();
                trace.stats.cpg_cache_hit = true;
                trace.stats.cache_hit_ratio = 1.0;
                trace.diagnostics.merge(cpg.diagnostics.clone());
                return Ok(cpg);
            }
        }
        check_deadline(deadline, "cache lookup")?;

        // ----- lift (per-class cache, shared interner) --------------------
        // Each class lifts inside its own containment boundary: a malformed
        // or even panic-inducing class is quarantined (recorded in the
        // diagnostics with its path and byte hash) and the scan continues
        // over the survivors — unless the job asked for strict mode.
        let t_lift = Instant::now();
        let (program, class_hashes) = {
            let mut cache = self.lock_cache();
            // Bytes are fetched lazily, one entry at a time, and only on a
            // per-class-cache miss — a warm daemon never re-inflates an
            // unchanged archive entry, and a cold one holds one blob at a
            // time, not the corpus.
            let mut reader = CorpusReader::new(IngestLimits::default());
            let mut resolved = Vec::with_capacity(input.entries.len());
            let mut seen = HashSet::new();
            for entry in &input.entries {
                if !seen.insert(entry.hash) {
                    continue;
                }
                if !options.fresh {
                    if let Some(c) = cache.get_class(entry.hash) {
                        resolved.push((c.fqcn.clone(), entry.hash, c.class.clone()));
                        continue;
                    }
                }
                let bytes = reader
                    .fetch(&entry.source)
                    .map_err(|e| format!("{}: {e}", entry.label))?;
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<(String, tabby_ir::Class), (Option<String>, String)> {
                        let cf = tabby_classfile::parse_class(&bytes)
                            .map_err(|e| (None, format!("{e:?}")))?;
                        let name = cf.name().ok();
                        let interner = cache.interner_mut();
                        let class = lift_class(interner, &cf)
                            .map_err(|e| (name.clone(), format!("{e:?}")))?;
                        let fqcn = interner.resolve(class.name).to_owned();
                        Ok((fqcn, class))
                    },
                ));
                let failure = match attempt {
                    Ok(Ok((fqcn, class))) => {
                        trace.stats.classes_lifted += 1;
                        cache.put_class(
                            entry.hash,
                            CachedClass {
                                fqcn: fqcn.clone(),
                                class: class.clone(),
                            },
                        );
                        resolved.push((fqcn, entry.hash, class));
                        continue;
                    }
                    Ok(Err((class_name, error))) => (class_name, error),
                    Err(payload) => (
                        None,
                        format!("panic while lifting: {}", panic_message(payload.as_ref())),
                    ),
                };
                if options.strict {
                    return Err(format!("{}: {}", entry.label, failure.1));
                }
                trace.diagnostics.skipped_classes.push(SkippedClass {
                    source: entry.label.clone(),
                    class_name: failure.0,
                    byte_hash: entry.hash,
                    error: failure.1,
                });
            }
            // Sort by FQCN so ClassIds are stable across scans regardless of
            // input path order; duplicate names keep the first occurrence.
            resolved.sort_by(|a, b| a.0.cmp(&b.0));
            let mut class_hashes: HashMap<String, u64> = HashMap::new();
            let mut pb = ProgramBuilder::with_interner(cache.interner_snapshot());
            for (fqcn, hash, class) in resolved {
                if class_hashes.contains_key(&fqcn) {
                    continue;
                }
                class_hashes.insert(fqcn, hash);
                pb.push_class(class);
            }
            (pb.build(), class_hashes)
        };
        trace.stats.lift_ms = ms_since(t_lift);
        trace.stats.classes = program.classes().len();
        check_deadline(deadline, "lift")?;

        // ----- summarize (incremental when a prior state exists) ----------
        let t_sum = Instant::now();
        trace.stats.methods = program
            .method_ids()
            .filter(|id| program.method(*id).body.is_some())
            .count();
        let prior = if options.fresh || faulty {
            None
        } else {
            self.lock_cache().get_component(keys.component)
        };
        let seed = match &prior {
            Some(state) => remap_clean_summaries(state, &program, &class_hashes),
            None => HashMap::new(),
        };
        trace.stats.methods_summarized = trace.stats.methods - seed.len();
        trace.stats.cache_hit_ratio = if trace.stats.methods == 0 {
            0.0
        } else {
            seed.len() as f64 / trace.stats.methods as f64
        };
        let outcome = summarize_program_incremental_contained(
            &program,
            config,
            self.analysis_threads,
            &HashSet::new(),
            &seed,
            Some(deadline),
        );
        trace.diagnostics.fixpoint_truncations += outcome.fixpoint_truncations();
        trace
            .diagnostics
            .quarantined_methods
            .extend(outcome.quarantined);
        trace.stats.summarize_waves = outcome.scheduler.waves;
        trace.stats.summarize_largest_scc = outcome.scheduler.largest_scc;
        trace.stats.summaries_computed = outcome.scheduler.summaries_computed;
        trace.diagnostics.summarize_waves = outcome.scheduler.waves;
        trace.diagnostics.summarize_largest_scc = outcome.scheduler.largest_scc;
        trace.diagnostics.summaries_computed = outcome.scheduler.summaries_computed;
        trace.diagnostics.methods_with_bodies = outcome.scheduler.methods_with_bodies;
        let summaries = outcome.summaries;
        trace.stats.summarize_ms = ms_since(t_sum);
        check_deadline(deadline, "summarize")?;

        // ----- build + annotate -------------------------------------------
        let t_build = Instant::now();
        let mut cpg = Cpg::build_with_summaries(&program, config.clone(), summaries.clone());
        let sink_catalog = SinkCatalog::paper();
        let source_catalog = if options.extended {
            SourceCatalog::extended()
        } else {
            SourceCatalog::native_serialization()
        };
        let sink_nodes = sink_catalog.annotate(&mut cpg);
        let source_nodes = source_catalog.annotate(&mut cpg);
        trace.stats.build_ms = ms_since(t_build);
        check_deadline(deadline, "build")?;

        // ----- assemble + populate caches ---------------------------------
        // Diagnostics so far cover lift + summarize; the CPG cache entry
        // stores exactly those (search degradation is per-query, and
        // artifact faults are this job's events, never replayed to hits;
        // shadowing re-derives from each job's own input plan).
        let phase_diagnostics = {
            let mut d = trace.diagnostics.clone();
            d.artifact_faults.clear();
            d.shadowed_classes.clear();
            d
        };
        let class_order: Vec<Symbol> = program.classes().iter().map(|c| c.name).collect();
        let mut sources: Vec<u32> = source_nodes.iter().map(|n| n.0).collect();
        sources.sort_unstable();
        let cached_cpg = Arc::new(CachedCpg {
            graph: cpg.graph,
            sinks: sink_nodes
                .iter()
                .map(|(n, s)| {
                    (
                        n.0,
                        s.trigger_condition.clone(),
                        s.category.as_str().to_owned(),
                    )
                })
                .collect(),
            sources,
            diagnostics: phase_diagnostics,
        });
        // Fault-injected jobs produced deliberately wrong summaries; keep
        // them out of every cache tier.
        if !faulty {
            // Budget-truncated summaries are deadline artifacts — drop them
            // from the seed state so the next scan recomputes them.
            let complete_summaries: HashMap<MethodId, MethodSummary> = summaries
                .into_iter()
                .filter(|(_, s)| !s.truncated)
                .collect();
            let mut cache = self.lock_cache();
            cache.put_component(
                keys.component,
                ComponentState {
                    class_hashes,
                    class_order,
                    summaries: complete_summaries,
                },
            );
            cache.put_cpg(keys.cpg, Arc::clone(&cached_cpg));
            trace
                .diagnostics
                .artifact_faults
                .extend(cache.take_artifact_faults());
        }
        Ok(cached_cpg)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// The resolved input of one job: every class under the requested paths —
/// loose `.class` files plus every entry of every archive, exploded
/// through the shared ingest planner — with its provenance label and
/// content hash. Blobs are *not* held here: the lift stage re-fetches
/// bytes lazily (and only on per-class-cache misses) through a
/// [`CorpusReader`], so job memory stays bounded regardless of corpus
/// size.
struct JobInput {
    entries: Vec<JobEntry>,
    /// Distinct content hashes, sorted — the job's content address.
    content: Vec<u64>,
    /// First-wins duplicate-resolution report from archive explosion.
    shadowed: Vec<ShadowedClass>,
}

/// One planned class: provenance label (a file path, or an
/// `archive!/entry` chain), content hash, and how to re-fetch the bytes.
struct JobEntry {
    label: String,
    hash: u64,
    source: BlobSource,
}

/// The three cache keys derived from one job's input and options.
struct JobKeys {
    cpg: u64,
    chains: u64,
    component: u64,
}

/// Walks the requested paths through the shared input classifier
/// ([`collect_inputs`]) into a [`JobInput`]. Archives — jars, wars,
/// nested fat jars — are exploded by the ingest planner and their entries
/// hashed in one bounded streaming pass, so the daemon's content key
/// covers archive entries exactly like loose files. `no_archives`
/// restores the legacy pre-ingestion rejection. An input with nothing
/// scannable at all is an error, as is a hostile archive (zip-slip,
/// compression-ratio / total-size / depth bombs, bad CRCs) — rejected
/// here with a structured message, before anything touches a cache tier.
fn collect_and_hash(paths: &[String], no_archives: bool) -> Result<JobInput, String> {
    let path_bufs: Vec<PathBuf> = paths.iter().map(PathBuf::from).collect();
    let inputs = collect_inputs(&path_bufs, true)?;
    if no_archives && !inputs.archives.is_empty() {
        return Err(archives_unsupported_error(&inputs.archives));
    }
    if inputs.is_empty() {
        return Err(format!(
            "no .class files or archives found under the given paths: {}",
            paths.join(", ")
        ));
    }
    let limits = IngestLimits::default();
    let plan = plan_corpus(&inputs, &limits).map_err(|e| e.to_string())?;
    let mut reader = CorpusReader::new(limits);
    let mut entries = Vec::with_capacity(plan.entries.len());
    for planned in plan.entries {
        // Fetch, hash, drop: one entry's bytes in memory at a time.
        let bytes = reader.fetch(&planned.source).map_err(|e| e.to_string())?;
        entries.push(JobEntry {
            label: planned.display,
            hash: content_hash64(&bytes),
            source: planned.source,
        });
    }
    let mut content: Vec<u64> = entries.iter().map(|e| e.hash).collect();
    content.sort_unstable();
    content.dedup();
    Ok(JobInput {
        entries,
        content,
        shadowed: plan.shadowed,
    })
}

/// Remaps the previous scan's summaries into the new program, keeping only
/// methods of *clean* classes — classes whose bytes are unchanged and whose
/// reverse-dependency cone contains no changed, added, or removed class.
fn remap_clean_summaries(
    state: &ComponentState,
    program: &Program,
    new_hashes: &HashMap<String, u64>,
) -> HashMap<MethodId, MethodSummary> {
    // Changed or added classes are dirty by name; removed classes inject
    // their name so anything referencing them goes dirty too.
    let mut dirty: HashSet<&str> = HashSet::new();
    for (fqcn, h) in new_hashes {
        match state.class_hashes.get(fqcn) {
            Some(old) if old == h => {}
            _ => {
                dirty.insert(fqcn.as_str());
            }
        }
    }
    for fqcn in state.class_hashes.keys() {
        if !new_hashes.contains_key(fqcn) {
            dirty.insert(fqcn.as_str());
        }
    }
    if dirty.is_empty() {
        // Nothing changed: still remap (ClassIds may differ if paths moved).
    }
    // Per-class referenced names in the new program: superclass,
    // interfaces, and every call site's symbolic class.
    let refs: Vec<(&str, HashSet<&str>)> = program
        .classes()
        .iter()
        .map(|c| {
            let mut r: HashSet<&str> = HashSet::new();
            if let Some(s) = c.superclass {
                r.insert(program.name(s));
            }
            for i in &c.interfaces {
                r.insert(program.name(*i));
            }
            for m in &c.methods {
                if let Some(body) = &m.body {
                    for stmt in &body.stmts {
                        if let Some(inv) = stmt.invoke() {
                            r.insert(program.name(inv.callee.class));
                        }
                    }
                }
            }
            (program.name(c.name), r)
        })
        .collect();
    // Transitive closure: referencing a dirty name makes a class dirty.
    loop {
        let mut changed = false;
        for (name, r) in &refs {
            if !dirty.contains(name) && r.iter().any(|n| dirty.contains(n)) {
                dirty.insert(name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Remap clean classes' summaries: old ClassId → name symbol → new
    // ClassId. Method indices are stable because the class bytes are.
    let remap_class = |old: ClassId| -> Option<ClassId> {
        let sym = *state.class_order.get(old.index())?;
        program.class_by_name(sym)
    };
    let mut seed = HashMap::new();
    for (old_id, summary) in &state.summaries {
        let Some(new_class) = remap_class(old_id.class) else {
            continue;
        };
        if dirty.contains(program.name(program.class(new_class).name)) {
            continue;
        }
        if (old_id.index as usize) >= program.class(new_class).methods.len() {
            continue;
        }
        let mut s = summary.clone();
        let mut ok = true;
        for call in &mut s.calls {
            if let Some(r) = call.resolved {
                match remap_class(r.class) {
                    Some(nc) => {
                        call.resolved = Some(MethodId {
                            class: nc,
                            index: r.index,
                        })
                    }
                    // A resolved target vanished: the caller should have
                    // been dirtied; recompute it defensively.
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            seed.insert(
                MethodId {
                    class: new_class,
                    index: old_id.index,
                },
                s,
            );
        }
    }
    seed
}

fn ms_since(t: Instant) -> u64 {
    t.elapsed().as_millis() as u64
}

fn check_deadline(deadline: Instant, phase: &str) -> Result<(), String> {
    if Instant::now() >= deadline {
        Err(format!("job timed out during {phase}"))
    } else {
        Ok(())
    }
}

/// The `sleep:<ms>` injected fault: stalls the job in small slices so its
/// deadline still cuts it short with the structured timeout error instead
/// of an unkillable hang.
fn sleep_fault(total_ms: u64, deadline: Instant) -> Result<(), String> {
    let end = Instant::now() + Duration::from_millis(total_ms);
    while Instant::now() < end {
        check_deadline(deadline, "injected sleep")?;
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::time::Duration;
    use tabby_ir::{compile::compile_program, JType, ProgramBuilder};

    /// `t.A.m1 → t.B.m1 → t.C.m1`, plus `t.A.m2` (uncalled).
    /// `with_extra` adds a method to `t.A`, changing only A's bytes.
    fn corpus(with_extra: bool) -> Program {
        let mut pb = ProgramBuilder::new();
        for (class, callee) in [("t.A", Some("t.B")), ("t.B", Some("t.C")), ("t.C", None)] {
            let mut cb = pb.class(class);
            cb.serializable_in_place();
            let obj = cb.object_type("java.lang.Object");
            let mut mb = cb.method("m1", vec![obj.clone()], JType::Void);
            let p0 = mb.param(0);
            if let Some(peer) = callee {
                let sig = mb.sig(peer, "m1", &[obj.clone()], JType::Void);
                let v = mb.fresh();
                mb.copy(v, p0);
                let recv = mb.fresh();
                mb.new_with_ctor(recv, peer, &[], &[]);
                mb.call_virtual(None, recv, sig, &[v.into()]);
            }
            mb.ret_void();
            mb.finish();
            if class == "t.A" {
                let mut m2 = cb.method("m2", vec![], JType::Void);
                m2.nop();
                m2.ret_void();
                m2.finish();
                if with_extra {
                    let mut m3 = cb.method("m3", vec![], JType::Void);
                    m3.nop();
                    m3.ret_void();
                    m3.finish();
                }
            }
            cb.finish();
        }
        pb.build()
    }

    fn write_corpus(dir: &Path, with_extra: bool) {
        std::fs::create_dir_all(dir).unwrap();
        for (name, bytes) in compile_program(&corpus(with_extra)) {
            std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabby-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(300)
    }

    fn scan(engine: &Engine, dir: &Path) -> JobOutcome {
        engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("scan succeeds")
    }

    #[test]
    fn warm_rescan_is_a_job_cache_hit() {
        let dir = temp_dir("warm");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let cold = scan(&engine, &dir);
        assert!(!cold.stats.job_cache_hit);
        assert_eq!(cold.stats.classes, 3);
        assert_eq!(cold.stats.classes_lifted, 3);
        assert_eq!(cold.stats.methods_summarized, cold.stats.methods);
        // The wave scheduler computed each summary exactly once, and its
        // own accounting agrees with the cache-delta accounting.
        assert_eq!(cold.stats.summaries_computed, cold.stats.methods);
        assert!(cold.stats.summarize_waves > 0);
        let warm = scan(&engine, &dir);
        assert!(warm.stats.job_cache_hit);
        assert_eq!(warm.stats.cache_hit_ratio, 1.0);
        assert_eq!(warm.chains, cold.chains);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hit_returns_byte_identical_chains() {
        let dir = temp_dir("bytes");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let cold = scan(&engine, &dir);
        let cold_json = serde_json::to_string(&cold.chains).unwrap();
        // The warm rescan serves tier 1 (chain cache); a multi-threaded
        // memo-less rescan with `fresh` recomputes from scratch. All three
        // must serialize to the same bytes: chains are stored and returned
        // in canonical order, never re-sorted differently per path.
        let warm = scan(&engine, &dir);
        assert!(warm.stats.job_cache_hit);
        assert_eq!(serde_json::to_string(&warm.chains).unwrap(), cold_json);
        let recomputed = engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &ScanRequestOptions {
                    fresh: true,
                    search_threads: Some(4),
                    tc_memo: false,
                    ..ScanRequestOptions::default()
                },
                far_deadline(),
            )
            .expect("fresh rescan succeeds");
        assert!(!recomputed.stats.job_cache_hit);
        assert_eq!(
            serde_json::to_string(&recomputed.chains).unwrap(),
            cold_json
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_class_change_resummarizes_only_its_cone() {
        let dir = temp_dir("incr");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let cold = scan(&engine, &dir);
        // Adding a method to t.A changes only A's bytes; B and C are clean
        // and nothing references A, so only A's methods recompute.
        write_corpus(&dir, true);
        let incr = scan(&engine, &dir);
        assert!(!incr.stats.job_cache_hit);
        assert_eq!(incr.stats.classes, 3);
        assert_eq!(incr.stats.classes_lifted, 1, "only t.A re-lifted");
        assert_eq!(incr.stats.methods, cold.stats.methods + 1);
        assert_eq!(incr.stats.methods_summarized, 3, "t.A's m1, m2, m3");
        assert_eq!(
            incr.stats.summaries_computed, 3,
            "only the dirty cone is re-run"
        );
        assert!(incr.stats.cache_hit_ratio > 0.0);
        assert_eq!(incr.chains, cold.chains);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changing_a_callee_dirties_its_callers() {
        let dir = temp_dir("cone");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        scan(&engine, &dir);
        // Rewrite t.C (same shape, but force different bytes by adding a
        // method): C dirty → B references C → A references B: all dirty.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        cb.serializable_in_place();
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m1", vec![obj.clone()], JType::Void);
        mb.nop();
        mb.ret_void();
        mb.finish();
        let mut extra = cb.method("m9", vec![], JType::Void);
        extra.ret_void();
        extra.finish();
        cb.finish();
        let bytes = &compile_program(&pb.build())[0].1;
        std::fs::write(dir.join("t.C.class"), bytes).unwrap();
        let incr = scan(&engine, &dir);
        // A.m1→B, B.m1→C are in the cone; only A.m2 stays clean.
        assert_eq!(incr.stats.methods_summarized, incr.stats.methods - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonexistent_path_is_an_error() {
        let engine = Engine::new(None, 8, 1);
        let err = engine
            .run_scan(
                &["/no/such/path".to_owned()],
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .unwrap_err();
        assert!(err.contains("/no/such/path"), "{err}");
    }

    #[test]
    fn corrupt_class_is_quarantined_and_the_scan_continues() {
        let dir = temp_dir("quarantine");
        write_corpus(&dir, false);
        std::fs::write(dir.join("t.B.class"), b"\xCA\xFE\xBA\xBEgarbage").unwrap();
        let engine = Engine::new(None, 8, 1);
        let outcome = scan(&engine, &dir);
        assert_eq!(outcome.diagnostics.skipped_classes.len(), 1);
        let skipped = &outcome.diagnostics.skipped_classes[0];
        assert!(skipped.source.ends_with("t.B.class"), "{}", skipped.source);
        assert!(!skipped.error.is_empty());
        // The survivors still scan: t.A and t.C lift and summarize.
        assert_eq!(outcome.stats.classes, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_mode_fails_on_a_corrupt_class() {
        let dir = temp_dir("strict");
        write_corpus(&dir, false);
        std::fs::write(dir.join("t.B.class"), b"not a class file").unwrap();
        let engine = Engine::new(None, 8, 1);
        let err = engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &ScanRequestOptions {
                    strict: true,
                    ..ScanRequestOptions::default()
                },
                far_deadline(),
            )
            .unwrap_err();
        assert!(err.contains("t.B.class"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_method_fault_is_quarantined_and_bypasses_the_cache() {
        let dir = temp_dir("fault");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let clean = scan(&engine, &dir);
        // The faulty job must not read the clean job's cached chains …
        let faulty = engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &ScanRequestOptions {
                    inject_fault: Some("t.B.m1".to_owned()),
                    ..ScanRequestOptions::default()
                },
                far_deadline(),
            )
            .expect("fault is contained, not fatal");
        assert!(!faulty.stats.job_cache_hit);
        assert_eq!(faulty.diagnostics.quarantined_methods.len(), 1);
        assert!(faulty.diagnostics.quarantined_methods[0]
            .method
            .contains("t.B.m1"));
        // … and must not have poisoned it for the next clean job either.
        let warm = scan(&engine, &dir);
        assert!(warm.stats.job_cache_hit);
        assert!(warm.diagnostics.quarantined_methods.is_empty());
        assert_eq!(warm.chains, clean.chains);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jar_input_explains_unpacking() {
        let dir = temp_dir("jar");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("app.jar"), b"PK\x03\x04").unwrap();
        let engine = Engine::new(None, 8, 1);
        let no_archives = ScanRequestOptions {
            no_archives: true,
            ..ScanRequestOptions::default()
        };
        // With archive ingestion disabled, a directory holding only a jar
        // names the jar and says how to proceed instead of a bare "no
        // classes found".
        let err = engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &no_archives,
                far_deadline(),
            )
            .unwrap_err();
        assert!(
            err.contains("jars are unsupported and must be unpacked"),
            "{err}"
        );
        assert!(err.contains("app.jar"), "{err}");
        // Naming the jar directly gets the same guidance.
        let err = engine
            .run_scan(
                &[dir.join("app.jar").to_string_lossy().into_owned()],
                &no_archives,
                far_deadline(),
            )
            .unwrap_err();
        assert!(
            err.contains("jars are unsupported and must be unpacked"),
            "{err}"
        );
        // With ingestion enabled (the default), the truncated jar is a
        // structured archive error, not a "go unpack it" hint.
        let err = engine
            .run_scan(
                &[dir.join("app.jar").to_string_lossy().into_owned()],
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .unwrap_err();
        assert!(err.contains("end-of-central-directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jar_corpus_scans_identically_to_the_unpacked_tree() {
        let dir = temp_dir("jar-eq");
        let tree = dir.join("tree");
        write_corpus(&tree, false);
        let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
        for (name, bytes) in compile_program(&corpus(false)) {
            entries.push((format!("{name}.class"), bytes));
        }
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(n, b)| (n.as_str(), b.as_slice()))
            .collect();
        let jar_path = dir.join("app.jar");
        std::fs::write(&jar_path, tabby_ingest::zip::build_zip(&refs).unwrap()).unwrap();
        let engine = Engine::new(None, 8, 1);
        let from_tree = scan(&engine, &tree);
        let from_jar = engine
            .run_scan(
                &[jar_path.to_string_lossy().into_owned()],
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("jar scan succeeds");
        // Same bytes → same content key → the jar scan is a tier-1 hit with
        // byte-identical chains.
        assert!(from_jar.stats.job_cache_hit);
        assert_eq!(
            serde_json::to_string(&from_jar.chains).unwrap(),
            serde_json::to_string(&from_tree.chains).unwrap()
        );
        // A fresh engine produces the same chains from the jar alone.
        let cold = Engine::new(None, 8, 1)
            .run_scan(
                &[jar_path.to_string_lossy().into_owned()],
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("cold jar scan succeeds");
        assert_eq!(
            serde_json::to_string(&cold.chains).unwrap(),
            serde_json::to_string(&from_tree.chains).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_reuses_the_scan_cpg_cache() {
        let dir = temp_dir("query");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let paths = [dir.to_string_lossy().into_owned()];
        scan(&engine, &dir);
        // The scan populated the CPG cache; a default-options query over
        // the same bytes resolves it without re-analyzing anything.
        let out = engine
            .run_query(
                &paths,
                "MATCH (m:Method {NAME: \"m1\"}) RETURN m.CLASS_NAME",
                &QueryRequestOptions::default(),
                far_deadline(),
            )
            .expect("query succeeds");
        assert!(out.stats.cpg_cache_hit);
        assert_eq!(out.output.columns, vec!["m.CLASS_NAME"]);
        assert!(!out.output.truncated);
        let mut classes: Vec<String> = out
            .output
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        classes.sort();
        assert_eq!(classes, vec!["t.A", "t.B", "t.C"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_parse_error_is_rendered_with_a_caret() {
        let dir = temp_dir("query-err");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let err = engine
            .run_query(
                &[dir.to_string_lossy().into_owned()],
                "MATCH m RETURN m",
                &QueryRequestOptions::default(),
                far_deadline(),
            )
            .unwrap_err();
        assert!(err.starts_with("error: "), "{err}");
        assert!(err.contains('^'), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_registers_baseline_then_short_circuits_then_diffs() {
        let dir = temp_dir("diff");
        let reg = temp_dir("diff-reg");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let paths = [dir.to_string_lossy().into_owned()];
        let reg_root = reg.to_string_lossy().into_owned();
        // A plain scan first, so the diff's CPG resolution is a cache hit —
        // the diff verb rides the same content-addressed tiers.
        scan(&engine, &dir);
        let first = engine
            .run_diff(
                &paths,
                &reg_root,
                "demo",
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("baseline diff succeeds");
        assert!(first.diff.baseline);
        assert!(!first.diff.identical);
        assert_eq!(first.diff.new_ref, "demo@v1");
        assert!(first.diff.report.is_none());
        assert!(first.stats.cpg_cache_hit, "diff reuses the scan's CPG");
        // Unchanged content: nothing scanned, registered, or diffed.
        let same = engine
            .run_diff(
                &paths,
                &reg_root,
                "demo",
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("identical diff succeeds");
        assert!(same.diff.identical);
        assert_eq!(same.diff.new_ref, "demo@v1");
        // Changed content: v2 registered and compared against v1.
        write_corpus(&dir, true);
        let changed = engine
            .run_diff(
                &paths,
                &reg_root,
                "demo",
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("changed diff succeeds");
        assert!(!changed.diff.baseline);
        assert_eq!(changed.diff.old_ref.as_deref(), Some("demo@v1"));
        assert_eq!(changed.diff.new_ref, "demo@v2");
        let report = changed.diff.report.expect("report present");
        assert!(!report.identical);
        assert!(report.activated.is_empty(), "no chains in this corpus");
        // Versioned references are the CLI's job, not the daemon's.
        let err = engine
            .run_diff(
                &paths,
                &reg_root,
                "demo@v9",
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .unwrap_err();
        assert!(err.contains("bare corpus name"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&reg);
    }

    /// One serializable class with a real chain:
    /// `t.Evil.readObject` → `Runtime.exec(this.cmd)`.
    fn chainful_corpus() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.Evil");
        cb.serializable_in_place();
        let string = cb.object_type("java.lang.String");
        let ois = cb.object_type("java.io.ObjectInputStream");
        let runtime = cb.object_type("java.lang.Runtime");
        let process = cb.object_type("java.lang.Process");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![ois], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "t.Evil", "cmd", string.clone());
        let rt = mb.fresh();
        let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
        mb.call_static(Some(rt), get_rt, &[]);
        let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], process);
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.ret_void();
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn witness_tiers_apply_post_hoc_on_cache_hits() {
        use tabby_pathfinder::WitnessTier;
        let dir = temp_dir("witness");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in compile_program(&chainful_corpus()) {
            std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
        }
        let engine = Engine::new(None, 8, 1);
        let paths = [dir.to_string_lossy().into_owned()];
        let witness_opts = ScanRequestOptions {
            witness: true,
            ..ScanRequestOptions::default()
        };
        let cold = engine
            .run_scan(&paths, &witness_opts, far_deadline())
            .expect("witness scan succeeds");
        assert!(!cold.chains.is_empty(), "the planted chain is found");
        assert!(
            cold.chains
                .iter()
                .all(|c| c.tier == Some(WitnessTier::Witnessed)),
            "the planted chain executes to its sink: {:?}",
            cold.chains
        );
        assert_eq!(cold.diagnostics.chains_witnessed, cold.chains.len());
        // A plain scan shares the cache entry (the witness flag is not in
        // the job key) and comes back tier-free.
        let plain = engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect("plain scan succeeds");
        assert!(plain.stats.job_cache_hit);
        assert!(plain.chains.iter().all(|c| c.tier.is_none()));
        // A witness scan over the same cache hit re-tiers post-hoc and is
        // byte-identical to the cold witness scan.
        let warm = engine
            .run_scan(&paths, &witness_opts, far_deadline())
            .expect("warm witness scan succeeds");
        assert!(warm.stats.job_cache_hit);
        assert_eq!(
            serde_json::to_string(&warm.chains).unwrap(),
            serde_json::to_string(&cold.chains).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_times_out() {
        let dir = temp_dir("deadline");
        write_corpus(&dir, false);
        let engine = Engine::new(None, 8, 1);
        let err = engine
            .run_scan(
                &[dir.to_string_lossy().into_owned()],
                &ScanRequestOptions::default(),
                Instant::now() - Duration::from_secs(1),
            )
            .unwrap_err();
        assert!(err.contains("timed out"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
