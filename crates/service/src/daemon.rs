//! The TCP daemon: accept loop, worker pool, and graceful shutdown.
//!
//! Threading model:
//!
//! - the **accept loop** (the thread running [`Daemon::run`]) polls a
//!   nonblocking listener every 25 ms so it can notice shutdown promptly;
//! - each **connection** gets its own thread speaking the JSON-lines
//!   protocol synchronously (one reply per request, malformed lines get
//!   an error reply instead of a dropped connection);
//! - scan jobs go through one **bounded queue** drained by a fixed pool
//!   of worker threads; a full queue rejects the submission immediately
//!   with a `"queue full"` error rather than blocking the connection.
//!
//! Shutdown (SIGTERM/SIGINT, a `shutdown` request, or
//! [`DaemonHandle::stop`]) is graceful: the queue's sender is dropped so
//! workers drain everything already accepted, connection threads notice
//! the stop flag within one read timeout, and [`Daemon::run`] joins the
//! workers before returning.

use crate::engine::{DiffJobOutcome, Engine, JobOutcome, QueryOutcome};
use crate::protocol::{
    parse_request, DaemonInfo, QueryRequestOptions, Request, Response, ScanRequestOptions,
};
use crate::signal;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls of the nonblocking
/// listener (also the latency bound for noticing a shutdown request).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-read socket timeout on connection threads, so idle connections
/// still notice the stop flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration; every field has a sensible default.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, e.g. `127.0.0.1:7433` (port 0 picks an ephemeral
    /// port — query it via [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-job compute deadline (queue wait not included).
    pub job_timeout: Duration,
    /// Directory for persistent chain/CPG cache entries (`None` keeps the
    /// cache memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Per-job cache capacity (chain sets / CPGs / component states each;
    /// the per-class cache holds 1024× this).
    pub cache_capacity: usize,
    /// Threads used *within* one job's summarize phase. Defaults to 1:
    /// the daemon parallelizes across jobs, not within them.
    pub analysis_threads: usize,
    /// Default threads for one job's backwards chain search (`0` means one
    /// per CPU core; a request can override per job). Defaults to 1 for
    /// the same reason as `analysis_threads`.
    pub search_threads: usize,
    /// How often the watch thread re-fingerprints registered corpora
    /// (metadata only — no bytes are read until a change is seen).
    pub watch_poll: Duration,
    /// Per-client (peer IP) ceiling on jobs simultaneously queued or
    /// running; submissions beyond it get a `busy` rejection so one greedy
    /// client cannot monopolize the queue. Under multi-tenant pressure the
    /// *effective* cap is lower: each client is admitted at most its fair
    /// share of the queue (`queue_capacity / active clients`, floor 1).
    /// Watch-thread jobs are exempt.
    pub per_client_inflight: usize,
    /// Size budget in bytes for the on-disk artifact cache (`None` means
    /// unbounded); oldest entries are evicted once the total exceeds it.
    pub cache_budget_bytes: Option<u64>,
    /// Size budget in bytes for snapshot registries written by diff jobs
    /// (`None` means unbounded); enforced after each snapshot save with
    /// keep-latest and pin exemptions.
    pub registry_budget_bytes: Option<u64>,
    /// Byte budget for memory-mapped flat CPG artifacts kept open across
    /// jobs (`None` uses [`crate::cache::DEFAULT_MAP_BUDGET`], 1 GiB);
    /// the oldest mappings are dropped once the live total exceeds it.
    pub map_budget_bytes: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7433".to_owned(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 64,
            job_timeout: Duration::from_secs(300),
            cache_dir: None,
            cache_capacity: 32,
            analysis_threads: 1,
            search_threads: 1,
            watch_poll: Duration::from_millis(500),
            per_client_inflight: 8,
            cache_budget_bytes: None,
            registry_budget_bytes: None,
            map_budget_bytes: None,
        }
    }
}

/// What one queued job should do once a worker picks it up.
enum JobKind {
    Scan(ScanRequestOptions),
    Query {
        query: String,
        options: QueryRequestOptions,
    },
    Diff {
        registry: String,
        corpus: String,
        options: ScanRequestOptions,
    },
}

/// A finished job's payload, matching its [`JobKind`].
enum Outcome {
    Scan(JobOutcome),
    Query(QueryOutcome),
    Diff(DiffJobOutcome),
}

impl Outcome {
    fn stats_mut(&mut self) -> &mut crate::protocol::JobStats {
        match self {
            Outcome::Scan(o) => &mut o.stats,
            Outcome::Query(o) => &mut o.stats,
            Outcome::Diff(o) => &mut o.stats,
        }
    }
}

/// One queued job, carrying its reply channel.
struct Job {
    paths: Vec<String>,
    kind: JobKind,
    enqueued: Instant,
    reply: Sender<Result<Outcome, String>>,
    /// True for jobs the watch thread submitted (counted separately; their
    /// reply receiver is already dropped).
    watch: bool,
}

/// One corpus registered for watch-mode re-diffing.
struct WatchEntry {
    paths: Vec<String>,
    registry: String,
    corpus: String,
    options: ScanRequestOptions,
    /// Metadata fingerprint of the watched paths at last poll/submission.
    fingerprint: u64,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    engine: Engine,
    config: ServiceConfig,
    stop: AtomicBool,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    watch_diffs: AtomicU64,
    /// Total worker-side compute milliseconds across finished jobs; with
    /// `jobs_done + jobs_failed` it yields the average job latency that
    /// sizes the `retry_after_ms` hint on busy rejections.
    job_ms_total: AtomicU64,
    /// Jobs currently queued or running, per client IP — the basis of the
    /// `per_client_inflight` fairness cap.
    inflight: Mutex<HashMap<IpAddr, usize>>,
    watches: Mutex<Vec<WatchEntry>>,
    /// `None` once shutdown begins: dropping the sender is what lets
    /// workers drain the queue and exit.
    queue: Mutex<Option<Sender<Job>>>,
    started: Instant,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        *self.queue.lock().expect("queue poisoned") = None;
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs_rx: Receiver<Job>,
}

impl Daemon {
    /// Binds the listener and builds the engine, without accepting yet.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(config: ServiceConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = bounded(config.queue_capacity.max(1));
        let mut engine = Engine::new(
            config.cache_dir.clone(),
            config.cache_capacity,
            config.analysis_threads,
        )
        .with_search_threads(config.search_threads)
        .with_cache_budget(config.cache_budget_bytes)
        .with_registry_budget(config.registry_budget_bytes);
        if let Some(budget) = config.map_budget_bytes {
            engine = engine.with_map_budget(budget);
        }
        let shared = Arc::new(Shared {
            engine,
            config,
            stop: AtomicBool::new(false),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            watch_diffs: AtomicU64::new(0),
            job_ms_total: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            watches: Mutex::new(Vec::new()),
            queue: Mutex::new(Some(tx)),
            started: Instant::now(),
        });
        Ok(Daemon {
            listener,
            shared,
            jobs_rx: rx,
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon on the calling thread until shutdown, then drains
    /// in-flight jobs and joins the workers.
    pub fn run(self) {
        let Daemon {
            listener,
            shared,
            jobs_rx,
        } = self;
        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            let rx = jobs_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tabby-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker thread");
            workers.push(handle);
        }
        drop(jobs_rx);
        let watcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tabby-watch".to_owned())
                .spawn(move || watch_loop(&shared))
                .expect("spawn watch thread")
        };
        loop {
            if shared.stop.load(Ordering::SeqCst) || signal::termination_requested() {
                shared.begin_shutdown();
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("tabby-conn".to_owned())
                        .spawn(move || {
                            // Accepted sockets must poll, not block, so the
                            // thread can notice shutdown while idle.
                            let _ = stream.set_nonblocking(false);
                            handle_conn(&shared, stream);
                        });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        let _ = watcher.join();
        for w in workers {
            let _ = w.join();
        }
    }

    /// Spawns the daemon on a background thread and returns a handle —
    /// the form the integration tests and benchmarks use.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Daemon::bind`].
    pub fn spawn(config: ServiceConfig) -> std::io::Result<DaemonHandle> {
        let daemon = Daemon::bind(config)?;
        let addr = daemon.local_addr()?;
        let shared = Arc::clone(&daemon.shared);
        let thread = std::thread::Builder::new()
            .name("tabby-daemon".to_owned())
            .spawn(move || daemon.run())?;
        Ok(DaemonHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// Handle to a daemon spawned with [`Daemon::spawn`].
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the daemon (including in-flight
    /// jobs) to finish.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    // `recv` on a disconnected-and-empty channel errors, so workers
    // naturally drain whatever was accepted before shutdown.
    while let Ok(job) = rx.recv() {
        let queue_ms = job.enqueued.elapsed().as_millis() as u64;
        let compute_started = Instant::now();
        let deadline = compute_started + shared.config.job_timeout;
        let Job {
            paths,
            kind,
            reply,
            watch,
            ..
        } = job;
        // One job panicking must not take the worker (and with it a slot of
        // the pool) down: contain it, report a structured error, move on.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &kind {
            JobKind::Scan(options) => shared
                .engine
                .run_scan(&paths, options, deadline)
                .map(Outcome::Scan),
            JobKind::Query { query, options } => shared
                .engine
                .run_query(&paths, query, options, deadline)
                .map(Outcome::Query),
            JobKind::Diff {
                registry,
                corpus,
                options,
            } => shared
                .engine
                .run_diff(&paths, registry, corpus, options, deadline)
                .map(Outcome::Diff),
        }));
        shared.job_ms_total.fetch_add(
            compute_started.elapsed().as_millis() as u64,
            Ordering::Relaxed,
        );
        let result = match run {
            Ok(Ok(mut outcome)) => {
                let stats = outcome.stats_mut();
                stats.queue_ms = queue_ms;
                stats.total_ms += queue_ms;
                shared.jobs_done.fetch_add(1, Ordering::Relaxed);
                if watch {
                    shared.watch_diffs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(outcome)
            }
            Ok(Err(e)) => {
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(payload) => {
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                Err(format!("job panicked: {}", panic_message(payload.as_ref())))
            }
        };
        // A client that gave up (timeout, closed connection) is not an
        // error worth tearing the worker down for.
        let _ = reply.send(result);
    }
}

/// Metadata fingerprint of the `.class` files under `paths`: FNV-1a over
/// the sorted `(path, len, mtime)` triples. Cheap enough to poll — no file
/// contents are read — and any content change necessarily changes it
/// (writes bump mtime even when the length is preserved).
fn fs_fingerprint(paths: &[String]) -> u64 {
    use tabby_graph::Fnv64;
    fn walk(path: &std::path::Path, facts: &mut Vec<(String, u64, u64)>) {
        let Ok(meta) = std::fs::metadata(path) else {
            return;
        };
        if meta.is_dir() {
            let Ok(entries) = std::fs::read_dir(path) else {
                return;
            };
            for entry in entries.flatten() {
                walk(&entry.path(), facts);
            }
        } else if path.extension().is_some_and(|e| e == "class") {
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_nanos() as u64);
            facts.push((path.to_string_lossy().into_owned(), meta.len(), mtime));
        }
    }
    let mut facts = Vec::new();
    for p in paths {
        walk(std::path::Path::new(p), &mut facts);
    }
    facts.sort();
    let mut h = Fnv64::new();
    for (path, len, mtime) in &facts {
        h.write(path.as_bytes()).write_u64(*len).write_u64(*mtime);
    }
    h.write_u64(facts.len() as u64);
    h.finish()
}

/// Registers (or refreshes) a watch on `(registry, corpus)`. The stored
/// fingerprint is taken *now*, after the triggering diff job ran, so the
/// watch fires only on changes past this point.
fn register_watch(
    shared: &Shared,
    paths: Vec<String>,
    registry: String,
    corpus: String,
    options: ScanRequestOptions,
) {
    let fingerprint = fs_fingerprint(&paths);
    let mut watches = shared.watches.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = watches
        .iter_mut()
        .find(|w| w.registry == registry && w.corpus == corpus)
    {
        entry.paths = paths;
        entry.options = options;
        entry.fingerprint = fingerprint;
    } else {
        watches.push(WatchEntry {
            paths,
            registry,
            corpus,
            options,
            fingerprint,
        });
    }
}

/// The watch thread: every `watch_poll`, re-fingerprint each registered
/// corpus and submit an internal diff job (fire-and-forget, through the
/// same bounded queue and worker pool as client jobs) for each one whose
/// content changed. The engine's own identical-content short-circuit makes
/// a spurious wakeup cheap.
fn watch_loop(shared: &Shared) {
    let mut since_poll = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(ACCEPT_POLL);
        since_poll += ACCEPT_POLL;
        if since_poll < shared.config.watch_poll {
            continue;
        }
        since_poll = Duration::ZERO;
        let mut watches = shared.watches.lock().unwrap_or_else(|e| e.into_inner());
        for w in watches.iter_mut() {
            let fingerprint = fs_fingerprint(&w.paths);
            if fingerprint == w.fingerprint {
                continue;
            }
            let (reply_tx, _reply_rx) = bounded(1);
            let job = Job {
                paths: w.paths.clone(),
                kind: JobKind::Diff {
                    registry: w.registry.clone(),
                    corpus: w.corpus.clone(),
                    options: w.options.clone(),
                },
                enqueued: Instant::now(),
                reply: reply_tx,
                watch: true,
            };
            let sent = {
                let guard = shared.queue.lock().expect("queue poisoned");
                match guard.as_ref() {
                    Some(tx) => tx.try_send(job).is_ok(),
                    None => return,
                }
            };
            // Advance only once the job is queued: a full queue retries the
            // same change on the next poll instead of silently losing it.
            // (A duplicate submission is harmless either way — the engine's
            // identical-content short-circuit makes it a no-op.)
            if sent {
                w.fingerprint = fingerprint;
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            if respond(shared, peer, text, &mut stream).is_err() {
                return;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line, writing one reply line — or, for `query`,
/// a header line, one `{"row": [...]}` line per row, and a `{"done": ...}`
/// trailer, all on the same connection. Returns `Err` only on socket
/// failures (which end the connection).
fn respond(
    shared: &Shared,
    peer: Option<IpAddr>,
    line: &str,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return write_line(stream, &Response::failure(None, e)),
    };
    match req {
        Request::Ping { id } => write_line(stream, &Response::ack(id)),
        Request::Stats { id } => {
            let (cached_classes, cached_jobs, cached_cpgs) = shared.engine.cache_counts();
            let (artifacts_quarantined, artifact_write_failures, cache_disk_evictions) =
                shared.engine.persistence_stats();
            let (chain_cache_hits, chain_cache_misses, cpg_cache_hits, cpg_cache_misses) =
                shared.engine.cache_traffic();
            let (map_hits, map_misses, bytes_mapped, maps_evicted, open_maps) =
                shared.engine.map_stats();
            let watched_corpora = shared
                .watches
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len();
            let queue_depth = shared
                .queue
                .lock()
                .expect("queue poisoned")
                .as_ref()
                .map_or(0, Sender::len);
            write_line(
                stream,
                &Response::info(
                    id,
                    DaemonInfo {
                        uptime_ms: shared.started.elapsed().as_millis() as u64,
                        workers: shared.config.workers,
                        queue_capacity: shared.config.queue_capacity,
                        jobs_done: shared.jobs_done.load(Ordering::Relaxed),
                        jobs_failed: shared.jobs_failed.load(Ordering::Relaxed),
                        jobs_rejected: shared.jobs_rejected.load(Ordering::Relaxed),
                        cached_classes,
                        cached_jobs,
                        cached_cpgs,
                        watched_corpora,
                        watch_diffs: shared.watch_diffs.load(Ordering::Relaxed),
                        artifacts_quarantined,
                        artifact_write_failures,
                        cache_disk_evictions,
                        queue_depth,
                        chain_cache_hits,
                        chain_cache_misses,
                        cpg_cache_hits,
                        cpg_cache_misses,
                        map_hits,
                        map_misses,
                        bytes_mapped,
                        open_maps,
                        maps_evicted,
                        map_ages_ms: shared.engine.map_ages_ms(),
                        ns_per_expansion: shared.engine.ns_per_expansion(),
                    },
                ),
            )
        }
        Request::Shutdown { id } => {
            shared.begin_shutdown();
            write_line(stream, &Response::ack(id))
        }
        Request::Scan { id, paths, options } => {
            let reply = match submit_job(shared, peer, paths, JobKind::Scan(options)) {
                Ok(Outcome::Scan(out)) => {
                    Response::scan(id, out.chains, out.stats, out.diagnostics)
                }
                Ok(_) => Response::failure(id, "internal: job kind mismatch"),
                Err(rejection) => reject_reply(id, rejection),
            };
            write_line(stream, &reply)
        }
        Request::Diff {
            id,
            paths,
            registry,
            corpus,
            options,
            watch,
        } => {
            let reply = match submit_job(
                shared,
                peer,
                paths.clone(),
                JobKind::Diff {
                    registry: registry.clone(),
                    corpus: corpus.clone(),
                    options: options.clone(),
                },
            ) {
                Ok(Outcome::Diff(out)) => {
                    // Watches register only after a successful diff: a bad
                    // path or malformed corpus name must fail loudly once,
                    // not spin silently in the watch thread.
                    if watch {
                        register_watch(shared, paths, registry, corpus, options);
                    }
                    Response::diff_reply(id, out.diff, out.stats, out.diagnostics)
                }
                Ok(_) => Response::failure(id, "internal: job kind mismatch"),
                Err(rejection) => reject_reply(id, rejection),
            };
            write_line(stream, &reply)
        }
        Request::Query {
            id,
            paths,
            query,
            options,
        } => match submit_job(shared, peer, paths, JobKind::Query { query, options }) {
            Ok(Outcome::Query(out)) => {
                let header = Response::query_header(
                    id,
                    out.output.columns,
                    out.output.warnings,
                    out.output.anchor,
                    out.stats,
                );
                write_line(stream, &header)?;
                for row in &out.output.rows {
                    write_line(stream, &serde_json::json!({ "row": row }))?;
                }
                write_line(
                    stream,
                    &serde_json::json!({
                        "done": true,
                        "rows": out.output.rows.len(),
                        "truncated": out.output.truncated,
                        "expansions": out.output.expansions,
                    }),
                )
            }
            Ok(_) => write_line(
                stream,
                &Response::failure(id, "internal: job kind mismatch"),
            ),
            Err(rejection) => write_line(stream, &reject_reply(id, rejection)),
        },
    }
}

/// Why a submission did not produce an outcome.
enum Rejection {
    /// Load shedding (full queue or per-client cap): the daemon is healthy,
    /// the job was never admitted, and a retry after `retry_after_ms` is
    /// expected to succeed. Serialized via [`Response::busy`].
    Busy { error: String, retry_after_ms: u64 },
    /// A hard failure (job error, timeout, shutdown in progress).
    Failure(String),
}

/// Backoff hint for busy rejections: the observed average job compute
/// time — a proxy for how soon a queue slot frees — clamped to a sane
/// window. Before any job has finished there is nothing to observe, so a
/// modest fixed hint is used.
fn retry_hint(shared: &Shared) -> u64 {
    let finished =
        shared.jobs_done.load(Ordering::Relaxed) + shared.jobs_failed.load(Ordering::Relaxed);
    if finished == 0 {
        return 250;
    }
    (shared.job_ms_total.load(Ordering::Relaxed) / finished).clamp(100, 10_000)
}

/// RAII hold on one per-client in-flight slot; dropping it releases the
/// slot even on panic/early-return paths.
struct InflightSlot<'a> {
    shared: &'a Shared,
    peer: Option<IpAddr>,
}

impl<'a> InflightSlot<'a> {
    fn acquire(shared: &'a Shared, peer: Option<IpAddr>) -> Result<InflightSlot<'a>, Rejection> {
        let Some(ip) = peer else {
            // No peer address (shouldn't happen on TCP) — don't penalize.
            return Ok(InflightSlot { shared, peer: None });
        };
        let mut map = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        // Fair-share admission: the configured cap is a ceiling, but no
        // client is admitted beyond its share of the bounded queue split
        // across the clients currently holding slots. One tenant on an
        // idle daemon gets the full ceiling; many concurrent tenants
        // converge to an equal split (floor 1, so progress is always
        // possible).
        let active = map.len() + usize::from(!map.contains_key(&ip));
        let share = (shared.config.queue_capacity / active.max(1)).max(1);
        let cap = shared.config.per_client_inflight.max(1).min(share);
        let count = map.entry(ip).or_insert(0);
        if *count >= cap {
            drop(map);
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Busy {
                error: format!(
                    "client has {cap} jobs in flight (fair share of the queue \
                     across active clients)"
                ),
                retry_after_ms: retry_hint(shared),
            });
        }
        *count += 1;
        Ok(InflightSlot {
            shared,
            peer: Some(ip),
        })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        if let Some(ip) = self.peer {
            let mut map = self
                .shared
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(n) = map.get_mut(&ip) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    map.remove(&ip);
                }
            }
        }
    }
}

/// Enqueues one job and waits for its outcome; `Err` carries either a
/// structured busy rejection or the message for a `Response::failure`.
fn submit_job(
    shared: &Shared,
    peer: Option<IpAddr>,
    paths: Vec<String>,
    kind: JobKind,
) -> Result<Outcome, Rejection> {
    let _slot = InflightSlot::acquire(shared, peer)?;
    let (reply_tx, reply_rx) = bounded(1);
    let job = Job {
        paths,
        kind,
        enqueued: Instant::now(),
        reply: reply_tx,
        watch: false,
    };
    let sent = {
        let guard = shared.queue.lock().expect("queue poisoned");
        match guard.as_ref() {
            Some(tx) => tx.try_send(job),
            None => return Err(Rejection::Failure("daemon is shutting down".to_owned())),
        }
    };
    match sent {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Busy {
                error: "queue full".to_owned(),
                retry_after_ms: retry_hint(shared),
            });
        }
        Err(TrySendError::Disconnected(_)) => {
            return Err(Rejection::Failure("daemon is shutting down".to_owned()))
        }
    }
    // Grace beyond the job's own deadline so a worker-side timeout error
    // normally wins over this transport-level one.
    match reply_rx.recv_timeout(shared.config.job_timeout + Duration::from_millis(250)) {
        Ok(result) => result.map_err(Rejection::Failure),
        Err(_) => Err(Rejection::Failure("job timed out".to_owned())),
    }
}

/// Renders a [`Rejection`] as its wire reply.
fn reject_reply(id: Option<String>, rejection: Rejection) -> Response {
    match rejection {
        Rejection::Busy {
            error,
            retry_after_ms,
        } => Response::busy(id, error, retry_after_ms),
        Rejection::Failure(e) => Response::failure(id, e),
    }
}

fn write_line<T: serde::Serialize>(stream: &mut TcpStream, value: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_vec(value).map_err(std::io::Error::other)?;
    line.push(b'\n');
    stream.write_all(&line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn test_config() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_capacity: 4,
            job_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn ping_and_stats_round_trip() {
        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let pong = client::request(
            &addr,
            &Request::Ping {
                id: Some("p1".into()),
            },
        )
        .unwrap();
        assert!(pong.ok);
        assert_eq!(pong.id.as_deref(), Some("p1"));
        let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
        let daemon = stats.daemon.expect("daemon info");
        assert_eq!(daemon.workers, 1);
        assert_eq!(daemon.queue_capacity, 4);
        assert_eq!(daemon.queue_depth, 0, "idle daemon has an empty queue");
        assert_eq!(daemon.bytes_mapped, 0, "nothing mapped before any scan");
        assert_eq!(daemon.open_maps, 0);
        handle.stop();
    }

    #[test]
    fn repeat_scan_with_cold_memory_serves_from_the_flat_mapping() {
        use tabby_ir::compile::compile_program;
        use tabby_ir::{JType, ProgramBuilder};
        let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
        let dir = std::env::temp_dir().join(format!("tabby-daemon-map-{tag}"));
        let cache = std::env::temp_dir().join(format!("tabby-daemon-map-cache-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cache);
        std::fs::create_dir_all(&dir).unwrap();
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("m.A");
        cb.serializable_in_place();
        let mut mb = cb.method("m1", vec![], JType::Void);
        mb.ret_void();
        mb.finish();
        cb.finish();
        for (name, bytes) in compile_program(&pb.build()) {
            std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
        }
        let paths = vec![dir.to_string_lossy().into_owned()];

        // Daemon 1 scans cold and persists the flat artifact next to the
        // serde CPG.
        let mut config = test_config();
        config.cache_dir = Some(cache.clone());
        let handle = Daemon::spawn(config.clone()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let first = client::submit(&addr, paths.clone(), ScanRequestOptions::default()).unwrap();
        assert!(first.ok, "{:?}", first.error);
        let first_stats = first.stats.clone().unwrap();
        assert!(!first_stats.cpg_map_hit, "cold scan builds, not maps");
        handle.stop();

        // Daemon 2 shares only the disk cache (fresh memory). A scan at a
        // *different* depth misses the chain cache, then runs zero-copy
        // off the mapped flat artifact — same chains, no rebuild.
        let handle = Daemon::spawn(config).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let second = client::submit(
            &addr,
            paths,
            ScanRequestOptions {
                depth: 7,
                ..ScanRequestOptions::default()
            },
        )
        .unwrap();
        assert!(second.ok, "{:?}", second.error);
        let stats = second.stats.unwrap();
        assert!(stats.cpg_map_hit, "restart + new depth must hit the map");
        assert!(stats.map_bytes > 0, "mapped artifact has a size");
        assert_eq!(second.chains, first.chains, "mapped search is identical");
        let info = client::request(&addr, &Request::Stats { id: None }).unwrap();
        let daemon = info.daemon.unwrap();
        assert_eq!(daemon.open_maps, 1);
        assert!(daemon.bytes_mapped > 0);
        assert_eq!(daemon.map_ages_ms.len(), 1);
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cache);
    }

    #[test]
    fn malformed_line_gets_error_reply_and_connection_survives() {
        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"this is not json\n").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let reply: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("malformed"));
        // An unversioned (protocol v1) request is rejected with guidance …
        stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let reply: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("unversioned request"));
        // … a v2 (pre-diff) client gets the structured mismatch error …
        stream.write_all(b"{\"v\":2,\"cmd\":\"ping\"}\n").unwrap();
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let reply: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(!reply.ok);
        let error = reply.error.unwrap();
        assert!(error.contains("request is v2"), "{error}");
        assert!(error.contains("daemon speaks v6"), "{error}");
        // … and the same connection still works for a current-version one.
        stream.write_all(b"{\"v\":6,\"cmd\":\"ping\"}\n").unwrap();
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let reply: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(reply.ok);
        handle.stop();
    }

    #[test]
    fn query_round_trip_streams_rows() {
        use tabby_ir::compile::compile_program;
        use tabby_ir::{JType, ProgramBuilder};
        let dir = std::env::temp_dir().join(format!(
            "tabby-daemon-query-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("q.A");
        cb.serializable_in_place();
        let mut mb = cb.method("m1", vec![], JType::Void);
        mb.ret_void();
        mb.finish();
        cb.finish();
        for (name, bytes) in compile_program(&pb.build()) {
            std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
        }

        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let paths = vec![dir.to_string_lossy().into_owned()];
        let reply = client::query(
            &addr,
            paths.clone(),
            "MATCH (m:Method) RETURN m.NAME",
            &QueryRequestOptions::default(),
        )
        .unwrap();
        assert!(reply.header.ok, "{:?}", reply.header.error);
        assert_eq!(
            reply.header.columns.as_deref(),
            Some(&["m.NAME".to_owned()][..])
        );
        assert!(!reply.truncated);
        assert!(
            reply.rows.iter().any(|r| r[0] == serde_json::json!("m1")),
            "rows: {:?}",
            reply.rows
        );
        // A parse error comes back as a failure header; the daemon and the
        // connection both survive.
        let bad = client::query(
            &addr,
            paths,
            "MATCH m RETURN m",
            &QueryRequestOptions::default(),
        )
        .unwrap();
        assert!(!bad.header.ok);
        assert!(
            bad.header.error.unwrap().contains("error: "),
            "caret render"
        );
        assert!(bad.rows.is_empty());
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_bad_path_fails_without_killing_the_daemon() {
        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let reply = client::submit(
            &addr,
            vec!["/no/such/path".to_owned()],
            ScanRequestOptions::default(),
        )
        .unwrap();
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("/no/such/path"));
        let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
        assert_eq!(stats.daemon.unwrap().jobs_failed, 1);
        handle.stop();
    }

    #[test]
    fn injected_job_panic_gets_error_reply_and_daemon_survives() {
        use tabby_ir::compile::compile_program;
        use tabby_ir::{JType, ProgramBuilder};
        let dir = std::env::temp_dir().join(format!(
            "tabby-daemon-fault-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("f.A");
        cb.serializable_in_place();
        let mut mb = cb.method("m1", vec![], JType::Void);
        mb.ret_void();
        mb.finish();
        cb.finish();
        for (name, bytes) in compile_program(&pb.build()) {
            std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
        }

        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let paths = vec![dir.to_string_lossy().into_owned()];
        // Job 1: injected panic inside the job itself. The worker contains
        // it and the client gets a structured error, not a hung socket.
        let reply = client::submit(
            &addr,
            paths.clone(),
            ScanRequestOptions {
                inject_fault: Some("job".to_owned()),
                ..ScanRequestOptions::default()
            },
        )
        .unwrap();
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("job panicked"), "panic reply");
        // Job 2 on the same (single-worker) daemon still succeeds.
        let reply = client::submit(&addr, paths, ScanRequestOptions::default()).unwrap();
        assert!(reply.ok, "worker survived the panic: {:?}", reply.error);
        assert!(reply.diagnostics.is_none(), "clean scan has no diagnostics");
        let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
        let daemon = stats.daemon.unwrap();
        assert_eq!(daemon.jobs_failed, 1);
        assert_eq!(daemon.jobs_done, 1);
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_round_trip_and_watch_mode_rediffs_on_change() {
        use tabby_ir::compile::compile_program;
        use tabby_ir::{JType, ProgramBuilder};
        let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
        let dir = std::env::temp_dir().join(format!("tabby-daemon-watch-{tag}"));
        let reg = std::env::temp_dir().join(format!("tabby-daemon-watch-reg-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&reg);
        std::fs::create_dir_all(&dir).unwrap();
        let write_corpus = |with_extra: bool| {
            let mut pb = ProgramBuilder::new();
            let mut cb = pb.class("w.A");
            cb.serializable_in_place();
            let mut mb = cb.method("m1", vec![], JType::Void);
            mb.ret_void();
            mb.finish();
            if with_extra {
                let mut m2 = cb.method("m2", vec![], JType::Void);
                m2.ret_void();
                m2.finish();
            }
            cb.finish();
            for (name, bytes) in compile_program(&pb.build()) {
                std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
            }
        };
        write_corpus(false);
        let mut config = test_config();
        config.watch_poll = Duration::from_millis(50);
        let handle = Daemon::spawn(config).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let paths = vec![dir.to_string_lossy().into_owned()];
        let reg_root = reg.to_string_lossy().into_owned();
        let reply = client::diff(
            &addr,
            paths.clone(),
            &reg_root,
            "watched",
            true,
            ScanRequestOptions::default(),
        )
        .unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        let outcome = reply.diff.expect("diff payload");
        assert!(outcome.baseline);
        assert_eq!(outcome.new_ref, "watched@v1");
        let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
        assert_eq!(stats.daemon.unwrap().watched_corpora, 1);
        // Change the corpus on disk; the watch thread must notice and
        // register + diff v2 without any further client request.
        write_corpus(true);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
            if stats.daemon.unwrap().watch_diffs >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "watch diff never fired");
            std::thread::sleep(Duration::from_millis(50));
        }
        let registry = tabby_registry::Registry::open(&reg).unwrap();
        assert_eq!(registry.latest_version("watched"), Some(2));
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&reg);
    }

    #[test]
    fn per_client_inflight_cap_sheds_with_busy_and_retry_hint() {
        let mut config = test_config();
        config.workers = 0;
        config.queue_capacity = 4;
        config.per_client_inflight = 1;
        config.job_timeout = Duration::from_millis(300);
        let handle = Daemon::spawn(config).expect("spawn daemon");
        let addr = handle.addr().to_string();
        // With no workers, the first job holds this client's only
        // in-flight slot even though the queue has room for more.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let req = crate::protocol::encode_request(&crate::protocol::Request::Scan {
            id: Some("held".to_owned()),
            paths: vec!["/no/such/path".to_owned()],
            options: ScanRequestOptions::default(),
        })
        .unwrap();
        stream.write_all(format!("{req}\n").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // A second submission from the same client IP is shed with the
        // structured busy contract, not queued and not a hard failure.
        let shed = client::submit(
            &addr,
            vec!["/no/such/path".to_owned()],
            ScanRequestOptions::default(),
        )
        .unwrap();
        assert!(!shed.ok);
        assert!(shed.busy, "cap rejection must set busy: {shed:?}");
        assert!(shed.retry_after_ms.is_some(), "busy carries a hint");
        assert!(
            shed.error.as_deref().unwrap_or("").contains("in flight"),
            "{:?}",
            shed.error
        );
        // The held job's connection resolves (transport timeout), freeing
        // the slot; the same client is admitted again afterwards.
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let reply: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(!reply.ok);
        assert!(!reply.busy, "a timeout is a failure, not load shedding");
        let stats = client::request(&addr, &Request::Stats { id: None }).unwrap();
        assert_eq!(stats.daemon.unwrap().jobs_rejected, 1);
        handle.stop();
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let handle = Daemon::spawn(test_config()).expect("spawn daemon");
        let addr = handle.addr().to_string();
        let reply = client::request(&addr, &Request::Shutdown { id: None }).unwrap();
        assert!(reply.ok);
        // The run loop notices the flag within one accept poll.
        handle.stop();
    }
}
