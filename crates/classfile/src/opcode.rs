//! Bytecode decoding: raw `code[]` bytes to structured instructions.
//!
//! The decoder covers the full JVM instruction set (JVMS §6.5), collapsing
//! the per-type load/store/arith families into kind-parameterized variants
//! and resolving relative branch offsets into absolute code offsets. The
//! IR lifter in `tabby-ir` consumes this stream.

use crate::error::{ClassFileError, Result};
use crate::reader::Cursor;

/// The JVM computational-type kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kind {
    Int,
    Long,
    Float,
    Double,
    Ref,
    /// byte/boolean/char/short array accesses (collapse to Int values).
    Small,
}

impl Kind {
    /// Whether values of this kind take two stack slots.
    pub fn is_wide(self) -> bool {
        matches!(self, Kind::Long | Kind::Double)
    }
}

/// Arithmetic / bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Ushr,
    And,
    Or,
    Xor,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Gt,
    Le,
}

/// A decoded instruction. Branch targets are absolute code offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// `nop`.
    Nop,
    /// `aconst_null`.
    ConstNull,
    /// Integer constant (`iconst_*`, `bipush`, `sipush`).
    ConstInt(i32),
    /// Long constant (`lconst_*`).
    ConstLong(i64),
    /// Float constant (`fconst_*`).
    ConstFloat(f32),
    /// Double constant (`dconst_*`).
    ConstDouble(f64),
    /// `ldc` / `ldc_w` / `ldc2_w` — constant-pool load.
    Ldc(u16),
    /// Local load.
    Load(Kind, u16),
    /// Local store.
    Store(Kind, u16),
    /// Array element load.
    ArrayLoad(Kind),
    /// Array element store.
    ArrayStore(Kind),
    /// `pop`.
    Pop,
    /// `pop2`.
    Pop2,
    /// `dup`.
    Dup,
    /// `dup_x1`.
    DupX1,
    /// `dup_x2`.
    DupX2,
    /// `dup2`.
    Dup2,
    /// `dup2_x1`.
    Dup2X1,
    /// `dup2_x2`.
    Dup2X2,
    /// `swap`.
    Swap,
    /// Binary arithmetic.
    Arith(ArithOp, Kind),
    /// Numeric negation.
    Neg(Kind),
    /// `iinc`.
    Iinc(u16, i16),
    /// Numeric conversion (`i2l` … `i2s`), keeping the raw opcode.
    Convert(u8),
    /// `lcmp` / `fcmpl` / `fcmpg` / `dcmpl` / `dcmpg`.
    Cmp,
    /// `ifeq` … `ifle` — compare int with zero.
    IfZero(Cond, u32),
    /// `if_icmpeq` … `if_icmple`.
    IfICmp(Cond, u32),
    /// `if_acmpeq` / `if_acmpne`.
    IfACmp(Cond, u32),
    /// `ifnull`.
    IfNull(u32),
    /// `ifnonnull`.
    IfNonNull(u32),
    /// `goto` / `goto_w`.
    Goto(u32),
    /// `jsr` / `jsr_w` (obsolete subroutines).
    Jsr(u32),
    /// `ret`.
    Ret(u16),
    /// `tableswitch`.
    TableSwitch {
        /// Default target.
        default: u32,
        /// Lowest matched value.
        low: i32,
        /// Jump targets for `low..=high`.
        offsets: Vec<u32>,
    },
    /// `lookupswitch`.
    LookupSwitch {
        /// Default target.
        default: u32,
        /// `(match, target)` pairs.
        pairs: Vec<(i32, u32)>,
    },
    /// Typed `return` (None = `return` void).
    Return(Option<Kind>),
    /// `getstatic`.
    GetStatic(u16),
    /// `putstatic`.
    PutStatic(u16),
    /// `getfield`.
    GetField(u16),
    /// `putfield`.
    PutField(u16),
    /// `invokevirtual`.
    InvokeVirtual(u16),
    /// `invokespecial`.
    InvokeSpecial(u16),
    /// `invokestatic`.
    InvokeStatic(u16),
    /// `invokeinterface`.
    InvokeInterface(u16),
    /// `invokedynamic`.
    InvokeDynamic(u16),
    /// `new`.
    New(u16),
    /// `newarray` (primitive element tag).
    NewArray(u8),
    /// `anewarray`.
    ANewArray(u16),
    /// `arraylength`.
    ArrayLength,
    /// `athrow`.
    AThrow,
    /// `checkcast`.
    CheckCast(u16),
    /// `instanceof`.
    InstanceOf(u16),
    /// `monitorenter`.
    MonitorEnter,
    /// `monitorexit`.
    MonitorExit,
    /// `multianewarray`.
    MultiANewArray(u16, u8),
    /// `breakpoint` (reserved).
    Breakpoint,
}

/// Decodes `code` into `(offset, instruction)` pairs.
pub fn decode(code: &[u8]) -> Result<Vec<(u32, Insn)>> {
    let mut r = Cursor::new(code);
    let mut out = Vec::new();
    while !r.is_empty() {
        let at = r.position() as u32;
        let op = r.u8()?;
        let insn = decode_one(op, at, &mut r, code.len())?;
        out.push((at, insn));
    }
    Ok(out)
}

fn rel16(r: &mut Cursor<'_>, at: u32) -> Result<u32> {
    let off = r.u16()? as i16;
    Ok((at as i64 + i64::from(off)) as u32)
}

fn rel32(r: &mut Cursor<'_>, at: u32) -> Result<u32> {
    let off = r.i32()?;
    Ok((at as i64 + i64::from(off)) as u32)
}

#[allow(clippy::too_many_lines)]
fn decode_one(op: u8, at: u32, r: &mut Cursor<'_>, code_len: usize) -> Result<Insn> {
    use Kind::*;
    Ok(match op {
        0x00 => Insn::Nop,
        0x01 => Insn::ConstNull,
        0x02..=0x08 => Insn::ConstInt(i32::from(op) - 3),
        0x09 | 0x0a => Insn::ConstLong(i64::from(op - 0x09)),
        0x0b..=0x0d => Insn::ConstFloat(f32::from(op - 0x0b)),
        0x0e | 0x0f => Insn::ConstDouble(f64::from(op - 0x0e)),
        0x10 => Insn::ConstInt(i32::from(r.u8()? as i8)),
        0x11 => Insn::ConstInt(i32::from(r.u16()? as i16)),
        0x12 => Insn::Ldc(u16::from(r.u8()?)),
        0x13 | 0x14 => Insn::Ldc(r.u16()?),
        0x15 => Insn::Load(Int, u16::from(r.u8()?)),
        0x16 => Insn::Load(Long, u16::from(r.u8()?)),
        0x17 => Insn::Load(Float, u16::from(r.u8()?)),
        0x18 => Insn::Load(Double, u16::from(r.u8()?)),
        0x19 => Insn::Load(Ref, u16::from(r.u8()?)),
        0x1a..=0x1d => Insn::Load(Int, u16::from(op - 0x1a)),
        0x1e..=0x21 => Insn::Load(Long, u16::from(op - 0x1e)),
        0x22..=0x25 => Insn::Load(Float, u16::from(op - 0x22)),
        0x26..=0x29 => Insn::Load(Double, u16::from(op - 0x26)),
        0x2a..=0x2d => Insn::Load(Ref, u16::from(op - 0x2a)),
        0x2e => Insn::ArrayLoad(Int),
        0x2f => Insn::ArrayLoad(Long),
        0x30 => Insn::ArrayLoad(Float),
        0x31 => Insn::ArrayLoad(Double),
        0x32 => Insn::ArrayLoad(Ref),
        0x33..=0x35 => Insn::ArrayLoad(Small),
        0x36 => Insn::Store(Int, u16::from(r.u8()?)),
        0x37 => Insn::Store(Long, u16::from(r.u8()?)),
        0x38 => Insn::Store(Float, u16::from(r.u8()?)),
        0x39 => Insn::Store(Double, u16::from(r.u8()?)),
        0x3a => Insn::Store(Ref, u16::from(r.u8()?)),
        0x3b..=0x3e => Insn::Store(Int, u16::from(op - 0x3b)),
        0x3f..=0x42 => Insn::Store(Long, u16::from(op - 0x3f)),
        0x43..=0x46 => Insn::Store(Float, u16::from(op - 0x43)),
        0x47..=0x4a => Insn::Store(Double, u16::from(op - 0x47)),
        0x4b..=0x4e => Insn::Store(Ref, u16::from(op - 0x4b)),
        0x4f => Insn::ArrayStore(Int),
        0x50 => Insn::ArrayStore(Long),
        0x51 => Insn::ArrayStore(Float),
        0x52 => Insn::ArrayStore(Double),
        0x53 => Insn::ArrayStore(Ref),
        0x54..=0x56 => Insn::ArrayStore(Small),
        0x57 => Insn::Pop,
        0x58 => Insn::Pop2,
        0x59 => Insn::Dup,
        0x5a => Insn::DupX1,
        0x5b => Insn::DupX2,
        0x5c => Insn::Dup2,
        0x5d => Insn::Dup2X1,
        0x5e => Insn::Dup2X2,
        0x5f => Insn::Swap,
        0x60..=0x63 => Insn::Arith(
            ArithOp::Add,
            [Int, Long, Float, Double][(op - 0x60) as usize],
        ),
        0x64..=0x67 => Insn::Arith(
            ArithOp::Sub,
            [Int, Long, Float, Double][(op - 0x64) as usize],
        ),
        0x68..=0x6b => Insn::Arith(
            ArithOp::Mul,
            [Int, Long, Float, Double][(op - 0x68) as usize],
        ),
        0x6c..=0x6f => Insn::Arith(
            ArithOp::Div,
            [Int, Long, Float, Double][(op - 0x6c) as usize],
        ),
        0x70..=0x73 => Insn::Arith(
            ArithOp::Rem,
            [Int, Long, Float, Double][(op - 0x70) as usize],
        ),
        0x74..=0x77 => Insn::Neg([Int, Long, Float, Double][(op - 0x74) as usize]),
        0x78 | 0x79 => Insn::Arith(ArithOp::Shl, [Int, Long][(op - 0x78) as usize]),
        0x7a | 0x7b => Insn::Arith(ArithOp::Shr, [Int, Long][(op - 0x7a) as usize]),
        0x7c | 0x7d => Insn::Arith(ArithOp::Ushr, [Int, Long][(op - 0x7c) as usize]),
        0x7e | 0x7f => Insn::Arith(ArithOp::And, [Int, Long][(op - 0x7e) as usize]),
        0x80 | 0x81 => Insn::Arith(ArithOp::Or, [Int, Long][(op - 0x80) as usize]),
        0x82 | 0x83 => Insn::Arith(ArithOp::Xor, [Int, Long][(op - 0x82) as usize]),
        0x84 => Insn::Iinc(u16::from(r.u8()?), i16::from(r.u8()? as i8)),
        0x85..=0x93 => Insn::Convert(op),
        0x94..=0x98 => Insn::Cmp,
        0x99..=0x9e => Insn::IfZero(
            [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le][(op - 0x99) as usize],
            rel16(r, at)?,
        ),
        0x9f..=0xa4 => Insn::IfICmp(
            [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le][(op - 0x9f) as usize],
            rel16(r, at)?,
        ),
        0xa5 => Insn::IfACmp(Cond::Eq, rel16(r, at)?),
        0xa6 => Insn::IfACmp(Cond::Ne, rel16(r, at)?),
        0xa7 => Insn::Goto(rel16(r, at)?),
        0xa8 => Insn::Jsr(rel16(r, at)?),
        0xa9 => Insn::Ret(u16::from(r.u8()?)),
        0xaa => {
            // tableswitch: skip padding to a 4-byte boundary.
            while r.position() % 4 != 0 {
                r.u8()?;
            }
            let default = rel32(r, at)?;
            let low = r.i32()?;
            let high = r.i32()?;
            if high < low {
                return Err(ClassFileError::at(r.position(), "tableswitch high < low"));
            }
            let n = (i64::from(high) - i64::from(low) + 1) as usize;
            if n > code_len {
                return Err(ClassFileError::at(r.position(), "tableswitch too large"));
            }
            let mut offsets = Vec::with_capacity(n);
            for _ in 0..n {
                offsets.push(rel32(r, at)?);
            }
            Insn::TableSwitch {
                default,
                low,
                offsets,
            }
        }
        0xab => {
            while r.position() % 4 != 0 {
                r.u8()?;
            }
            let default = rel32(r, at)?;
            let n = r.i32()?;
            if n < 0 || n as usize > code_len {
                return Err(ClassFileError::at(r.position(), "lookupswitch too large"));
            }
            let mut pairs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let k = r.i32()?;
                pairs.push((k, rel32(r, at)?));
            }
            Insn::LookupSwitch { default, pairs }
        }
        0xac => Insn::Return(Some(Int)),
        0xad => Insn::Return(Some(Long)),
        0xae => Insn::Return(Some(Float)),
        0xaf => Insn::Return(Some(Double)),
        0xb0 => Insn::Return(Some(Ref)),
        0xb1 => Insn::Return(None),
        0xb2 => Insn::GetStatic(r.u16()?),
        0xb3 => Insn::PutStatic(r.u16()?),
        0xb4 => Insn::GetField(r.u16()?),
        0xb5 => Insn::PutField(r.u16()?),
        0xb6 => Insn::InvokeVirtual(r.u16()?),
        0xb7 => Insn::InvokeSpecial(r.u16()?),
        0xb8 => Insn::InvokeStatic(r.u16()?),
        0xb9 => {
            let index = r.u16()?;
            let _count = r.u8()?;
            let _zero = r.u8()?;
            Insn::InvokeInterface(index)
        }
        0xba => {
            let index = r.u16()?;
            let _zero = r.u16()?;
            Insn::InvokeDynamic(index)
        }
        0xbb => Insn::New(r.u16()?),
        0xbc => Insn::NewArray(r.u8()?),
        0xbd => Insn::ANewArray(r.u16()?),
        0xbe => Insn::ArrayLength,
        0xbf => Insn::AThrow,
        0xc0 => Insn::CheckCast(r.u16()?),
        0xc1 => Insn::InstanceOf(r.u16()?),
        0xc2 => Insn::MonitorEnter,
        0xc3 => Insn::MonitorExit,
        0xc4 => {
            // wide
            let inner = r.u8()?;
            let index = r.u16()?;
            match inner {
                0x15 => Insn::Load(Int, index),
                0x16 => Insn::Load(Long, index),
                0x17 => Insn::Load(Float, index),
                0x18 => Insn::Load(Double, index),
                0x19 => Insn::Load(Ref, index),
                0x36 => Insn::Store(Int, index),
                0x37 => Insn::Store(Long, index),
                0x38 => Insn::Store(Float, index),
                0x39 => Insn::Store(Double, index),
                0x3a => Insn::Store(Ref, index),
                0x84 => Insn::Iinc(index, r.u16()? as i16),
                0xa9 => Insn::Ret(index),
                other => {
                    return Err(ClassFileError::at(
                        r.position(),
                        format!("invalid wide target {other:#04x}"),
                    ))
                }
            }
        }
        0xc5 => Insn::MultiANewArray(r.u16()?, r.u8()?),
        0xc6 => Insn::IfNull(rel16(r, at)?),
        0xc7 => Insn::IfNonNull(rel16(r, at)?),
        0xc8 => Insn::Goto(rel32(r, at)?),
        0xc9 => Insn::Jsr(rel32(r, at)?),
        0xca => Insn::Breakpoint,
        other => {
            return Err(ClassFileError::at(
                at as usize,
                format!("unknown opcode {other:#04x}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_simple_sequence() {
        // aload_0; iconst_1; istore_1; return
        let code = [0x2a, 0x04, 0x3c, 0xb1];
        let insns = decode(&code).unwrap();
        assert_eq!(
            insns,
            vec![
                (0, Insn::Load(Kind::Ref, 0)),
                (1, Insn::ConstInt(1)),
                (2, Insn::Store(Kind::Int, 1)),
                (3, Insn::Return(None)),
            ]
        );
    }

    #[test]
    fn decodes_branches_to_absolute_offsets() {
        // 0: iload_1; 1: ifeq +5 (-> 6); 4: nop; 5: nop; 6: return
        let code = [0x1b, 0x99, 0x00, 0x05, 0x00, 0x00, 0xb1];
        let insns = decode(&code).unwrap();
        assert_eq!(insns[1].1, Insn::IfZero(Cond::Eq, 6));
    }

    #[test]
    fn decodes_tableswitch_with_padding() {
        // 0: tableswitch (1 byte opcode + 3 pad) default->16 low=1 high=2
        let mut code = vec![0xaa, 0, 0, 0];
        code.extend_from_slice(&16i32.to_be_bytes());
        code.extend_from_slice(&1i32.to_be_bytes());
        code.extend_from_slice(&2i32.to_be_bytes());
        code.extend_from_slice(&20i32.to_be_bytes());
        code.extend_from_slice(&24i32.to_be_bytes());
        let insns = decode(&code).unwrap();
        match &insns[0].1 {
            Insn::TableSwitch {
                default,
                low,
                offsets,
            } => {
                assert_eq!(*default, 16);
                assert_eq!(*low, 1);
                assert_eq!(offsets, &[20, 24]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decodes_wide_forms() {
        // wide iload 300; wide iinc 300 -2
        let mut code = vec![0xc4, 0x15];
        code.extend_from_slice(&300u16.to_be_bytes());
        code.push(0xc4);
        code.push(0x84);
        code.extend_from_slice(&300u16.to_be_bytes());
        code.extend_from_slice(&(-2i16 as u16).to_be_bytes());
        let insns = decode(&code).unwrap();
        assert_eq!(insns[0].1, Insn::Load(Kind::Int, 300));
        assert_eq!(insns[1].1, Insn::Iinc(300, -2));
    }

    #[test]
    fn rejects_unknown_opcode() {
        assert!(decode(&[0xff]).is_err());
    }

    #[test]
    fn rejects_truncated_operand() {
        assert!(decode(&[0xb6, 0x00]).is_err());
    }
}
