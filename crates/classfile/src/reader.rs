//! Parsing `.class` bytes into the object model.

use crate::constant_pool::{ConstantPool, CpInfo};
use crate::error::{ClassFileError, Result};
use crate::model::{AttributeInfo, ClassFile, MemberInfo, MAGIC};

/// A bounds-checked big-endian byte cursor.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| ClassFileError::at(self.pos, "length overflow"))?;
        if end > self.data.len() {
            return Err(ClassFileError::at(
                self.pos,
                format!("unexpected end of input (wanted {n} bytes)"),
            ));
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Parses a whole `.class` file.
pub fn parse_class(bytes: &[u8]) -> Result<ClassFile> {
    let mut r = Cursor::new(bytes);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(ClassFileError::at(0, format!("bad magic {magic:#010x}")));
    }
    let minor_version = r.u16()?;
    let major_version = r.u16()?;
    let constant_pool = parse_constant_pool(&mut r)?;
    let access_flags = r.u16()?;
    let this_class = r.u16()?;
    let super_class = r.u16()?;
    let interface_count = r.u16()? as usize;
    let mut interfaces = Vec::with_capacity(interface_count);
    for _ in 0..interface_count {
        interfaces.push(r.u16()?);
    }
    let fields = parse_members(&mut r)?;
    let methods = parse_members(&mut r)?;
    let attributes = parse_attributes(&mut r)?;
    if !r.is_empty() {
        return Err(ClassFileError::at(r.position(), "trailing bytes"));
    }
    Ok(ClassFile {
        minor_version,
        major_version,
        constant_pool,
        access_flags,
        this_class,
        super_class,
        interfaces,
        fields,
        methods,
        attributes,
    })
}

fn parse_constant_pool(r: &mut Cursor<'_>) -> Result<ConstantPool> {
    let count = r.u16()?;
    let mut cp = ConstantPool::new();
    while cp.count() < count {
        let tag = r.u8()?;
        let info = match tag {
            1 => {
                let len = r.u16()? as usize;
                let raw = r.bytes(len)?;
                // Modified UTF-8: decode the common subset (no embedded
                // NULs or surrogates in names we produce); fall back to
                // lossy decoding for exotic input.
                CpInfo::Utf8(decode_modified_utf8(raw))
            }
            3 => CpInfo::Integer(r.i32()?),
            4 => CpInfo::Float(f32::from_bits(r.u32()?)),
            5 => CpInfo::Long(r.u64()? as i64),
            6 => CpInfo::Double(f64::from_bits(r.u64()?)),
            7 => CpInfo::Class(r.u16()?),
            8 => CpInfo::Str(r.u16()?),
            9 => CpInfo::FieldRef(r.u16()?, r.u16()?),
            10 => CpInfo::MethodRef(r.u16()?, r.u16()?),
            11 => CpInfo::InterfaceMethodRef(r.u16()?, r.u16()?),
            12 => CpInfo::NameAndType(r.u16()?, r.u16()?),
            15 => CpInfo::MethodHandle(r.u8()?, r.u16()?),
            16 => CpInfo::MethodType(r.u16()?),
            18 => CpInfo::InvokeDynamic(r.u16()?, r.u16()?),
            other => {
                return Err(ClassFileError::at(
                    r.position(),
                    format!("unknown constant tag {other}"),
                ))
            }
        };
        cp.push_raw(info);
    }
    Ok(cp)
}

fn parse_members(r: &mut Cursor<'_>) -> Result<Vec<MemberInfo>> {
    let count = r.u16()? as usize;
    let mut members = Vec::with_capacity(count);
    for _ in 0..count {
        let access_flags = r.u16()?;
        let name_index = r.u16()?;
        let descriptor_index = r.u16()?;
        let attributes = parse_attributes(r)?;
        members.push(MemberInfo {
            access_flags,
            name_index,
            descriptor_index,
            attributes,
        });
    }
    Ok(members)
}

fn parse_attributes(r: &mut Cursor<'_>) -> Result<Vec<AttributeInfo>> {
    let count = r.u16()? as usize;
    let mut attributes = Vec::with_capacity(count);
    for _ in 0..count {
        let name_index = r.u16()?;
        let len = r.u32()? as usize;
        attributes.push(AttributeInfo {
            name_index,
            info: r.bytes(len)?.to_vec(),
        });
    }
    Ok(attributes)
}

/// Decodes JVM modified UTF-8 (handles the two-byte NUL encoding; six-byte
/// surrogate pairs are decoded to the replacement character).
pub fn decode_modified_utf8(raw: &[u8]) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let b = raw[i];
        if b & 0x80 == 0 {
            out.push(b as char);
            i += 1;
        } else if b & 0xE0 == 0xC0 && i + 1 < raw.len() {
            let c = (u32::from(b & 0x1F) << 6) | u32::from(raw[i + 1] & 0x3F);
            out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
            i += 2;
        } else if b & 0xF0 == 0xE0 && i + 2 < raw.len() {
            let c = (u32::from(b & 0x0F) << 12)
                | (u32::from(raw[i + 1] & 0x3F) << 6)
                | u32::from(raw[i + 2] & 0x3F);
            out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
            i += 3;
        } else {
            out.push('\u{FFFD}');
            i += 1;
        }
    }
    out
}

/// Encodes JVM modified UTF-8.
pub fn encode_modified_utf8(s: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    for c in s.chars() {
        let v = c as u32;
        match v {
            0 => out.extend_from_slice(&[0xC0, 0x80]),
            1..=0x7F => out.push(v as u8),
            0x80..=0x7FF => {
                out.push(0xC0 | (v >> 6) as u8);
                out.push(0x80 | (v & 0x3F) as u8);
            }
            _ => {
                // BMP three-byte form (supplementary planes would need the
                // surrogate-pair form; class names never contain them).
                out.push(0xE0 | (v >> 12) as u8);
                out.push(0x80 | ((v >> 6) & 0x3F) as u8);
                out.push(0x80 | (v & 0x3F) as u8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_bounds() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u16().unwrap(), 0x0102);
        assert!(c.u16().is_err());
        assert_eq!(c.u8().unwrap(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = parse_class(&[0, 0, 0, 0]).unwrap_err();
        assert!(err.message.contains("bad magic"));
    }

    #[test]
    fn modified_utf8_round_trip() {
        for s in ["hello", "java/lang/Object", "ünïcødé", "a\u{0}b"] {
            let enc = encode_modified_utf8(s);
            assert_eq!(decode_modified_utf8(&enc), s);
        }
    }

    #[test]
    fn nul_uses_two_byte_form() {
        let enc = encode_modified_utf8("\u{0}");
        assert_eq!(enc, vec![0xC0, 0x80]);
    }
}
