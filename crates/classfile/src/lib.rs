//! # tabby-classfile — JVM class-file parsing, writing, and assembly
//!
//! The class-file substrate of the Tabby reproduction: the role Soot's
//! front end plays in the paper. It provides
//!
//! - a `.class` **reader** ([`parse_class`]) covering the constant pool,
//!   members, attributes, and a full bytecode decoder ([`opcode::decode`]);
//! - a **writer** ([`write_class`]) and a label-based **assembler**
//!   ([`CodeAsm`], [`ClassAsm`]) so the synthetic workloads can emit genuine
//!   class-file bytes;
//! - the `Code` attribute codec and modified-UTF-8 handling.
//!
//! The IR lifter/compiler pair lives in `tabby-ir` (`lift`/`compile`),
//! completing the round trip: IR → bytes → IR.
//!
//! # Examples
//!
//! ```
//! use tabby_classfile::{parse_class, write_class, ClassAsm};
//!
//! let class = ClassAsm::new("demo.Empty", "java.lang.Object", 0x0021).finish();
//! let bytes = write_class(&class);
//! let parsed = parse_class(&bytes).unwrap();
//! assert_eq!(parsed.name().unwrap(), "demo.Empty");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod assembler;
pub mod constant_pool;
pub mod error;
pub mod model;
pub mod opcode;
pub mod reader;
pub mod writer;

pub use assembler::{AsmLabel, ClassAsm, CodeAsm};
pub use constant_pool::{ConstantPool, CpInfo};
pub use error::{ClassFileError, Result};
pub use model::{
    decode_code_attribute, encode_code_attribute, AttributeInfo, ClassFile, CodeAttribute,
    ExceptionTableEntry, MemberInfo, MAGIC, MAJOR_JAVA8,
};
pub use reader::parse_class;
pub use writer::write_class;
