//! Error type for class-file parsing and assembly.

use std::fmt;

/// Error produced when reading or writing a `.class` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFileError {
    /// Byte offset where the problem was detected (reading only).
    pub offset: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ClassFileError {
    /// Creates an error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset: Some(offset),
            message: message.into(),
        }
    }

    /// Creates an error without positional information.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            offset: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "class file error at byte {o}: {}", self.message),
            None => write!(f, "class file error: {}", self.message),
        }
    }
}

impl std::error::Error for ClassFileError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ClassFileError>;
