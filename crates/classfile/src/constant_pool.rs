//! The constant pool (JVMS §4.4).

use crate::error::{ClassFileError, Result};
use std::collections::HashMap;

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum CpInfo {
    /// `CONSTANT_Utf8`.
    Utf8(String),
    /// `CONSTANT_Integer`.
    Integer(i32),
    /// `CONSTANT_Float`.
    Float(f32),
    /// `CONSTANT_Long` (occupies two slots).
    Long(i64),
    /// `CONSTANT_Double` (occupies two slots).
    Double(f64),
    /// `CONSTANT_Class` → Utf8 index of the internal name.
    Class(u16),
    /// `CONSTANT_String` → Utf8 index.
    Str(u16),
    /// `CONSTANT_Fieldref` (class index, name-and-type index).
    FieldRef(u16, u16),
    /// `CONSTANT_Methodref`.
    MethodRef(u16, u16),
    /// `CONSTANT_InterfaceMethodref`.
    InterfaceMethodRef(u16, u16),
    /// `CONSTANT_NameAndType` (name Utf8 index, descriptor Utf8 index).
    NameAndType(u16, u16),
    /// `CONSTANT_MethodHandle` (reference kind, reference index).
    MethodHandle(u8, u16),
    /// `CONSTANT_MethodType` (descriptor Utf8 index).
    MethodType(u16),
    /// `CONSTANT_InvokeDynamic` (bootstrap index, name-and-type index).
    InvokeDynamic(u16, u16),
    /// Placeholder for the unusable slot after a Long/Double.
    Unusable,
}

impl CpInfo {
    /// Whether the entry occupies two pool slots.
    pub fn is_wide(&self) -> bool {
        matches!(self, CpInfo::Long(_) | CpInfo::Double(_))
    }
}

/// The constant pool: 1-indexed, with wide entries occupying two slots.
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    entries: Vec<CpInfo>, // entries[0] corresponds to index 1
    dedup: HashMap<DedupKey, u16>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DedupKey {
    Utf8(String),
    Integer(i32),
    Long(i64),
    Class(u16),
    Str(u16),
    FieldRef(u16, u16),
    MethodRef(u16, u16),
    InterfaceMethodRef(u16, u16),
    NameAndType(u16, u16),
}

impl ConstantPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots plus one (the `constant_pool_count` of the format).
    pub fn count(&self) -> u16 {
        self.entries.len() as u16 + 1
    }

    /// Fetches an entry by its 1-based index.
    pub fn get(&self, index: u16) -> Result<&CpInfo> {
        if index == 0 {
            return Err(ClassFileError::new("constant pool index 0"));
        }
        self.entries
            .get(index as usize - 1)
            .ok_or_else(|| ClassFileError::new(format!("constant pool index {index} out of range")))
    }

    /// The UTF-8 string at `index`.
    pub fn utf8(&self, index: u16) -> Result<&str> {
        match self.get(index)? {
            CpInfo::Utf8(s) => Ok(s),
            other => Err(ClassFileError::new(format!(
                "expected Utf8 at {index}, found {other:?}"
            ))),
        }
    }

    /// The class name (internal, slash-separated) referenced at `index`.
    pub fn class_name(&self, index: u16) -> Result<&str> {
        match self.get(index)? {
            CpInfo::Class(utf8) => self.utf8(*utf8),
            other => Err(ClassFileError::new(format!(
                "expected Class at {index}, found {other:?}"
            ))),
        }
    }

    /// The (name, descriptor) strings of a NameAndType at `index`.
    pub fn name_and_type(&self, index: u16) -> Result<(&str, &str)> {
        match self.get(index)? {
            CpInfo::NameAndType(n, d) => Ok((self.utf8(*n)?, self.utf8(*d)?)),
            other => Err(ClassFileError::new(format!(
                "expected NameAndType at {index}, found {other:?}"
            ))),
        }
    }

    /// Resolves a field/method/interface-method reference into
    /// `(class name, member name, descriptor)`.
    pub fn member_ref(&self, index: u16) -> Result<(&str, &str, &str)> {
        let (class_idx, nat_idx) = match self.get(index)? {
            CpInfo::FieldRef(c, n) | CpInfo::MethodRef(c, n) | CpInfo::InterfaceMethodRef(c, n) => {
                (*c, *n)
            }
            other => {
                return Err(ClassFileError::new(format!(
                    "expected member ref at {index}, found {other:?}"
                )))
            }
        };
        let class = self.class_name(class_idx)?;
        let (name, desc) = self.name_and_type(nat_idx)?;
        Ok((class, name, desc))
    }

    /// Appends a raw entry (used by the reader); returns its index.
    pub fn push_raw(&mut self, info: CpInfo) -> u16 {
        let wide = info.is_wide();
        self.entries.push(info);
        let index = self.entries.len() as u16;
        if wide {
            self.entries.push(CpInfo::Unusable);
        }
        index
    }

    /// Iterates over `(index, entry)` pairs, skipping unusable slots.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &CpInfo)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !matches!(e, CpInfo::Unusable))
            .map(|(i, e)| (i as u16 + 1, e))
    }

    // ----- deduplicating writers (assembler surface) ------------------------

    /// Interns a UTF-8 constant.
    pub fn add_utf8(&mut self, s: &str) -> u16 {
        if let Some(&i) = self.dedup.get(&DedupKey::Utf8(s.to_owned())) {
            return i;
        }
        let i = self.push_raw(CpInfo::Utf8(s.to_owned()));
        self.dedup.insert(DedupKey::Utf8(s.to_owned()), i);
        i
    }

    /// Interns an integer constant.
    pub fn add_integer(&mut self, v: i32) -> u16 {
        if let Some(&i) = self.dedup.get(&DedupKey::Integer(v)) {
            return i;
        }
        let i = self.push_raw(CpInfo::Integer(v));
        self.dedup.insert(DedupKey::Integer(v), i);
        i
    }

    /// Interns a long constant.
    pub fn add_long(&mut self, v: i64) -> u16 {
        if let Some(&i) = self.dedup.get(&DedupKey::Long(v)) {
            return i;
        }
        let i = self.push_raw(CpInfo::Long(v));
        self.dedup.insert(DedupKey::Long(v), i);
        i
    }

    /// Interns a class constant for an internal (slash-separated) name.
    pub fn add_class(&mut self, internal_name: &str) -> u16 {
        let utf8 = self.add_utf8(internal_name);
        if let Some(&i) = self.dedup.get(&DedupKey::Class(utf8)) {
            return i;
        }
        let i = self.push_raw(CpInfo::Class(utf8));
        self.dedup.insert(DedupKey::Class(utf8), i);
        i
    }

    /// Interns a string constant.
    pub fn add_string(&mut self, s: &str) -> u16 {
        let utf8 = self.add_utf8(s);
        if let Some(&i) = self.dedup.get(&DedupKey::Str(utf8)) {
            return i;
        }
        let i = self.push_raw(CpInfo::Str(utf8));
        self.dedup.insert(DedupKey::Str(utf8), i);
        i
    }

    /// Interns a NameAndType constant.
    pub fn add_name_and_type(&mut self, name: &str, descriptor: &str) -> u16 {
        let n = self.add_utf8(name);
        let d = self.add_utf8(descriptor);
        if let Some(&i) = self.dedup.get(&DedupKey::NameAndType(n, d)) {
            return i;
        }
        let i = self.push_raw(CpInfo::NameAndType(n, d));
        self.dedup.insert(DedupKey::NameAndType(n, d), i);
        i
    }

    /// Interns a field reference.
    pub fn add_field_ref(&mut self, class: &str, name: &str, descriptor: &str) -> u16 {
        let c = self.add_class(class);
        let nat = self.add_name_and_type(name, descriptor);
        if let Some(&i) = self.dedup.get(&DedupKey::FieldRef(c, nat)) {
            return i;
        }
        let i = self.push_raw(CpInfo::FieldRef(c, nat));
        self.dedup.insert(DedupKey::FieldRef(c, nat), i);
        i
    }

    /// Interns a method reference.
    pub fn add_method_ref(&mut self, class: &str, name: &str, descriptor: &str) -> u16 {
        let c = self.add_class(class);
        let nat = self.add_name_and_type(name, descriptor);
        if let Some(&i) = self.dedup.get(&DedupKey::MethodRef(c, nat)) {
            return i;
        }
        let i = self.push_raw(CpInfo::MethodRef(c, nat));
        self.dedup.insert(DedupKey::MethodRef(c, nat), i);
        i
    }

    /// Interns an interface-method reference.
    pub fn add_interface_method_ref(&mut self, class: &str, name: &str, descriptor: &str) -> u16 {
        let c = self.add_class(class);
        let nat = self.add_name_and_type(name, descriptor);
        if let Some(&i) = self.dedup.get(&DedupKey::InterfaceMethodRef(c, nat)) {
            return i;
        }
        let i = self.push_raw(CpInfo::InterfaceMethodRef(c, nat));
        self.dedup.insert(DedupKey::InterfaceMethodRef(c, nat), i);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_indexed_access() {
        let mut cp = ConstantPool::new();
        let i = cp.add_utf8("hello");
        assert_eq!(i, 1);
        assert_eq!(cp.utf8(1).unwrap(), "hello");
        assert!(cp.get(0).is_err());
        assert!(cp.get(2).is_err());
    }

    #[test]
    fn wide_entries_take_two_slots() {
        let mut cp = ConstantPool::new();
        let l = cp.add_long(42);
        let after = cp.add_utf8("next");
        assert_eq!(l, 1);
        assert_eq!(after, 3);
        assert_eq!(cp.count(), 4);
    }

    #[test]
    fn dedup_interning() {
        let mut cp = ConstantPool::new();
        let a = cp.add_method_ref("java/lang/Runtime", "exec", "(Ljava/lang/String;)V");
        let b = cp.add_method_ref("java/lang/Runtime", "exec", "(Ljava/lang/String;)V");
        assert_eq!(a, b);
        let (class, name, desc) = cp.member_ref(a).unwrap();
        assert_eq!(class, "java/lang/Runtime");
        assert_eq!(name, "exec");
        assert_eq!(desc, "(Ljava/lang/String;)V");
    }

    #[test]
    fn class_and_string_helpers() {
        let mut cp = ConstantPool::new();
        let c = cp.add_class("java/util/HashMap");
        assert_eq!(cp.class_name(c).unwrap(), "java/util/HashMap");
        let s = cp.add_string("payload");
        match cp.get(s).unwrap() {
            CpInfo::Str(utf8) => assert_eq!(cp.utf8(*utf8).unwrap(), "payload"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iter_skips_unusable() {
        let mut cp = ConstantPool::new();
        cp.add_long(7);
        cp.add_utf8("x");
        let indices: Vec<u16> = cp.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![1, 3]);
    }
}
