//! Bytecode assembly: label-based code emission plus a whole-class builder.
//!
//! This is the write side of the substrate: the IR compiler in `tabby-ir`
//! uses [`CodeAsm`] and [`ClassAsm`] to emit genuine `.class` bytes, which
//! the reader/lifter pipeline then consumes — giving the workloads a real
//! class-file round trip.

use crate::constant_pool::ConstantPool;
use crate::error::{ClassFileError, Result};
use crate::model::{
    encode_code_attribute, AttributeInfo, ClassFile, CodeAttribute, MemberInfo, MAJOR_JAVA8,
};
use std::collections::HashMap;

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsmLabel(u32);

/// A label-based bytecode emitter for one method body.
#[derive(Debug, Default)]
pub struct CodeAsm {
    bytes: Vec<u8>,
    labels: HashMap<AsmLabel, u32>,
    /// (patch position, opcode position, label) for 16-bit branch offsets.
    fixups: Vec<(usize, u32, AsmLabel)>,
    /// (patch position, opcode position, label) for 32-bit switch offsets.
    fixups32: Vec<(usize, u32, AsmLabel)>,
    next_label: u32,
    depth: i32,
    max_depth: i32,
}

impl CodeAsm {
    /// Creates an empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current code offset.
    pub fn offset(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn bump(&mut self, delta: i32) {
        self.depth += delta;
        self.max_depth = self.max_depth.max(self.depth);
        // Branch joins may make the static estimate dip below zero; clamp.
        if self.depth < 0 {
            self.depth = 0;
        }
    }

    fn op(&mut self, opcode: u8, delta: i32) {
        self.bytes.push(opcode);
        self.bump(delta);
    }

    fn op_u8(&mut self, opcode: u8, operand: u8, delta: i32) {
        self.bytes.push(opcode);
        self.bytes.push(operand);
        self.bump(delta);
    }

    fn op_u16(&mut self, opcode: u8, operand: u16, delta: i32) {
        self.bytes.push(opcode);
        self.bytes.extend_from_slice(&operand.to_be_bytes());
        self.bump(delta);
    }

    // ----- labels -----------------------------------------------------------

    /// Allocates a fresh label.
    pub fn fresh_label(&mut self) -> AsmLabel {
        let l = AsmLabel(self.next_label);
        self.next_label += 1;
        l
    }

    /// Places `label` at the current offset.
    pub fn place(&mut self, label: AsmLabel) {
        let prev = self.labels.insert(label, self.offset());
        debug_assert!(prev.is_none(), "label placed twice");
    }

    fn branch(&mut self, opcode: u8, label: AsmLabel, delta: i32) {
        let at = self.offset();
        self.bytes.push(opcode);
        self.fixups.push((self.bytes.len(), at, label));
        self.bytes.extend_from_slice(&[0, 0]);
        self.bump(delta);
    }

    // ----- constants --------------------------------------------------------

    /// `aconst_null`.
    pub fn aconst_null(&mut self) {
        self.op(0x01, 1);
    }

    /// Loads an `int` constant with the smallest encoding.
    pub fn iconst(&mut self, v: i32, cp: &mut ConstantPool) {
        match v {
            -1..=5 => self.op((v + 3) as u8, 1),
            -128..=127 => self.op_u8(0x10, v as u8, 1),
            -32768..=32767 => self.op_u16(0x11, v as u16, 1),
            _ => {
                let idx = cp.add_integer(v);
                self.op_u16(0x13, idx, 1); // ldc_w
            }
        }
    }

    /// Loads a `long` constant via `ldc2_w`.
    pub fn lconst(&mut self, v: i64, cp: &mut ConstantPool) {
        let idx = cp.add_long(v);
        self.op_u16(0x14, idx, 2);
    }

    /// Loads a string constant.
    pub fn ldc_string(&mut self, s: &str, cp: &mut ConstantPool) {
        let idx = cp.add_string(s);
        self.op_u16(0x13, idx, 1); // ldc_w
    }

    /// Loads a class constant (internal name).
    pub fn ldc_class(&mut self, internal: &str, cp: &mut ConstantPool) {
        let idx = cp.add_class(internal);
        self.op_u16(0x13, idx, 1);
    }

    // ----- locals -----------------------------------------------------------

    /// `aload` with short forms.
    pub fn aload(&mut self, index: u16) {
        match index {
            0..=3 => self.op(0x2a + index as u8, 1),
            4..=255 => self.op_u8(0x19, index as u8, 1),
            _ => {
                self.op(0xc4, 0);
                self.op_u16(0x19, index, 1);
            }
        }
    }

    /// `astore` with short forms.
    pub fn astore(&mut self, index: u16) {
        match index {
            0..=3 => self.op(0x4b + index as u8, -1),
            4..=255 => self.op_u8(0x3a, index as u8, -1),
            _ => {
                self.op(0xc4, 0);
                self.op_u16(0x3a, index, -1);
            }
        }
    }

    /// `iload` with short forms.
    pub fn iload(&mut self, index: u16) {
        match index {
            0..=3 => self.op(0x1a + index as u8, 1),
            4..=255 => self.op_u8(0x15, index as u8, 1),
            _ => {
                self.op(0xc4, 0);
                self.op_u16(0x15, index, 1);
            }
        }
    }

    /// `istore` with short forms.
    pub fn istore(&mut self, index: u16) {
        match index {
            0..=3 => self.op(0x3b + index as u8, -1),
            4..=255 => self.op_u8(0x36, index as u8, -1),
            _ => {
                self.op(0xc4, 0);
                self.op_u16(0x36, index, -1);
            }
        }
    }

    // ----- stack ------------------------------------------------------------

    /// `dup`.
    pub fn dup(&mut self) {
        self.op(0x59, 1);
    }

    /// `pop`.
    pub fn pop(&mut self) {
        self.op(0x57, -1);
    }

    /// `swap`.
    pub fn swap(&mut self) {
        self.op(0x5f, 0);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.op(0x00, 0);
    }

    // ----- arithmetic -------------------------------------------------------

    /// An `int` arithmetic/bitwise op by opcode (e.g. `0x60` = iadd).
    pub fn iarith(&mut self, opcode: u8) {
        self.op(opcode, -1);
    }

    /// `ineg`.
    pub fn ineg(&mut self) {
        self.op(0x74, 0);
    }

    // ----- fields -----------------------------------------------------------

    /// `getfield`.
    pub fn getfield(&mut self, class: &str, name: &str, desc: &str, cp: &mut ConstantPool) {
        let idx = cp.add_field_ref(class, name, desc);
        self.op_u16(0xb4, idx, 0);
    }

    /// `putfield`.
    pub fn putfield(&mut self, class: &str, name: &str, desc: &str, cp: &mut ConstantPool) {
        let idx = cp.add_field_ref(class, name, desc);
        self.op_u16(0xb5, idx, -2);
    }

    /// `getstatic`.
    pub fn getstatic(&mut self, class: &str, name: &str, desc: &str, cp: &mut ConstantPool) {
        let idx = cp.add_field_ref(class, name, desc);
        self.op_u16(0xb2, idx, 1);
    }

    /// `putstatic`.
    pub fn putstatic(&mut self, class: &str, name: &str, desc: &str, cp: &mut ConstantPool) {
        let idx = cp.add_field_ref(class, name, desc);
        self.op_u16(0xb3, idx, -1);
    }

    // ----- objects / arrays --------------------------------------------------

    /// `new`.
    pub fn new_object(&mut self, class: &str, cp: &mut ConstantPool) {
        let idx = cp.add_class(class);
        self.op_u16(0xbb, idx, 1);
    }

    /// `anewarray`.
    pub fn anewarray(&mut self, class: &str, cp: &mut ConstantPool) {
        let idx = cp.add_class(class);
        self.op_u16(0xbd, idx, 0);
    }

    /// `newarray` with a primitive element tag (e.g. 10 = int).
    pub fn newarray(&mut self, tag: u8) {
        self.op_u8(0xbc, tag, 0);
    }

    /// `arraylength`.
    pub fn arraylength(&mut self) {
        self.op(0xbe, 0);
    }

    /// `aaload`.
    pub fn aaload(&mut self) {
        self.op(0x32, -1);
    }

    /// `aastore`.
    pub fn aastore(&mut self) {
        self.op(0x53, -3);
    }

    /// `checkcast`.
    pub fn checkcast(&mut self, class: &str, cp: &mut ConstantPool) {
        let idx = cp.add_class(class);
        self.op_u16(0xc0, idx, 0);
    }

    /// `instanceof`.
    pub fn instanceof(&mut self, class: &str, cp: &mut ConstantPool) {
        let idx = cp.add_class(class);
        self.op_u16(0xc1, idx, 0);
    }

    /// `athrow`.
    pub fn athrow(&mut self) {
        self.op(0xbf, -1);
    }

    /// `monitorenter`.
    pub fn monitorenter(&mut self) {
        self.op(0xc2, -1);
    }

    /// `monitorexit`.
    pub fn monitorexit(&mut self) {
        self.op(0xc3, -1);
    }

    // ----- calls ------------------------------------------------------------

    /// `invokevirtual`.
    pub fn invokevirtual(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        stack_delta: i32,
        cp: &mut ConstantPool,
    ) {
        let idx = cp.add_method_ref(class, name, desc);
        self.op_u16(0xb6, idx, stack_delta);
    }

    /// `invokespecial`.
    pub fn invokespecial(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        stack_delta: i32,
        cp: &mut ConstantPool,
    ) {
        let idx = cp.add_method_ref(class, name, desc);
        self.op_u16(0xb7, idx, stack_delta);
    }

    /// `invokestatic`.
    pub fn invokestatic(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        stack_delta: i32,
        cp: &mut ConstantPool,
    ) {
        let idx = cp.add_method_ref(class, name, desc);
        self.op_u16(0xb8, idx, stack_delta);
    }

    /// `invokeinterface` (the count operand is computed from `argc`).
    pub fn invokeinterface(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        argc: u8,
        stack_delta: i32,
        cp: &mut ConstantPool,
    ) {
        let idx = cp.add_interface_method_ref(class, name, desc);
        self.bytes.push(0xb9);
        self.bytes.extend_from_slice(&idx.to_be_bytes());
        self.bytes.push(argc + 1);
        self.bytes.push(0);
        self.bump(stack_delta);
    }

    // ----- control flow -----------------------------------------------------

    /// `goto`.
    pub fn goto(&mut self, label: AsmLabel) {
        self.branch(0xa7, label, 0);
    }

    /// `ifeq` … `ifle` family by opcode (pops one int).
    pub fn if_zero(&mut self, opcode: u8, label: AsmLabel) {
        debug_assert!((0x99..=0x9e).contains(&opcode));
        self.branch(opcode, label, -1);
    }

    /// `if_icmp*` family by opcode (pops two ints).
    pub fn if_icmp(&mut self, opcode: u8, label: AsmLabel) {
        debug_assert!((0x9f..=0xa4).contains(&opcode));
        self.branch(opcode, label, -2);
    }

    /// `if_acmpeq` / `if_acmpne`.
    pub fn if_acmp(&mut self, eq: bool, label: AsmLabel) {
        self.branch(if eq { 0xa5 } else { 0xa6 }, label, -2);
    }

    /// `lookupswitch` (labels must be placed before `finish`).
    pub fn lookupswitch(&mut self, pairs: &[(i32, AsmLabel)], default: AsmLabel) {
        let at = self.offset();
        self.bytes.push(0xab);
        while self.bytes.len() % 4 != 0 {
            self.bytes.push(0);
        }
        // 32-bit fixups are encoded as label placeholders resolved in
        // finish(); record them with a distinct marker (patch length 4).
        self.fixups32.push((self.bytes.len(), at, default));
        self.bytes.extend_from_slice(&[0; 4]);
        self.bytes
            .extend_from_slice(&(pairs.len() as i32).to_be_bytes());
        for (k, l) in pairs {
            self.bytes.extend_from_slice(&k.to_be_bytes());
            self.fixups32.push((self.bytes.len(), at, *l));
            self.bytes.extend_from_slice(&[0; 4]);
        }
        self.bump(-1);
    }

    /// Typed returns: `return` / `areturn` / `ireturn`.
    pub fn return_void(&mut self) {
        self.op(0xb1, 0);
    }

    /// `areturn`.
    pub fn areturn(&mut self) {
        self.op(0xb0, -1);
    }

    /// `ireturn`.
    pub fn ireturn(&mut self) {
        self.op(0xac, -1);
    }

    /// Resolves fixups and produces the `Code` attribute.
    ///
    /// # Errors
    ///
    /// Fails if a referenced label was never placed or a 16-bit branch
    /// offset overflows.
    pub fn finish(self, max_locals: u16) -> Result<CodeAttribute> {
        let mut bytes = self.bytes;
        for (patch_at, opcode_at, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| ClassFileError::new("unplaced label"))?;
            let rel = i64::from(target) - i64::from(*opcode_at);
            let rel16 = i16::try_from(rel)
                .map_err(|_| ClassFileError::new("branch offset exceeds 16 bits"))?;
            bytes[*patch_at..*patch_at + 2].copy_from_slice(&(rel16 as u16).to_be_bytes());
        }
        for (patch_at, opcode_at, label) in &self.fixups32 {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| ClassFileError::new("unplaced label"))?;
            let rel = (i64::from(target) - i64::from(*opcode_at)) as i32;
            bytes[*patch_at..*patch_at + 4].copy_from_slice(&rel.to_be_bytes());
        }
        Ok(CodeAttribute {
            max_stack: self.max_depth.max(1) as u16,
            max_locals,
            code: bytes,
            exception_table: Vec::new(),
            attributes: Vec::new(),
        })
    }
}

/// A whole-class assembler.
#[derive(Debug)]
pub struct ClassAsm {
    /// The pool under construction.
    pub cp: ConstantPool,
    access_flags: u16,
    this_class: u16,
    super_class: u16,
    interfaces: Vec<u16>,
    fields: Vec<MemberInfo>,
    methods: Vec<MemberInfo>,
}

impl ClassAsm {
    /// Starts a class with dotted names.
    pub fn new(name: &str, super_name: &str, access_flags: u16) -> Self {
        let mut cp = ConstantPool::new();
        let this_class = cp.add_class(&name.replace('.', "/"));
        let super_class = cp.add_class(&super_name.replace('.', "/"));
        Self {
            cp,
            access_flags,
            this_class,
            super_class,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Declares an implemented interface (dotted name).
    pub fn add_interface(&mut self, name: &str) {
        let idx = self.cp.add_class(&name.replace('.', "/"));
        self.interfaces.push(idx);
    }

    /// Adds a field.
    pub fn add_field(&mut self, access_flags: u16, name: &str, descriptor: &str) {
        let name_index = self.cp.add_utf8(name);
        let descriptor_index = self.cp.add_utf8(descriptor);
        self.fields.push(MemberInfo {
            access_flags,
            name_index,
            descriptor_index,
            attributes: Vec::new(),
        });
    }

    /// Adds a method, optionally with code.
    pub fn add_method(
        &mut self,
        access_flags: u16,
        name: &str,
        descriptor: &str,
        code: Option<CodeAttribute>,
    ) {
        let name_index = self.cp.add_utf8(name);
        let descriptor_index = self.cp.add_utf8(descriptor);
        let mut attributes = Vec::new();
        if let Some(code) = code {
            let code_name = self.cp.add_utf8("Code");
            attributes.push(AttributeInfo {
                name_index: code_name,
                info: encode_code_attribute(&code),
            });
        }
        self.methods.push(MemberInfo {
            access_flags,
            name_index,
            descriptor_index,
            attributes,
        });
    }

    /// Finalizes into a [`ClassFile`].
    pub fn finish(self) -> ClassFile {
        ClassFile {
            minor_version: 0,
            major_version: MAJOR_JAVA8,
            constant_pool: self.cp,
            access_flags: self.access_flags,
            this_class: self.this_class,
            super_class: self.super_class,
            interfaces: self.interfaces,
            fields: self.fields,
            methods: self.methods,
            attributes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{decode, Insn, Kind};
    use crate::reader::parse_class;
    use crate::writer::write_class;

    #[test]
    fn assembles_and_decodes_a_method() {
        let mut class = ClassAsm::new("demo.Greeter", "java.lang.Object", 0x0021);
        let mut asm = CodeAsm::new();
        asm.aload(0);
        asm.getfield("demo/Greeter", "cmd", "Ljava/lang/String;", &mut class.cp);
        asm.astore(1);
        asm.aload(1);
        asm.invokestatic(
            "java/lang/Runtime",
            "getRuntime",
            "()Ljava/lang/Runtime;",
            1,
            &mut class.cp,
        );
        asm.swap();
        asm.invokevirtual(
            "java/lang/Runtime",
            "exec",
            "(Ljava/lang/String;)Ljava/lang/Process;",
            -1,
            &mut class.cp,
        );
        asm.pop();
        asm.return_void();
        let code = asm.finish(2).unwrap();
        assert!(code.max_stack >= 2);
        class.add_method(0x0001, "run", "()V", Some(code));
        let bytes = write_class(&class.finish());
        let parsed = parse_class(&bytes).unwrap();
        assert_eq!(parsed.name().unwrap(), "demo.Greeter");
        let method = &parsed.methods[0];
        let code = parsed.code_of(method).unwrap().unwrap();
        let insns = decode(&code.code).unwrap();
        assert_eq!(insns[0].1, Insn::Load(Kind::Ref, 0));
        assert!(matches!(insns[1].1, Insn::GetField(_)));
        assert!(matches!(insns.last().unwrap().1, Insn::Return(None)));
    }

    #[test]
    fn branch_fixups_resolve() {
        let mut cp = ConstantPool::new();
        let mut asm = CodeAsm::new();
        let end = asm.fresh_label();
        asm.iconst(0, &mut cp);
        asm.if_zero(0x99, end); // ifeq -> end
        asm.nop();
        asm.place(end);
        asm.return_void();
        let code = asm.finish(1).unwrap();
        let insns = decode(&code.code).unwrap();
        // The nop sits at offset 4 (iconst_0=1 byte, ifeq=3 bytes); end = 5.
        match insns[1].1 {
            Insn::IfZero(_, target) => assert_eq!(target, 5),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unplaced_label_errors() {
        let mut asm = CodeAsm::new();
        let l = asm.fresh_label();
        asm.goto(l);
        assert!(asm.finish(0).is_err());
    }

    #[test]
    fn lookupswitch_round_trips() {
        let mut cp = ConstantPool::new();
        let mut asm = CodeAsm::new();
        let a = asm.fresh_label();
        let d = asm.fresh_label();
        asm.iconst(1, &mut cp);
        asm.lookupswitch(&[(1, a)], d);
        asm.place(a);
        asm.nop();
        asm.place(d);
        asm.return_void();
        let code = asm.finish(0).unwrap();
        let insns = decode(&code.code).unwrap();
        let (off_a, _) = insns.iter().find(|(_, i)| matches!(i, Insn::Nop)).unwrap();
        match &insns[1].1 {
            Insn::LookupSwitch { default, pairs } => {
                assert_eq!(pairs, &[(1, *off_a)]);
                assert_eq!(*default, off_a + 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
