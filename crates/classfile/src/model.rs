//! The class-file object model (JVMS §4.1).

use crate::constant_pool::ConstantPool;
use crate::error::{ClassFileError, Result};

/// The `0xCAFEBABE` magic.
pub const MAGIC: u32 = 0xCAFE_BABE;

/// Major version for Java 8 class files (the format we emit).
pub const MAJOR_JAVA8: u16 = 52;

/// A field or method member.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    /// Access flags (raw).
    pub access_flags: u16,
    /// Utf8 index of the member name.
    pub name_index: u16,
    /// Utf8 index of the descriptor.
    pub descriptor_index: u16,
    /// Attributes.
    pub attributes: Vec<AttributeInfo>,
}

/// A raw attribute: name index plus undecoded payload.
#[derive(Debug, Clone)]
pub struct AttributeInfo {
    /// Utf8 index of the attribute name.
    pub name_index: u16,
    /// Raw attribute bytes.
    pub info: Vec<u8>,
}

/// One `exception_table` row of a Code attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceptionTableEntry {
    /// Start of the protected range (inclusive).
    pub start_pc: u16,
    /// End of the protected range (exclusive).
    pub end_pc: u16,
    /// Handler entry point.
    pub handler_pc: u16,
    /// Class index of the caught type (0 = any).
    pub catch_type: u16,
}

/// A decoded `Code` attribute (JVMS §4.7.3).
#[derive(Debug, Clone, Default)]
pub struct CodeAttribute {
    /// Operand-stack budget.
    pub max_stack: u16,
    /// Local-variable slots.
    pub max_locals: u16,
    /// Raw bytecode.
    pub code: Vec<u8>,
    /// Exception handlers.
    pub exception_table: Vec<ExceptionTableEntry>,
    /// Nested attributes (kept raw).
    pub attributes: Vec<AttributeInfo>,
}

/// A parsed class file.
#[derive(Debug, Clone)]
pub struct ClassFile {
    /// Minor version.
    pub minor_version: u16,
    /// Major version.
    pub major_version: u16,
    /// The constant pool.
    pub constant_pool: ConstantPool,
    /// Class access flags (raw).
    pub access_flags: u16,
    /// Class index of this class.
    pub this_class: u16,
    /// Class index of the superclass (0 for `java.lang.Object`).
    pub super_class: u16,
    /// Class indices of the direct interfaces.
    pub interfaces: Vec<u16>,
    /// Fields.
    pub fields: Vec<MemberInfo>,
    /// Methods.
    pub methods: Vec<MemberInfo>,
    /// Class-level attributes.
    pub attributes: Vec<AttributeInfo>,
}

impl ClassFile {
    /// The dotted binary name of this class.
    pub fn name(&self) -> Result<String> {
        Ok(self
            .constant_pool
            .class_name(self.this_class)?
            .replace('/', "."))
    }

    /// The dotted binary name of the superclass, if any.
    pub fn super_name(&self) -> Result<Option<String>> {
        if self.super_class == 0 {
            return Ok(None);
        }
        Ok(Some(
            self.constant_pool
                .class_name(self.super_class)?
                .replace('/', "."),
        ))
    }

    /// Dotted names of the direct interfaces.
    pub fn interface_names(&self) -> Result<Vec<String>> {
        self.interfaces
            .iter()
            .map(|&i| Ok(self.constant_pool.class_name(i)?.replace('/', ".")))
            .collect()
    }

    /// Finds and decodes the `Code` attribute of a member, if present.
    pub fn code_of(&self, member: &MemberInfo) -> Result<Option<CodeAttribute>> {
        for attr in &member.attributes {
            if self.constant_pool.utf8(attr.name_index)? == "Code" {
                return Ok(Some(decode_code_attribute(&attr.info)?));
            }
        }
        Ok(None)
    }
}

/// Decodes the payload of a `Code` attribute.
pub fn decode_code_attribute(info: &[u8]) -> Result<CodeAttribute> {
    let mut r = crate::reader::Cursor::new(info);
    let max_stack = r.u16()?;
    let max_locals = r.u16()?;
    let code_len = r.u32()? as usize;
    let code = r.bytes(code_len)?.to_vec();
    let handler_count = r.u16()? as usize;
    let mut exception_table = Vec::with_capacity(handler_count);
    for _ in 0..handler_count {
        exception_table.push(ExceptionTableEntry {
            start_pc: r.u16()?,
            end_pc: r.u16()?,
            handler_pc: r.u16()?,
            catch_type: r.u16()?,
        });
    }
    let attr_count = r.u16()? as usize;
    let mut attributes = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let name_index = r.u16()?;
        let len = r.u32()? as usize;
        attributes.push(AttributeInfo {
            name_index,
            info: r.bytes(len)?.to_vec(),
        });
    }
    if !r.is_empty() {
        return Err(ClassFileError::new("trailing bytes in Code attribute"));
    }
    Ok(CodeAttribute {
        max_stack,
        max_locals,
        code,
        exception_table,
        attributes,
    })
}

/// Encodes a `Code` attribute payload.
pub fn encode_code_attribute(code: &CodeAttribute) -> Vec<u8> {
    let mut out = Vec::with_capacity(code.code.len() + 16);
    out.extend_from_slice(&code.max_stack.to_be_bytes());
    out.extend_from_slice(&code.max_locals.to_be_bytes());
    out.extend_from_slice(&(code.code.len() as u32).to_be_bytes());
    out.extend_from_slice(&code.code);
    out.extend_from_slice(&(code.exception_table.len() as u16).to_be_bytes());
    for e in &code.exception_table {
        out.extend_from_slice(&e.start_pc.to_be_bytes());
        out.extend_from_slice(&e.end_pc.to_be_bytes());
        out.extend_from_slice(&e.handler_pc.to_be_bytes());
        out.extend_from_slice(&e.catch_type.to_be_bytes());
    }
    out.extend_from_slice(&(code.attributes.len() as u16).to_be_bytes());
    for a in &code.attributes {
        out.extend_from_slice(&a.name_index.to_be_bytes());
        out.extend_from_slice(&(a.info.len() as u32).to_be_bytes());
        out.extend_from_slice(&a.info);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_attribute_round_trip() {
        let code = CodeAttribute {
            max_stack: 3,
            max_locals: 5,
            code: vec![0x2a, 0xb1], // aload_0; return
            exception_table: vec![ExceptionTableEntry {
                start_pc: 0,
                end_pc: 1,
                handler_pc: 1,
                catch_type: 0,
            }],
            attributes: vec![],
        };
        let bytes = encode_code_attribute(&code);
        let back = decode_code_attribute(&bytes).unwrap();
        assert_eq!(back.max_stack, 3);
        assert_eq!(back.max_locals, 5);
        assert_eq!(back.code, code.code);
        assert_eq!(back.exception_table, code.exception_table);
    }
}
