//! Serializing the object model back to `.class` bytes.

use crate::constant_pool::{ConstantPool, CpInfo};
use crate::model::{AttributeInfo, ClassFile, MemberInfo, MAGIC};
use crate::reader::encode_modified_utf8;

/// Serializes a class file.
pub fn write_class(class: &ClassFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&class.minor_version.to_be_bytes());
    out.extend_from_slice(&class.major_version.to_be_bytes());
    write_constant_pool(&class.constant_pool, &mut out);
    out.extend_from_slice(&class.access_flags.to_be_bytes());
    out.extend_from_slice(&class.this_class.to_be_bytes());
    out.extend_from_slice(&class.super_class.to_be_bytes());
    out.extend_from_slice(&(class.interfaces.len() as u16).to_be_bytes());
    for &i in &class.interfaces {
        out.extend_from_slice(&i.to_be_bytes());
    }
    write_members(&class.fields, &mut out);
    write_members(&class.methods, &mut out);
    write_attributes(&class.attributes, &mut out);
    out
}

fn write_constant_pool(cp: &ConstantPool, out: &mut Vec<u8>) {
    out.extend_from_slice(&cp.count().to_be_bytes());
    for (_, entry) in cp.iter() {
        match entry {
            CpInfo::Utf8(s) => {
                out.push(1);
                let raw = encode_modified_utf8(s);
                out.extend_from_slice(&(raw.len() as u16).to_be_bytes());
                out.extend_from_slice(&raw);
            }
            CpInfo::Integer(v) => {
                out.push(3);
                out.extend_from_slice(&v.to_be_bytes());
            }
            CpInfo::Float(v) => {
                out.push(4);
                out.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            CpInfo::Long(v) => {
                out.push(5);
                out.extend_from_slice(&v.to_be_bytes());
            }
            CpInfo::Double(v) => {
                out.push(6);
                out.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            CpInfo::Class(i) => {
                out.push(7);
                out.extend_from_slice(&i.to_be_bytes());
            }
            CpInfo::Str(i) => {
                out.push(8);
                out.extend_from_slice(&i.to_be_bytes());
            }
            CpInfo::FieldRef(c, n) => {
                out.push(9);
                out.extend_from_slice(&c.to_be_bytes());
                out.extend_from_slice(&n.to_be_bytes());
            }
            CpInfo::MethodRef(c, n) => {
                out.push(10);
                out.extend_from_slice(&c.to_be_bytes());
                out.extend_from_slice(&n.to_be_bytes());
            }
            CpInfo::InterfaceMethodRef(c, n) => {
                out.push(11);
                out.extend_from_slice(&c.to_be_bytes());
                out.extend_from_slice(&n.to_be_bytes());
            }
            CpInfo::NameAndType(n, d) => {
                out.push(12);
                out.extend_from_slice(&n.to_be_bytes());
                out.extend_from_slice(&d.to_be_bytes());
            }
            CpInfo::MethodHandle(k, i) => {
                out.push(15);
                out.push(*k);
                out.extend_from_slice(&i.to_be_bytes());
            }
            CpInfo::MethodType(i) => {
                out.push(16);
                out.extend_from_slice(&i.to_be_bytes());
            }
            CpInfo::InvokeDynamic(b, n) => {
                out.push(18);
                out.extend_from_slice(&b.to_be_bytes());
                out.extend_from_slice(&n.to_be_bytes());
            }
            CpInfo::Unusable => unreachable!("iter skips unusable slots"),
        }
    }
}

fn write_members(members: &[MemberInfo], out: &mut Vec<u8>) {
    out.extend_from_slice(&(members.len() as u16).to_be_bytes());
    for m in members {
        out.extend_from_slice(&m.access_flags.to_be_bytes());
        out.extend_from_slice(&m.name_index.to_be_bytes());
        out.extend_from_slice(&m.descriptor_index.to_be_bytes());
        write_attributes(&m.attributes, out);
    }
}

fn write_attributes(attributes: &[AttributeInfo], out: &mut Vec<u8>) {
    out.extend_from_slice(&(attributes.len() as u16).to_be_bytes());
    for a in attributes {
        out.extend_from_slice(&a.name_index.to_be_bytes());
        out.extend_from_slice(&(a.info.len() as u32).to_be_bytes());
        out.extend_from_slice(&a.info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MAJOR_JAVA8;
    use crate::reader::parse_class;

    #[test]
    fn minimal_class_round_trips() {
        let mut cp = ConstantPool::new();
        let this = cp.add_class("demo/Empty");
        let sup = cp.add_class("java/lang/Object");
        let class = ClassFile {
            minor_version: 0,
            major_version: MAJOR_JAVA8,
            constant_pool: cp,
            access_flags: 0x0021,
            this_class: this,
            super_class: sup,
            interfaces: vec![],
            fields: vec![],
            methods: vec![],
            attributes: vec![],
        };
        let bytes = write_class(&class);
        let back = parse_class(&bytes).unwrap();
        assert_eq!(back.name().unwrap(), "demo.Empty");
        assert_eq!(
            back.super_name().unwrap().as_deref(),
            Some("java.lang.Object")
        );
        assert_eq!(back.major_version, MAJOR_JAVA8);
        // Byte-for-byte stable through a second round trip.
        assert_eq!(write_class(&back), bytes);
    }
}
