//! Property-based tests for the class-file codec.

use proptest::prelude::*;
use tabby_classfile::model::{decode_code_attribute, encode_code_attribute};
use tabby_classfile::reader::{decode_modified_utf8, encode_modified_utf8};
use tabby_classfile::{parse_class, write_class, ClassAsm, CodeAttribute, ConstantPool};

proptest! {
    #[test]
    fn modified_utf8_round_trips_bmp_strings(s in "\\PC{0,60}") {
        // Restrict to BMP (the encoder documents no surrogate-pair support).
        let s: String = s.chars().filter(|c| (*c as u32) < 0x10000).collect();
        prop_assert_eq!(decode_modified_utf8(&encode_modified_utf8(&s)), s);
    }

    #[test]
    fn code_attribute_round_trips(max_stack in 0u16..100, max_locals in 0u16..100,
                                  code in prop::collection::vec(any::<u8>(), 0..64)) {
        let attr = CodeAttribute {
            max_stack,
            max_locals,
            code,
            exception_table: vec![],
            attributes: vec![],
        };
        let bytes = encode_code_attribute(&attr);
        let back = decode_code_attribute(&bytes).unwrap();
        prop_assert_eq!(back.max_stack, attr.max_stack);
        prop_assert_eq!(back.max_locals, attr.max_locals);
        prop_assert_eq!(back.code, attr.code);
    }

    #[test]
    fn constant_pool_dedup_is_stable(names in prop::collection::vec("[a-z/]{1,20}", 1..30)) {
        let mut cp = ConstantPool::new();
        let first: Vec<u16> = names.iter().map(|n| cp.add_class(n)).collect();
        let second: Vec<u16> = names.iter().map(|n| cp.add_class(n)).collect();
        prop_assert_eq!(first.clone(), second);
        for (name, idx) in names.iter().zip(&first) {
            prop_assert_eq!(cp.class_name(*idx).unwrap(), name.as_str());
        }
    }

    #[test]
    fn class_files_round_trip_structurally(field_count in 0usize..6, iface_count in 0usize..4) {
        let mut asm = ClassAsm::new("p.Gen", "java.lang.Object", 0x0021);
        for i in 0..iface_count {
            asm.add_interface(&format!("p.Iface{i}"));
        }
        for i in 0..field_count {
            asm.add_field(0x0002, &format!("f{i}"), "Ljava/lang/Object;");
        }
        let bytes = write_class(&asm.finish());
        let back = parse_class(&bytes).unwrap();
        prop_assert_eq!(back.name().unwrap(), "p.Gen");
        prop_assert_eq!(back.fields.len(), field_count);
        prop_assert_eq!(back.interfaces.len(), iface_count);
        // Writing the parsed structure is byte-stable.
        prop_assert_eq!(write_class(&back), bytes);
    }

    #[test]
    fn parser_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must produce an error, never a panic.
        let _ = parse_class(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let _ = tabby_classfile::opcode::decode(&bytes);
    }
}
