//! Witness synthesis for reported gadget chains (the post-search stage).
//!
//! The static search reports chains whose accumulated Trigger_Condition is
//! satisfiable, but "satisfiable on paper" and "the sink actually fires" are
//! different claims. This crate closes the gap: for each reported chain it
//! synthesizes a **witness plan** — the concrete subclass chosen at every
//! ALIAS edge and the field assignments the crafted object graph must carry
//! — and then *executes* the plan in a small-step interpreter over the
//! lifted IR, confirming that the sink statement is reached with the
//! polluted argument in place.
//!
//! The result is a three-level exploitability ranking:
//!
//! | tier | meaning |
//! |------|---------|
//! | [`WitnessTier::Witnessed`] | interpreter reached the sink with taint on every Trigger_Condition position |
//! | [`WitnessTier::PlanFound`] | a concrete plan exists, but execution did not confirm the sink (dead guard, clean argument, budget) |
//! | [`WitnessTier::StaticOnly`] | no plan could be concretized (phantom entry, unknown sink, interpreter failure) |
//!
//! Witnessing is a pure function of the program and the chain's signature
//! list, so tiers are deterministic across search-thread counts and cache
//! configurations. Interpreter panics are contained per chain — consistent
//! with the pipeline's degraded-mode semantics — and degrade that chain to
//! `static-only` without failing the scan.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod interp;
mod plan;

pub use plan::{AliasChoice, FieldAssignment, WitnessPlan};

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tabby_ir::{Hierarchy, Program};
use tabby_pathfinder::{GadgetChain, SinkCatalog, WitnessTier};

/// Execution limits for the witness interpreter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WitnessConfig {
    /// Maximum interpreter steps per chain before giving up.
    pub step_budget: usize,
    /// Maximum call-frame depth per chain.
    pub max_call_depth: usize,
}

impl Default for WitnessConfig {
    fn default() -> Self {
        Self {
            step_budget: 200_000,
            max_call_depth: 256,
        }
    }
}

/// Aggregate outcome of witnessing a batch of chains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessStats {
    /// Chains confirmed by execution.
    pub witnessed: usize,
    /// Chains with a plan that execution did not confirm.
    pub plan_found: usize,
    /// Chains that could not be concretized.
    pub static_only: usize,
    /// Chains whose interpretation panicked (contained; degraded to
    /// `static-only`).
    pub failures: usize,
}

impl WitnessStats {
    /// Accumulates another batch's counters.
    pub fn merge(&mut self, other: &WitnessStats) {
        self.witnessed += other.witnessed;
        self.plan_found += other.plan_found;
        self.static_only += other.static_only;
        self.failures += other.failures;
    }

    /// Total chains processed.
    pub fn total(&self) -> usize {
        self.witnessed + self.plan_found + self.static_only
    }
}

/// Computes the tier of one signature list (no panic containment).
fn tier_of(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    sinks: &SinkCatalog,
    signatures: &[String],
    config: &WitnessConfig,
) -> WitnessTier {
    let Some(resolved) = plan::resolve(program, hierarchy, sinks, signatures) else {
        return WitnessTier::StaticOnly;
    };
    let assignments = plan::scan_assignments(program, &resolved);
    match interp::run(program, hierarchy, &resolved, &assignments, config) {
        interp::Halt::Witnessed => WitnessTier::Witnessed,
        _ => WitnessTier::PlanFound,
    }
}

/// Witnesses every chain in place: synthesizes a plan, executes it, and
/// stores the resulting tier on each [`GadgetChain`].
///
/// Tiers are memoized per signature list, and each computation runs under
/// panic containment: a chain whose interpretation panics is recorded as
/// [`WitnessTier::StaticOnly`] and counted in [`WitnessStats::failures`]
/// instead of failing the scan.
pub fn witness_chains(
    program: &Program,
    sinks: &SinkCatalog,
    chains: &mut [GadgetChain],
    config: &WitnessConfig,
) -> WitnessStats {
    let hierarchy = Hierarchy::new(program);
    let mut memo: HashMap<Vec<String>, (WitnessTier, bool)> = HashMap::new();
    let mut stats = WitnessStats::default();
    for chain in chains.iter_mut() {
        let (tier, failed) = match memo.get(&chain.signatures) {
            Some(v) => *v,
            None => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    tier_of(program, &hierarchy, sinks, &chain.signatures, config)
                }));
                let v = match outcome {
                    Ok(tier) => (tier, false),
                    Err(_) => (WitnessTier::StaticOnly, true),
                };
                memo.insert(chain.signatures.clone(), v);
                v
            }
        };
        if failed {
            stats.failures += 1;
        }
        match tier {
            WitnessTier::Witnessed => stats.witnessed += 1,
            WitnessTier::PlanFound => stats.plan_found += 1,
            WitnessTier::StaticOnly => stats.static_only += 1,
        }
        chain.tier = Some(tier);
    }
    stats
}

/// Computes the tier of a single chain given by its signature list.
///
/// Unlike [`witness_chains`] this does not contain panics; use it where a
/// malformed-IR panic should surface (tests, debugging).
pub fn witness_signatures(
    program: &Program,
    sinks: &SinkCatalog,
    signatures: &[String],
    config: &WitnessConfig,
) -> WitnessTier {
    let hierarchy = Hierarchy::new(program);
    tier_of(program, &hierarchy, sinks, signatures, config)
}

/// Synthesizes the witness plan for a chain without executing it.
///
/// Returns `None` when the chain cannot be concretized (it would be tiered
/// [`WitnessTier::StaticOnly`]).
pub fn synthesize_plan(
    program: &Program,
    sinks: &SinkCatalog,
    signatures: &[String],
) -> Option<WitnessPlan> {
    let hierarchy = Hierarchy::new(program);
    let resolved = plan::resolve(program, &hierarchy, sinks, signatures)?;
    Some(plan::render(program, &resolved))
}

/// Executes a (possibly modified) plan against a chain and reports the tier.
///
/// The plan's `field_assignments` override the synthesized set, which makes
/// the monotonicity property directly testable: removing an assignment can
/// only demote the outcome, never promote it.
pub fn execute_plan(
    program: &Program,
    sinks: &SinkCatalog,
    signatures: &[String],
    plan: &WitnessPlan,
    config: &WitnessConfig,
) -> WitnessTier {
    let hierarchy = Hierarchy::new(program);
    let Some(resolved) = plan::resolve(program, &hierarchy, sinks, signatures) else {
        return WitnessTier::StaticOnly;
    };
    let mut assignments: Vec<(String, String)> = plan
        .field_assignments
        .iter()
        .map(|f| (f.class.clone(), f.field.clone()))
        .collect();
    assignments.sort();
    assignments.dedup();
    match interp::run(program, &hierarchy, &resolved, &assignments, config) {
        interp::Halt::Witnessed => WitnessTier::Witnessed,
        _ => WitnessTier::PlanFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{CmpOp, JType, ProgramBuilder};

    fn sigs(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    /// `t.Evil.readObject` reads `this.cmd` and passes it to `Runtime.exec`.
    fn direct_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.Evil").serializable();
        let string = cb.object_type("java.lang.String");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "t.Evil", "cmd", string.clone());
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn direct_chain_is_witnessed() {
        let p = direct_program();
        let catalog = SinkCatalog::paper();
        let chain = sigs(&["t.Evil.readObject", "java.lang.Runtime.exec"]);
        let tier = witness_signatures(&p, &catalog, &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::Witnessed);
        let plan = synthesize_plan(&p, &catalog, &chain).expect("plan");
        assert_eq!(plan.entry, "t.Evil.readObject");
        assert_eq!(plan.field_assignments.len(), 1);
        assert_eq!(plan.field_assignments[0].class, "t.Evil");
        assert_eq!(plan.field_assignments[0].field, "cmd");
        assert!(plan.alias_choices.is_empty());
    }

    #[test]
    fn removing_the_field_assignment_demotes() {
        let p = direct_program();
        let catalog = SinkCatalog::paper();
        let chain = sigs(&["t.Evil.readObject", "java.lang.Runtime.exec"]);
        let mut plan = synthesize_plan(&p, &catalog, &chain).expect("plan");
        plan.field_assignments.clear();
        let tier = execute_plan(&p, &catalog, &chain, &plan, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::PlanFound);
    }

    #[test]
    fn dead_guard_is_plan_found() {
        // flag = 0; if (flag == 0) goto skip; exec(cmd); skip: return.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.Guarded").serializable();
        let string = cb.object_type("java.lang.String");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "t.Guarded", "cmd", string.clone());
        let flag = mb.fresh();
        mb.copy(flag, mb.c_int(0));
        let skip = mb.fresh_label();
        mb.if_(CmpOp::Eq, flag, mb.c_int(0), skip);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.place(skip);
        mb.nop();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let chain = sigs(&["t.Guarded.readObject", "java.lang.Runtime.exec"]);
        let tier = witness_signatures(&p, &SinkCatalog::paper(), &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::PlanFound);
    }

    #[test]
    fn clean_argument_is_plan_found() {
        // The sink is reached, but with a constant — not attacker data.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.Clean").serializable();
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("readObject", vec![], JType::Void);
        let fixed = mb.fresh();
        let lit = mb.c_str("ls");
        mb.copy(fixed, lit);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[fixed.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let chain = sigs(&["t.Clean.readObject", "java.lang.Runtime.exec"]);
        let tier = witness_signatures(&p, &SinkCatalog::paper(), &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::PlanFound);
    }

    /// Entry → abstract `t.Base.m` → override `t.Impl.m` → exec.
    fn alias_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.Base").abstract_();
        let obj = cb.object_type("java.lang.Object");
        cb.method("m", vec![obj], JType::Void).abstract_().finish();
        cb.finish();
        let mut cb = pb.class("t.Impl").extends("t.Base").serializable();
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("m", vec![obj], JType::Void);
        let x = mb.param(0);
        let s = mb.fresh();
        mb.cast(s, string.clone(), x);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[s.into()]);
        mb.finish();
        cb.finish();
        let mut cb = pb.class("t.Entry").serializable();
        let obj = cb.object_type("java.lang.Object");
        let base_ty = cb.object_type("t.Base");
        cb.field("delegate", base_ty.clone());
        cb.field("payload", obj.clone());
        let mut mb = cb.method("readObject", vec![], JType::Void);
        let this = mb.this();
        let d = mb.fresh();
        mb.get_field(d, this, "t.Entry", "delegate", base_ty);
        let payload = mb.fresh();
        mb.get_field(payload, this, "t.Entry", "payload", obj.clone());
        let m = mb.sig("t.Base", "m", &[obj], JType::Void);
        mb.call_virtual(None, d, m, &[payload.into()]);
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn alias_run_dispatches_to_chosen_override() {
        let p = alias_program();
        let catalog = SinkCatalog::paper();
        let chain = sigs(&[
            "t.Entry.readObject",
            "t.Base.m",
            "t.Impl.m",
            "java.lang.Runtime.exec",
        ]);
        let tier = witness_signatures(&p, &catalog, &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::Witnessed);
        let plan = synthesize_plan(&p, &catalog, &chain).expect("plan");
        assert_eq!(plan.alias_choices.len(), 1);
        assert_eq!(plan.alias_choices[0].declared, "t.Base.m");
        assert_eq!(plan.alias_choices[0].chosen, "t.Impl.m");
    }

    #[test]
    fn unknown_sink_is_static_only() {
        let p = direct_program();
        let chain = sigs(&["t.Evil.readObject", "t.NoSuch.frob"]);
        let tier = witness_signatures(&p, &SinkCatalog::paper(), &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::StaticOnly);
    }

    #[test]
    fn missing_entry_body_is_static_only() {
        let p = direct_program();
        let chain = sigs(&["t.Phantom.readObject", "java.lang.Runtime.exec"]);
        let tier = witness_signatures(&p, &SinkCatalog::paper(), &chain, &WitnessConfig::default());
        assert_eq!(tier, WitnessTier::StaticOnly);
    }

    #[test]
    fn infinite_loop_hits_the_budget() {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.Loop").serializable();
        let string = cb.object_type("java.lang.String");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "t.Loop", "cmd", string.clone());
        let spin = mb.fresh_label();
        mb.place(spin);
        mb.goto(spin);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let chain = sigs(&["t.Loop.readObject", "java.lang.Runtime.exec"]);
        let config = WitnessConfig {
            step_budget: 1_000,
            ..WitnessConfig::default()
        };
        let tier = witness_signatures(&p, &SinkCatalog::paper(), &chain, &config);
        assert_eq!(tier, WitnessTier::PlanFound);
    }

    #[test]
    fn witness_chains_tiers_in_place_and_counts() {
        let p = direct_program();
        let mut chains = vec![
            GadgetChain {
                signatures: sigs(&["t.Evil.readObject", "java.lang.Runtime.exec"]),
                sink_category: "EXEC".to_owned(),
                tier: None,
                nodes: vec![],
            },
            GadgetChain {
                signatures: sigs(&["t.Phantom.readObject", "java.lang.Runtime.exec"]),
                sink_category: "EXEC".to_owned(),
                tier: None,
                nodes: vec![],
            },
        ];
        let stats = witness_chains(
            &p,
            &SinkCatalog::paper(),
            &mut chains,
            &WitnessConfig::default(),
        );
        assert_eq!(chains[0].tier, Some(WitnessTier::Witnessed));
        assert_eq!(chains[1].tier, Some(WitnessTier::StaticOnly));
        assert_eq!(stats.witnessed, 1);
        assert_eq!(stats.static_only, 1);
        assert_eq!(stats.plan_found, 0);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = WitnessStats {
            witnessed: 1,
            plan_found: 2,
            static_only: 3,
            failures: 1,
        };
        let b = WitnessStats {
            witnessed: 4,
            plan_found: 0,
            static_only: 1,
            failures: 0,
        };
        a.merge(&b);
        assert_eq!(a.witnessed, 5);
        assert_eq!(a.plan_found, 2);
        assert_eq!(a.static_only, 4);
        assert_eq!(a.failures, 1);
        assert_eq!(a.total(), 12);
    }
}
