//! Witness-plan synthesis: concretizing a reported chain.
//!
//! A reported chain is a list of method signatures (`Class.method`,
//! source-first). Between a call site and the override that actually runs,
//! the search may have crossed ALIAS edges, so consecutive hops can name the
//! *same* logical dispatch: the declared method followed by the override the
//! attacker selects by choosing a concrete subclass. Plan synthesis groups
//! those hops into **alias runs**, picks the concrete override for each run
//! (overriding-guided: the deepest element that has a body is the one whose
//! code keeps the polluted value flowing), and collects the instance fields
//! the entry object must carry so the accumulated Trigger_Condition is
//! satisfiable — exactly the data a PoC generator would need.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tabby_ir::{ClassId, Expr, Hierarchy, MethodId, Place, Program, Stmt};
use tabby_pathfinder::SinkCatalog;

/// The concrete subclass chosen at one ALIAS run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasChoice {
    /// The declared method the call site names (`Class.method`).
    pub declared: String,
    /// The override the plan instantiates (`Class.method`).
    pub chosen: String,
}

/// An instance field the crafted object graph must populate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldAssignment {
    /// Declaring class of the field (dotted binary name).
    pub class: String,
    /// Field name.
    pub field: String,
}

/// A synthesized witness plan: everything needed to concretize one chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessPlan {
    /// The concrete entry method executed first (`Class.method`).
    pub entry: String,
    /// Subclass choice per ALIAS run, in chain order.
    pub alias_choices: Vec<AliasChoice>,
    /// Fields the entry object graph must carry attacker data in, sorted.
    pub field_assignments: Vec<FieldAssignment>,
}

/// One chain hop, parsed and resolved against the program.
struct Hop {
    /// Class part of the signature.
    class: String,
    /// Method-name part of the signature.
    name: String,
    /// The class, when loaded.
    class_id: Option<ClassId>,
    /// Arities of the declared methods named [`Hop::name`] in the class.
    arities: BTreeSet<usize>,
}

/// A chain resolved far enough to execute: hop grouping, the concrete
/// override per run, and the sink's Trigger_Condition.
pub(crate) struct Resolved {
    /// `(class, name)` per hop, for call-site matching without allocation.
    pub pairs: Vec<(String, String)>,
    /// Concrete entry method (the chosen override of the first run).
    pub entry: MethodId,
    /// `run_end[i]`: last hop of the alias run beginning at hop `i`.
    pub run_end: Vec<usize>,
    /// `chosen[i]`: the body-bearing method executed for the run starting at
    /// hop `i`, when any element of that run has a body.
    pub chosen: Vec<Option<MethodId>>,
    /// The sink's Trigger_Condition (0 = receiver, i = parameter *i*).
    pub trigger_condition: Vec<u16>,
}

fn parse_hop(program: &Program, sig: &str) -> Option<Hop> {
    let (class, name) = sig.rsplit_once('.')?;
    let class_id = program.class_by_str(class);
    let mut arities = BTreeSet::new();
    if let Some(cid) = class_id {
        for m in &program.class(cid).methods {
            if program.name(m.name) == name {
                arities.insert(m.params.len());
            }
        }
    }
    Some(Hop {
        class: class.to_owned(),
        name: name.to_owned(),
        class_id,
        arities,
    })
}

/// Whether hops `a` and `b` are two faces of one dispatch (an ALIAS pair):
/// same method name, hierarchy-related classes, compatible arity.
fn alias_linked(hierarchy: &Hierarchy<'_>, a: &Hop, b: &Hop) -> bool {
    if a.name != b.name {
        return false;
    }
    let (Some(ca), Some(cb)) = (a.class_id, b.class_id) else {
        return false;
    };
    if !hierarchy.is_subtype_of(ca, cb) && !hierarchy.is_subtype_of(cb, ca) {
        return false;
    }
    a.arities.intersection(&b.arities).next().is_some()
}

/// The body-bearing method executed for the run `hops[start..=end]`: the
/// deepest override with code. Scanning back-to-front keeps the choice
/// deterministic and prefers the most-derived implementation.
fn choose(program: &Program, hops: &[Hop], start: usize, end: usize) -> Option<MethodId> {
    for hop in hops[start..=end].iter().rev() {
        let Some(cid) = hop.class_id else { continue };
        let found = program
            .class(cid)
            .methods
            .iter()
            .position(|m| program.name(m.name) == hop.name && m.body.is_some());
        if let Some(index) = found {
            return Some(MethodId {
                class: cid,
                index: index as u32,
            });
        }
    }
    None
}

/// Resolves a signature list into an executable [`Resolved`] plan skeleton.
///
/// Returns `None` — the chain stays `static-only` — when the chain is too
/// short, a signature does not parse, the final hop is not in the sink
/// catalog, the entry run has no concrete body, or the entry run swallows
/// the whole chain (nothing left to call).
pub(crate) fn resolve(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    sinks: &SinkCatalog,
    signatures: &[String],
) -> Option<Resolved> {
    if signatures.len() < 2 {
        return None;
    }
    let hops: Vec<Hop> = signatures
        .iter()
        .map(|s| parse_hop(program, s))
        .collect::<Option<_>>()?;
    let last = hops.len() - 1;
    let sink = sinks
        .entries()
        .iter()
        .find(|s| s.class == hops[last].class && s.method == hops[last].name)?;
    // run_end, computed back-to-front from the pairwise alias links.
    let mut run_end = vec![0usize; hops.len()];
    run_end[last] = last;
    for i in (0..last).rev() {
        run_end[i] = if alias_linked(hierarchy, &hops[i], &hops[i + 1]) {
            run_end[i + 1]
        } else {
            i
        };
    }
    if run_end[0] == last {
        // The whole chain collapsed into one alias run: there is no call
        // step left to execute, so nothing can be witnessed.
        return None;
    }
    let chosen: Vec<Option<MethodId>> = (0..hops.len())
        .map(|i| choose(program, &hops, i, run_end[i]))
        .collect();
    let entry = chosen[0].filter(|mid| program.method(*mid).body.is_some())?;
    Some(Resolved {
        pairs: hops.into_iter().map(|h| (h.class, h.name)).collect(),
        entry,
        run_end,
        chosen,
        trigger_condition: sink.trigger_condition.clone(),
    })
}

/// The instance fields loaded by any body the plan may execute. These are
/// the slots the crafted object graph must populate: during execution, a
/// load of one of these fields from an attacker-built object materializes a
/// fresh attacker-controlled value.
pub(crate) fn scan_assignments(program: &Program, resolved: &Resolved) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for mid in resolved.chosen.iter().flatten() {
        let Some(body) = &program.method(*mid).body else {
            continue;
        };
        for stmt in &body.stmts {
            if let Stmt::Assign {
                rhs: Expr::Load(Place::InstanceField { field, .. }),
                ..
            } = stmt
            {
                out.push((
                    program.name(field.class).to_owned(),
                    program.name(field.name).to_owned(),
                ));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Renders the user-facing [`WitnessPlan`] from a resolved skeleton.
pub(crate) fn render(program: &Program, resolved: &Resolved) -> WitnessPlan {
    let sig_of = |mid: MethodId| {
        format!(
            "{}.{}",
            program.name(program.class(mid.class).name),
            program.name(program.method(mid).name)
        )
    };
    let mut alias_choices = Vec::new();
    let mut i = 0usize;
    while i < resolved.pairs.len() {
        let end = resolved.run_end[i];
        if end > i {
            if let Some(mid) = resolved.chosen[i] {
                alias_choices.push(AliasChoice {
                    declared: format!("{}.{}", resolved.pairs[i].0, resolved.pairs[i].1),
                    chosen: sig_of(mid),
                });
            }
        }
        i = end + 1;
    }
    WitnessPlan {
        entry: sig_of(resolved.entry),
        alias_choices,
        field_assignments: scan_assignments(program, resolved)
            .into_iter()
            .map(|(class, field)| FieldAssignment { class, field })
            .collect(),
    }
}
