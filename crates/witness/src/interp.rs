//! A small-step interpreter over the lifted IR.
//!
//! The interpreter executes a witness plan concretely: it runs the entry
//! method on an attacker-built receiver, follows the chain hop-by-hop
//! through resolved call sites (dispatching each alias run to the plan's
//! chosen override), and checks at the sink call site whether the positions
//! named by the sink's Trigger_Condition actually carry attacker taint.
//!
//! Everything the attacker cannot determine is a *chameleon*: a fresh
//! opaque object whose fields materialize on demand — tainted when the plan
//! assigns that field, absent otherwise. Calls that leave the chain are
//! havocked (a fresh value tainted iff any input was), never stepped into,
//! so execution cost stays proportional to the chain, not the program.
//!
//! The interpreter is total by construction: a step budget and a recursion
//! cap bound runaway loops, unmodeled statements fall back to conservative
//! no-ops, and the driver wraps each chain in panic containment consistent
//! with the degraded-mode semantics used elsewhere in the pipeline.

use crate::plan::Resolved;
use crate::WitnessConfig;
use std::collections::HashMap;
use tabby_ir::{
    BinOp, CmpOp, Condition, Expr, FieldRef, Hierarchy, IdentityRef, InvokeExpr, InvokeKind, Local,
    MethodId, Operand, Place, Program, Stmt, Symbol, UnOp,
};

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Halt {
    /// The sink call site was reached with every Trigger_Condition position
    /// carrying attacker taint.
    Witnessed,
    /// The sink call site was reached, but some required position was clean.
    Unpolluted,
    /// The entry returned without ever reaching the sink.
    Finished,
    /// An explicit `throw` ended the execution.
    Thrown,
    /// Step budget or recursion cap exhausted.
    Budget,
}

/// Stop reasons propagated through call frames as `Err`.
enum Stop {
    Witnessed,
    Unpolluted,
    Thrown,
    Budget,
}

/// A concrete-enough runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// The null reference.
    Null,
    /// An integral constant (booleans included).
    Int(i64),
    /// A value we track taint for but not structure (strings, floats, …).
    Opaque,
    /// A heap object.
    Ref(usize),
}

/// A tainted value: the value plus whether the attacker controls it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TV {
    v: Val,
    t: bool,
}

impl TV {
    const NULL: TV = TV {
        v: Val::Null,
        t: false,
    };
}

/// A heap object. `tainted` marks attacker-built objects: loading a
/// plan-assigned field from one materializes attacker data.
struct Obj {
    fields: HashMap<(Symbol, Symbol), TV>,
    elems: Vec<TV>,
    tainted: bool,
}

/// Upper bound on materialized array storage, to keep a hostile index from
/// ballooning the heap.
const MAX_ELEMS: usize = 4096;

struct Interp<'a> {
    program: &'a Program,
    hierarchy: &'a Hierarchy<'a>,
    resolved: &'a Resolved,
    /// Sorted `(class, field)` pairs the plan assigns.
    assignments: &'a [(String, String)],
    heap: Vec<Obj>,
    statics: HashMap<(Symbol, Symbol), TV>,
    steps: usize,
    step_budget: usize,
    max_depth: usize,
}

/// Executes a resolved plan and reports how it halted.
pub(crate) fn run(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    resolved: &Resolved,
    assignments: &[(String, String)],
    config: &WitnessConfig,
) -> Halt {
    let mut interp = Interp {
        program,
        hierarchy,
        resolved,
        assignments,
        heap: Vec::new(),
        statics: HashMap::new(),
        steps: 0,
        step_budget: config.step_budget,
        max_depth: config.max_call_depth,
    };
    let entry = program.method(resolved.entry);
    let this = if entry.is_static() {
        None
    } else {
        Some(interp.fresh(true))
    };
    let args: Vec<TV> = (0..entry.params.len())
        .map(|_| interp.fresh(true))
        .collect();
    // The entry's own alias run is already "executed" by entering it: the
    // cursor starts past the run so the first call out of the entry body is
    // matched against the next logical hop.
    let cursor = resolved.run_end[0];
    match interp.exec_method(resolved.entry, this, &args, cursor, 0) {
        Ok(_) => Halt::Finished,
        Err(Stop::Witnessed) => Halt::Witnessed,
        Err(Stop::Unpolluted) => Halt::Unpolluted,
        Err(Stop::Thrown) => Halt::Thrown,
        Err(Stop::Budget) => Halt::Budget,
    }
}

fn get_local(locals: &[TV], l: Local) -> TV {
    locals.get(l.0 as usize).copied().unwrap_or(TV::NULL)
}

fn set_local(locals: &mut Vec<TV>, l: Local, v: TV) {
    let i = l.0 as usize;
    if i >= locals.len() {
        locals.resize(i + 1, TV::NULL);
    }
    locals[i] = v;
}

impl<'a> Interp<'a> {
    /// Allocates a fresh chameleon object.
    fn fresh(&mut self, tainted: bool) -> TV {
        self.heap.push(Obj {
            fields: HashMap::new(),
            elems: Vec::new(),
            tainted,
        });
        TV {
            v: Val::Ref(self.heap.len() - 1),
            t: tainted,
        }
    }

    fn tick(&mut self) -> Result<(), Stop> {
        self.steps += 1;
        if self.steps > self.step_budget {
            Err(Stop::Budget)
        } else {
            Ok(())
        }
    }

    /// Whether the plan assigns attacker data to `field`.
    fn assigned(&self, field: &FieldRef) -> bool {
        let key = (
            self.program.name(field.class),
            self.program.name(field.name),
        );
        self.assignments
            .binary_search_by(|(c, f)| (c.as_str(), f.as_str()).cmp(&key))
            .is_ok()
    }

    /// Whether a call site's resolved target is chain hop `idx`, using the
    /// same resolution the search used to label the hop: resolve against the
    /// declared owner's hierarchy, falling back to the phantom name.
    fn matches_hop(&self, inv: &InvokeExpr, idx: usize) -> bool {
        let (class, name) = &self.resolved.pairs[idx];
        let p = self.program;
        if p.name(inv.callee.name) != name {
            return false;
        }
        if let Some(cid) = p.class_by_name(inv.callee.class) {
            if let Some(mid) =
                self.hierarchy
                    .resolve_method(cid, inv.callee.name, inv.callee.params.len())
            {
                return p.name(p.class(mid.class).name) == class;
            }
        }
        p.name(inv.callee.class) == class
    }

    fn operand(&self, locals: &[TV], op: &Operand) -> TV {
        match op {
            Operand::Local(l) => get_local(locals, *l),
            Operand::Const(c) => match c {
                tabby_ir::Constant::Int(v) => TV {
                    v: Val::Int(*v),
                    t: false,
                },
                tabby_ir::Constant::Null => TV::NULL,
                _ => TV {
                    v: Val::Opaque,
                    t: false,
                },
            },
        }
    }

    fn exec_method(
        &mut self,
        mid: MethodId,
        this: Option<TV>,
        args: &[TV],
        cursor: usize,
        depth: usize,
    ) -> Result<Option<TV>, Stop> {
        if depth > self.max_depth {
            return Err(Stop::Budget);
        }
        let method = self.program.method(mid);
        let Some(body) = &method.body else {
            return Ok(None);
        };
        let mut locals = vec![TV::NULL; body.locals as usize];
        let mut pc = 0usize;
        while pc < body.stmts.len() {
            self.tick()?;
            match &body.stmts[pc] {
                Stmt::Identity { local, source } => {
                    let v = match source {
                        IdentityRef::This => this.unwrap_or(TV::NULL),
                        IdentityRef::Param(i) => args.get(*i as usize).copied().unwrap_or(TV::NULL),
                        IdentityRef::CaughtException => TV::NULL,
                    };
                    set_local(&mut locals, *local, v);
                }
                Stmt::Assign { place, rhs } => {
                    let v = self.eval(&mut locals, rhs, cursor, depth)?;
                    self.store(&mut locals, place, v);
                }
                Stmt::Invoke(inv) => {
                    self.invoke(&locals, inv, cursor, depth)?;
                }
                Stmt::Return(op) => {
                    return Ok(op.as_ref().map(|o| self.operand(&locals, o)));
                }
                Stmt::If { cond, target } => {
                    if self.decide(&locals, cond) {
                        pc = body.target(*target);
                        continue;
                    }
                }
                Stmt::Goto(l) => {
                    pc = body.target(*l);
                    continue;
                }
                Stmt::Switch {
                    key,
                    cases,
                    default,
                } => {
                    let k = self.operand(&locals, key);
                    let label = match k.v {
                        Val::Int(v) => cases
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, l)| *l)
                            .unwrap_or(*default),
                        _ => *default,
                    };
                    pc = body.target(label);
                    continue;
                }
                Stmt::Throw(_) => return Err(Stop::Thrown),
                Stmt::Ret(_) => return Ok(None),
                Stmt::EnterMonitor(_) | Stmt::ExitMonitor(_) | Stmt::Nop | Stmt::Breakpoint => {}
            }
            pc += 1;
        }
        Ok(None)
    }

    /// Evaluates a call: the sink check happens here, on-chain calls step
    /// into the plan's chosen override, everything else is havocked.
    fn invoke(
        &mut self,
        locals: &[TV],
        inv: &InvokeExpr,
        cursor: usize,
        depth: usize,
    ) -> Result<TV, Stop> {
        self.tick()?;
        let base = inv.base.as_ref().map(|o| self.operand(locals, o));
        let args: Vec<TV> = inv.args.iter().map(|o| self.operand(locals, o)).collect();
        let next = cursor + 1;
        if inv.kind != InvokeKind::Dynamic
            && next < self.resolved.pairs.len()
            && self.matches_hop(inv, next)
        {
            let end = self.resolved.run_end[next];
            if end == self.resolved.pairs.len() - 1 {
                // Sink arrival: check the Trigger_Condition concretely.
                let polluted = self.resolved.trigger_condition.iter().all(|&pos| {
                    if pos == 0 {
                        base.map(|b| b.t).unwrap_or(false)
                    } else {
                        args.get(pos as usize - 1).map(|a| a.t).unwrap_or(false)
                    }
                });
                return Err(if polluted {
                    Stop::Witnessed
                } else {
                    Stop::Unpolluted
                });
            }
            if let Some(mid) = self.resolved.chosen[next] {
                let callee = self.program.method(mid);
                let this = if callee.is_static() { None } else { base };
                let ret = self.exec_method(mid, this, &args, end, depth + 1)?;
                return Ok(ret.unwrap_or(TV::NULL));
            }
            // No element of the run has a body (fully phantom dispatch):
            // fall through to havoc.
        }
        let tainted = base.map(|b| b.t).unwrap_or(false) || args.iter().any(|a| a.t);
        Ok(self.fresh(tainted))
    }

    fn eval(
        &mut self,
        locals: &mut Vec<TV>,
        expr: &Expr,
        cursor: usize,
        depth: usize,
    ) -> Result<TV, Stop> {
        Ok(match expr {
            Expr::Use(op) => self.operand(locals, op),
            Expr::Load(place) => self.load(locals, place),
            Expr::New(_) => self.fresh(false),
            Expr::NewArray { len, .. } => {
                let n = match self.operand(locals, len).v {
                    Val::Int(n) if n >= 0 => (n as usize).min(MAX_ELEMS),
                    _ => 0,
                };
                let tv = self.fresh(false);
                if let Val::Ref(i) = tv.v {
                    self.heap[i].elems = vec![TV::NULL; n];
                }
                tv
            }
            Expr::Cast { value, .. } => self.operand(locals, value),
            Expr::InstanceOf { value, .. } => TV {
                v: Val::Opaque,
                t: self.operand(locals, value).t,
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = self.operand(locals, lhs);
                let r = self.operand(locals, rhs);
                let v = match (l.v, r.v) {
                    (Val::Int(a), Val::Int(b)) => Val::Int(binop(*op, a, b)),
                    _ => Val::Opaque,
                };
                TV { v, t: l.t || r.t }
            }
            Expr::Unary { op, value } => {
                let x = self.operand(locals, value);
                let v = match (op, x.v) {
                    (UnOp::Neg, Val::Int(a)) => Val::Int(a.wrapping_neg()),
                    _ => Val::Opaque,
                };
                TV { v, t: x.t }
            }
            Expr::ArrayLength(op) => {
                let x = self.operand(locals, op);
                let v = match x.v {
                    Val::Ref(i) => Val::Int(self.heap[i].elems.len() as i64),
                    _ => Val::Opaque,
                };
                TV { v, t: x.t }
            }
            Expr::Invoke(inv) => self.invoke(locals, inv, cursor, depth)?,
        })
    }

    fn load(&mut self, locals: &[TV], place: &Place) -> TV {
        match place {
            Place::Local(l) => get_local(locals, *l),
            Place::InstanceField { base, field } => {
                let b = get_local(locals, *base);
                if let Val::Ref(i) = b.v {
                    let key = (field.class, field.name);
                    if let Some(v) = self.heap[i].fields.get(&key) {
                        return *v;
                    }
                    if self.heap[i].tainted && self.assigned(field) {
                        // Materialize the attacker-assigned field once per
                        // object, so repeated loads see the same value.
                        let v = self.fresh(true);
                        self.heap[i].fields.insert(key, v);
                        return v;
                    }
                }
                TV::NULL
            }
            Place::StaticField(f) => {
                let key = (f.class, f.name);
                if let Some(v) = self.statics.get(&key) {
                    return *v;
                }
                // Statics are environment-provided and never attacker data.
                let v = self.fresh(false);
                self.statics.insert(key, v);
                v
            }
            Place::ArrayElem { base, index } => {
                let b = get_local(locals, *base);
                let idx = self.operand(locals, index);
                if let Val::Ref(i) = b.v {
                    if let Val::Int(n) = idx.v {
                        if n >= 0 && (n as usize) < self.heap[i].elems.len() {
                            return self.heap[i].elems[n as usize];
                        }
                    }
                    if self.heap[i].tainted {
                        // Unmaterialized slot of an attacker-built array.
                        return self.fresh(true);
                    }
                }
                TV::NULL
            }
        }
    }

    fn store(&mut self, locals: &mut Vec<TV>, place: &Place, v: TV) {
        match place {
            Place::Local(l) => set_local(locals, *l, v),
            Place::InstanceField { base, field } => {
                if let Val::Ref(i) = get_local(locals, *base).v {
                    self.heap[i].fields.insert((field.class, field.name), v);
                }
            }
            Place::StaticField(f) => {
                self.statics.insert((f.class, f.name), v);
            }
            Place::ArrayElem { base, index } => {
                let idx = self.operand(locals, index);
                if let (Val::Ref(i), Val::Int(n)) = (get_local(locals, *base).v, idx.v) {
                    if n >= 0 && (n as usize) < MAX_ELEMS {
                        let elems = &mut self.heap[i].elems;
                        if elems.len() <= n as usize {
                            elems.resize(n as usize + 1, TV::NULL);
                        }
                        elems[n as usize] = v;
                    }
                }
            }
        }
    }

    /// Decides a branch condition. Undecidable comparisons (opaque values)
    /// conservatively fall through, matching the straight-line reading the
    /// effectiveness oracle uses.
    fn decide(&self, locals: &[TV], cond: &Condition) -> bool {
        let l = self.operand(locals, &cond.lhs);
        let r = self.operand(locals, &cond.rhs);
        match (l.v, r.v) {
            (Val::Int(a), Val::Int(b)) => match cond.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            },
            (Val::Null, Val::Null) => matches!(cond.op, CmpOp::Eq),
            (Val::Null, Val::Ref(_)) | (Val::Ref(_), Val::Null) => matches!(cond.op, CmpOp::Ne),
            (Val::Ref(a), Val::Ref(b)) => match cond.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                _ => false,
            },
            _ => false,
        }
    }
}

fn binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
        BinOp::Ushr => ((a as u64).wrapping_shr(b as u32)) as i64,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Cmp => match a.cmp(&b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        },
    }
}
