//! Property tests for the witness stage's two core soundness claims:
//!
//! 1. **Ineffective chains never witness.** A chain whose sink argument is
//!    sanitized (replaced by a constant) or whose sink sits behind a dead
//!    guard — the ⊥-Trigger_Condition shapes — must never come back tier
//!    `witnessed`, at any relay depth or field count.
//! 2. **Plan monotonicity.** Removing field assignments from a synthesized
//!    plan can only demote the execution outcome, never promote it: fewer
//!    polluted fields means less taint, and the interpreter must respect
//!    that ordering for every subset.
//!
//! Programs are generated structurally — relay depth, guard/sanitize
//! toggles, and the number of serialized fields all vary — so the
//! interpreter is exercised across call/return, dispatch, and taint
//! plumbing rather than on one fixed gadget.

use proptest::prelude::*;
use tabby_ir::{CmpOp, JType, MethodBuilder, Program, ProgramBuilder};
use tabby_pathfinder::{SinkCatalog, WitnessTier};
use tabby_witness::{execute_plan, synthesize_plan, witness_signatures, WitnessConfig};

/// Emits the sink tail of a method: optionally sanitize the argument,
/// optionally hide the call behind a guard that constant-folds to "skip".
fn emit_sink(mb: &mut MethodBuilder<'_, '_>, guard: bool, sanitize: bool, arg: tabby_ir::Local) {
    let string = mb.object_type("java.lang.String");
    let arg = if sanitize {
        let clean = mb.fresh();
        let lit = mb.c_str("ls");
        mb.copy(clean, lit);
        clean
    } else {
        arg
    };
    let skip = mb.fresh_label();
    if guard {
        let flag = mb.fresh();
        mb.copy(flag, mb.c_int(0));
        mb.if_(CmpOp::Eq, flag, mb.c_int(0), skip);
    }
    let rt = mb.fresh();
    mb.copy(rt, mb.c_null());
    let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
    mb.call_virtual(None, rt, exec, &[arg.into()]);
    if guard {
        mb.place(skip);
        mb.nop();
    }
}

/// Builds `t.Entry.readObject -> step0 -> ... -> step{hops-1} -> exec`
/// with `nfields` serialized String fields, the first of which carries the
/// payload. Returns the program and the chain's signature list.
fn build(hops: usize, guard: bool, sanitize: bool, nfields: usize) -> (Program, Vec<String>) {
    let mut pb = ProgramBuilder::new();
    pb.class("java.io.Serializable").interface().finish();
    let mut cb = pb.class("t.Entry").serializable();
    let string = cb.object_type("java.lang.String");
    for i in 0..nfields {
        cb.field(&format!("f{i}"), string.clone());
    }
    let mut mb = cb.method("readObject", vec![], JType::Void);
    let this = mb.this();
    let mut payload = None;
    for i in 0..nfields {
        let l = mb.fresh();
        mb.get_field(l, this, "t.Entry", &format!("f{i}"), string.clone());
        if i == 0 {
            payload = Some(l);
        }
    }
    let payload = payload.expect("at least one field");
    if hops == 0 {
        emit_sink(&mut mb, guard, sanitize, payload);
    } else {
        let step = mb.sig("t.Entry", "step0", &[string.clone()], JType::Void);
        mb.call_virtual(None, this, step, &[payload.into()]);
    }
    mb.finish();
    for j in 0..hops {
        let mut mb = cb.method(&format!("step{j}"), vec![string.clone()], JType::Void);
        let this = mb.this();
        let x = mb.param(0);
        if j + 1 == hops {
            emit_sink(&mut mb, guard, sanitize, x);
        } else {
            let next = mb.sig(
                "t.Entry",
                &format!("step{}", j + 1),
                &[string.clone()],
                JType::Void,
            );
            mb.call_virtual(None, this, next, &[x.into()]);
        }
        mb.finish();
    }
    cb.finish();
    let mut signatures = vec!["t.Entry.readObject".to_owned()];
    for j in 0..hops {
        signatures.push(format!("t.Entry.step{j}"));
    }
    signatures.push("java.lang.Runtime.exec".to_owned());
    (pb.build(), signatures)
}

proptest! {
    /// Sanitized or guarded chains are ⊥-TC: a plan exists (the shape is
    /// right) but execution must not confirm the sink. Unmodified chains
    /// must witness — the interpreter has no excuse at these sizes.
    #[test]
    fn ineffective_chains_never_witness(
        hops in 0usize..3,
        guard in any::<bool>(),
        sanitize in any::<bool>(),
        nfields in 1usize..4,
    ) {
        let (program, signatures) = build(hops, guard, sanitize, nfields);
        let tier = witness_signatures(
            &program,
            &SinkCatalog::paper(),
            &signatures,
            &WitnessConfig::default(),
        );
        if guard || sanitize {
            prop_assert_eq!(tier, WitnessTier::PlanFound);
        } else {
            prop_assert_eq!(tier, WitnessTier::Witnessed);
        }
    }

    /// Executing a plan with any subset of its field assignments never
    /// out-ranks the full plan, and dropping the payload-bearing
    /// assignment specifically must forfeit `witnessed`.
    #[test]
    fn removing_plan_assignments_never_promotes(
        hops in 0usize..3,
        nfields in 1usize..4,
        mask in any::<u8>(),
    ) {
        let (program, signatures) = build(hops, false, false, nfields);
        let catalog = SinkCatalog::paper();
        let config = WitnessConfig::default();
        let full_plan =
            synthesize_plan(&program, &catalog, &signatures).expect("effective chain has a plan");
        let full = execute_plan(&program, &catalog, &signatures, &full_plan, &config);
        prop_assert_eq!(full, WitnessTier::Witnessed);

        let mut subset = full_plan.clone();
        subset.field_assignments = full_plan
            .field_assignments
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let sub = execute_plan(&program, &catalog, &signatures, &subset, &config);
        prop_assert!(sub <= full, "subset plan out-ranked the full plan: {sub} > {full}");
        let payload_kept = subset
            .field_assignments
            .iter()
            .any(|f| f.class == "t.Entry" && f.field == "f0");
        if payload_kept {
            prop_assert_eq!(sub, WitnessTier::Witnessed);
        } else {
            prop_assert_ne!(sub, WitnessTier::Witnessed);
        }
    }
}
