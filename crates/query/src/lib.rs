//! # tabby-query — TQL, a textual query language for the Tabby CPG
//!
//! The paper stores its code property graph in Neo4j precisely so that
//! analysts can interrogate it with Cypher (§II-B, §III-E). This crate is
//! that layer for the reproduction: a Cypher-inspired textual language
//! (TQL) over the embedded `tabby_graph` store, with
//!
//! - a lexer + recursive-descent parser producing span-carrying errors
//!   ([`parse`], [`ParseError::render`]),
//! - a planner that lowers patterns onto store indices and picks the
//!   cheaper end of the pattern chain as the anchor ([`plan`]),
//! - a streaming, budget-aware executor over the programmatic
//!   `tabby_graph::query` matcher ([`rows`], [`run_query`]), and
//! - built-in named queries for the paper's analyst idioms
//!   ([`builtins::BUILTINS`]).
//!
//! ```
//! use tabby_graph::{Graph, Value};
//! use tabby_query::{run_query, ExecConfig};
//!
//! let mut g = Graph::new();
//! let method = g.label("Method");
//! let call = g.edge_type("CALL");
//! let name = g.prop_key("NAME");
//! let a = g.add_node(method);
//! let b = g.add_node(method);
//! g.set_node_prop(a, name, Value::from("readObject"));
//! g.set_node_prop(b, name, Value::from("exec"));
//! g.add_edge(call, a, b);
//!
//! let out = run_query(
//!     &g,
//!     "MATCH (m:Method {NAME: \"readObject\"})-[:CALL*1..5]->(s:Method) RETURN s.NAME",
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(out.rows, vec![vec![serde_json::json!("exec")]]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod builtins;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::TqlQuery;
pub use error::{ParseError, Span};
pub use exec::{
    columns, rows, run_query, run_query_with, value_to_json, ExecConfig, QueryOutput, RowIter,
};
pub use parser::parse;
pub use plan::{plan, Plan, VarBinding};
