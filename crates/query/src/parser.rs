//! Recursive-descent parser for TQL.
//!
//! Grammar (keywords case-insensitive, identifiers case-sensitive):
//!
//! ```text
//! query   := MATCH pattern (WHERE expr)? RETURN proj (',' proj)* (LIMIT INT)?
//! pattern := node (hop node)*
//! node    := '(' IDENT? (':' IDENT)? ('{' IDENT ':' literal (',' ...)* '}')? ')'
//! hop     := '-' '[' body ']' '->'   |   '<' '-' '[' body ']' '-'   |   '-' '[' body ']' '-'
//! body    := IDENT? ':' IDENT ('*' range?)?
//! range   := INT ('..' INT)?  |  '..' INT
//! expr    := and (OR and)* ; and := unary (AND unary)*
//! unary   := NOT unary | '(' expr ')' | IDENT '.' IDENT op literal
//! op      := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>=' | CONTAINS | STARTS WITH | ENDS WITH
//! literal := STRING | '-'? INT | TRUE | FALSE
//! proj    := IDENT ('.' IDENT)?
//! ```
//!
//! A bare `*` repetition means `*1..8` (TQL requires bounded repetition;
//! the executor's budgets are the backstop, not the semantics).

use crate::ast::{
    Cmp, CmpOp, Expr, HopDir, HopPat, Literal, NodePat, Pattern, Projection, TqlQuery,
};
use crate::error::{ParseError, Span};
use crate::lexer::{lex, Tok, Token};

/// The repetition bound `*` expands to: `*1..8`.
pub const DEFAULT_VARLEN_MAX: usize = 8;

/// Parses one TQL query.
pub fn parse(src: &str) -> Result<TqlQuery, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: src.len(),
    };
    let query = parser.query()?;
    if let Some(token) = parser.peek() {
        return Err(ParseError::new(
            format!("unexpected trailing {}", describe(&token.tok)),
            token.span,
        ));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Byte length of the source, for end-of-input spans.
    end: usize,
}

fn describe(tok: &Tok) -> String {
    match tok {
        Tok::Ident(name) => format!("`{name}`"),
        Tok::Str(_) => "string literal".to_owned(),
        Tok::Int(i) => format!("`{i}`"),
        Tok::LParen => "`(`".to_owned(),
        Tok::RParen => "`)`".to_owned(),
        Tok::LBracket => "`[`".to_owned(),
        Tok::RBracket => "`]`".to_owned(),
        Tok::LBrace => "`{`".to_owned(),
        Tok::RBrace => "`}`".to_owned(),
        Tok::Colon => "`:`".to_owned(),
        Tok::Comma => "`,`".to_owned(),
        Tok::Dot => "`.`".to_owned(),
        Tok::DotDot => "`..`".to_owned(),
        Tok::Star => "`*`".to_owned(),
        Tok::Dash => "`-`".to_owned(),
        Tok::Lt => "`<`".to_owned(),
        Tok::Gt => "`>`".to_owned(),
        Tok::Eq => "`=`".to_owned(),
        Tok::Ne => "`<>`".to_owned(),
        Tok::Le => "`<=`".to_owned(),
        Tok::Ge => "`>=`".to_owned(),
    }
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eof_span(&self) -> Span {
        Span::new(self.end, self.end)
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| self.eof_span())
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    /// Consumes the next token if it equals `tok`.
    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect(&mut self, tok: &Tok, context: &str) -> Result<Span, ParseError> {
        match self.peek() {
            Some(t) if &t.tok == tok => {
                let span = t.span;
                self.pos += 1;
                Ok(span)
            }
            Some(t) => Err(ParseError::new(
                format!(
                    "expected {} {}, found {}",
                    describe(tok),
                    context,
                    describe(&t.tok)
                ),
                t.span,
            )),
            None => Err(ParseError::new(
                format!("expected {} {}, found end of query", describe(tok), context),
                self.eof_span(),
            )),
        }
    }

    /// Consumes the next token if it is the given keyword
    /// (case-insensitive identifier match).
    fn eat_keyword(&mut self, word: &str) -> bool {
        if let Some(Token {
            tok: Tok::Ident(name),
            ..
        }) = self.peek()
        {
            if name.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_keyword(word) {
            return Ok(());
        }
        match self.peek() {
            Some(t) => Err(ParseError::new(
                format!("expected `{word}`, found {}", describe(&t.tok)),
                t.span,
            )),
            None => Err(ParseError::new(
                format!("expected `{word}`, found end of query"),
                self.eof_span(),
            )),
        }
    }

    fn ident(&mut self, context: &str) -> Result<(String, Span), ParseError> {
        match self.advance() {
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => Ok((name, span)),
            Some(t) => Err(ParseError::new(
                format!("expected {context}, found {}", describe(&t.tok)),
                t.span,
            )),
            None => Err(ParseError::new(
                format!("expected {context}, found end of query"),
                self.eof_span(),
            )),
        }
    }

    fn int(&mut self, context: &str) -> Result<(i64, Span), ParseError> {
        match self.advance() {
            Some(Token {
                tok: Tok::Int(value),
                span,
            }) => Ok((value, span)),
            Some(t) => Err(ParseError::new(
                format!("expected {context}, found {}", describe(&t.tok)),
                t.span,
            )),
            None => Err(ParseError::new(
                format!("expected {context}, found end of query"),
                self.eof_span(),
            )),
        }
    }

    // ----- grammar ----------------------------------------------------------

    fn query(&mut self) -> Result<TqlQuery, ParseError> {
        self.expect_keyword("MATCH")?;
        let pattern = self.pattern()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_keyword("RETURN")?;
        let mut returns = vec![self.projection()?];
        while self.eat(&Tok::Comma) {
            returns.push(self.projection()?);
        }
        let limit = if self.eat_keyword("LIMIT") {
            let (value, span) = self.int("a row count after LIMIT")?;
            if value < 0 {
                return Err(ParseError::new("LIMIT must be non-negative", span));
            }
            Some(value as usize)
        } else {
            None
        };
        Ok(TqlQuery {
            pattern,
            where_clause,
            returns,
            limit,
        })
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut nodes = vec![self.node()?];
        let mut hops = Vec::new();
        while matches!(self.peek().map(|t| &t.tok), Some(Tok::Dash) | Some(Tok::Lt)) {
            hops.push(self.hop()?);
            nodes.push(self.node()?);
        }
        Ok(Pattern { nodes, hops })
    }

    fn node(&mut self) -> Result<NodePat, ParseError> {
        let open = self.expect(&Tok::LParen, "to start a node pattern")?;
        let mut node = NodePat {
            var: None,
            label: None,
            props: Vec::new(),
            span: open,
        };
        if let Some(Token {
            tok: Tok::Ident(_), ..
        }) = self.peek()
        {
            let (name, _) = self.ident("a variable name")?;
            node.var = Some(name);
        }
        if self.eat(&Tok::Colon) {
            let (label, _) = self.ident("a label after `:`")?;
            node.label = Some(label);
        }
        if self.eat(&Tok::LBrace) {
            loop {
                let (key, _) = self.ident("a property name")?;
                self.expect(&Tok::Colon, "after the property name")?;
                let value = self.literal()?;
                node.props.push((key, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace, "to close the property map")?;
        }
        let close = self.expect(&Tok::RParen, "to close the node pattern")?;
        node.span = Span::new(open.start, close.end);
        Ok(node)
    }

    fn hop(&mut self) -> Result<HopPat, ParseError> {
        let start = self.here();
        // `<-[body]-` vs `-[body]->` vs `-[body]-`.
        let leading_lt = self.eat(&Tok::Lt);
        self.expect(&Tok::Dash, "to start an edge pattern")?;
        self.expect(&Tok::LBracket, "to open the edge pattern")?;
        let mut var = None;
        if let Some(Token {
            tok: Tok::Ident(_), ..
        }) = self.peek()
        {
            let (name, _) = self.ident("an edge variable")?;
            var = Some(name);
        }
        self.expect(
            &Tok::Colon,
            "before the edge type (edge patterns must name a type, e.g. -[:CALL]->)",
        )?;
        let (ty, _) = self.ident("an edge type after `:`")?;
        let (min, max) = if self.eat(&Tok::Star) {
            self.range()?
        } else {
            (1, 1)
        };
        let bracket = self.expect(&Tok::RBracket, "to close the edge pattern")?;
        self.expect(&Tok::Dash, "after `]`")?;
        let trailing_gt = self.eat(&Tok::Gt);
        let dir = match (leading_lt, trailing_gt) {
            (true, true) => {
                return Err(ParseError::new(
                    "an edge pattern cannot point both ways (`<-[..]->`)",
                    Span::new(start.start, self.here().start),
                ))
            }
            (true, false) => HopDir::In,
            (false, true) => HopDir::Out,
            (false, false) => HopDir::Both,
        };
        let span = Span::new(start.start, self.tokens[self.pos - 1].span.end);
        if var.is_some() && !(min == 1 && max == 1) {
            return Err(ParseError::new(
                "edge variables are not supported on variable-length hops",
                span,
            ));
        }
        if min > max {
            return Err(ParseError::new(
                format!("repetition range `*{min}..{max}` is empty (min exceeds max)"),
                Span::new(start.start, bracket.end),
            ));
        }
        Ok(HopPat {
            var,
            ty,
            dir,
            min,
            max,
            span,
        })
    }

    /// Parses what follows `*`: nothing (→ `1..8`), `n`, `n..m`, or `..m`.
    fn range(&mut self) -> Result<(usize, usize), ParseError> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::Int(_)) => {
                let (min, span) = self.int("a repetition bound")?;
                if min < 0 {
                    return Err(ParseError::new(
                        "repetition bounds must be non-negative",
                        span,
                    ));
                }
                if self.eat(&Tok::DotDot) {
                    match self.peek().map(|t| &t.tok) {
                        Some(Tok::Int(_)) => {
                            let (max, span) = self.int("a repetition upper bound")?;
                            if max < 0 {
                                return Err(ParseError::new(
                                    "repetition bounds must be non-negative",
                                    span,
                                ));
                            }
                            Ok((min as usize, max as usize))
                        }
                        _ => Err(ParseError::new(
                            "unbounded repetition is not supported; give an explicit upper bound (e.g. `*1..5`)",
                            self.here(),
                        )),
                    }
                } else {
                    Ok((min as usize, min as usize))
                }
            }
            Some(Tok::DotDot) => {
                self.pos += 1;
                let (max, span) = self.int("a repetition upper bound")?;
                if max < 0 {
                    return Err(ParseError::new(
                        "repetition bounds must be non-negative",
                        span,
                    ));
                }
                Ok((1, max as usize))
            }
            _ => Ok((1, DEFAULT_VARLEN_MAX)),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.eat(&Tok::Dash) {
            let (value, span) = self.int("an integer after `-`")?;
            let negated = value
                .checked_neg()
                .ok_or_else(|| ParseError::new("integer literal is out of range", span))?;
            return Ok(Literal::Int(negated));
        }
        match self.advance() {
            Some(Token {
                tok: Tok::Str(s), ..
            }) => Ok(Literal::Str(s)),
            Some(Token {
                tok: Tok::Int(i), ..
            }) => Ok(Literal::Int(i)),
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    Ok(Literal::Bool(true))
                } else if name.eq_ignore_ascii_case("FALSE") {
                    Ok(Literal::Bool(false))
                } else {
                    Err(ParseError::new(
                        format!(
                            "expected a literal (string, integer, TRUE, or FALSE), found `{name}`"
                        ),
                        span,
                    ))
                }
            }
            Some(t) => Err(ParseError::new(
                format!("expected a literal, found {}", describe(&t.tok)),
                t.span,
            )),
            None => Err(ParseError::new(
                "expected a literal, found end of query",
                self.eof_span(),
            )),
        }
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        let (var, span) = self.ident("a variable in RETURN")?;
        if self.eat(&Tok::Dot) {
            let (prop, pspan) = self.ident("a property name after `.`")?;
            return Ok(Projection {
                var,
                prop: Some(prop),
                span: Span::new(span.start, pspan.end),
            });
        }
        Ok(Projection {
            var,
            prop: None,
            span,
        })
    }

    // WHERE expressions: OR < AND < NOT/atom.

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.eat_keyword("AND") {
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        if self.eat(&Tok::LParen) {
            let inner = self.expr()?;
            self.expect(&Tok::RParen, "to close the group")?;
            return Ok(inner);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let (var, vspan) = self.ident("a comparison like `m.NAME = \"...\"`")?;
        self.expect(&Tok::Dot, "after the variable in a comparison")?;
        let (prop, _) = self.ident("a property name after `.`")?;
        let op = self.cmp_op()?;
        let rhs = self.literal()?;
        let end = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span.end)
            .unwrap_or(vspan.end);
        Ok(Expr::Cmp(Cmp {
            var,
            prop,
            op,
            rhs,
            span: Span::new(vspan.start, end),
        }))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        if self.eat_keyword("CONTAINS") {
            return Ok(CmpOp::Contains);
        }
        if self.eat_keyword("STARTS") {
            self.expect_keyword("WITH")?;
            return Ok(CmpOp::StartsWith);
        }
        if self.eat_keyword("ENDS") {
            self.expect_keyword("WITH")?;
            return Ok(CmpOp::EndsWith);
        }
        match self.advance() {
            Some(Token { tok: Tok::Eq, .. }) => Ok(CmpOp::Eq),
            Some(Token { tok: Tok::Ne, .. }) => Ok(CmpOp::Ne),
            Some(Token { tok: Tok::Lt, .. }) => Ok(CmpOp::Lt),
            Some(Token { tok: Tok::Le, .. }) => Ok(CmpOp::Le),
            Some(Token { tok: Tok::Gt, .. }) => Ok(CmpOp::Gt),
            Some(Token { tok: Tok::Ge, .. }) => Ok(CmpOp::Ge),
            Some(t) => Err(ParseError::new(
                format!(
                    "expected a comparison operator (=, <>, <, <=, >, >=, CONTAINS, STARTS WITH, ENDS WITH), found {}",
                    describe(&t.tok)
                ),
                t.span,
            )),
            None => Err(ParseError::new(
                "expected a comparison operator, found end of query",
                self.eof_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_flagship_example() {
        let q = parse(
            "MATCH (m:Method {NAME: \"readObject\"})-[:CALL*1..5]->(s:Method) \
             WHERE s.IS_SINK = TRUE RETURN m.SIGNATURE, s.SIGNATURE LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.pattern.nodes.len(), 2);
        assert_eq!(q.pattern.hops.len(), 1);
        let hop = &q.pattern.hops[0];
        assert_eq!(hop.ty, "CALL");
        assert_eq!((hop.min, hop.max), (1, 5));
        assert_eq!(hop.dir, HopDir::Out);
        assert_eq!(q.returns.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_incoming_and_undirected_hops() {
        let q = parse("MATCH (a)<-[:ALIAS]-(b)-[:HAS]-(c) RETURN a").unwrap();
        assert_eq!(q.pattern.hops[0].dir, HopDir::In);
        assert_eq!(q.pattern.hops[1].dir, HopDir::Both);
    }

    #[test]
    fn bare_star_defaults_to_bounded() {
        let q = parse("MATCH (a)-[:CALL*]->(b) RETURN a").unwrap();
        assert_eq!(
            (q.pattern.hops[0].min, q.pattern.hops[0].max),
            (1, DEFAULT_VARLEN_MAX)
        );
        let q = parse("MATCH (a)-[:CALL*..3]->(b) RETURN a").unwrap();
        assert_eq!((q.pattern.hops[0].min, q.pattern.hops[0].max), (1, 3));
        let q = parse("MATCH (a)-[:CALL*2]->(b) RETURN a").unwrap();
        assert_eq!((q.pattern.hops[0].min, q.pattern.hops[0].max), (2, 2));
    }

    #[test]
    fn rejects_unbounded_repetition() {
        let err = parse("MATCH (a)-[:CALL*1..]->(b) RETURN a").unwrap_err();
        assert!(err.message.contains("explicit upper bound"));
    }

    #[test]
    fn rejects_edge_variable_on_varlen_hop() {
        let err = parse("MATCH (a)-[e:CALL*1..3]->(b) RETURN e").unwrap_err();
        assert!(err.message.contains("edge variables"));
    }

    #[test]
    fn rejects_untyped_edge() {
        let err = parse("MATCH (a)-[]->(b) RETURN a").unwrap_err();
        assert!(err.message.contains("edge patterns must name a type"));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("match (m:Method) where m.NAME = \"x\" return m limit 1").unwrap();
        assert_eq!(q.limit, Some(1));
    }

    #[test]
    fn where_precedence_binds_and_tighter_than_or() {
        let q = parse("MATCH (m) WHERE m.A = 1 OR m.B = 2 AND m.C = 3 RETURN m").unwrap();
        match q.where_clause.unwrap() {
            Expr::Or(_, right) => assert!(matches!(*right, Expr::And(_, _))),
            other => panic!("expected OR at the root, got {other:?}"),
        }
    }

    #[test]
    fn print_reparse_roundtrips_the_flagship() {
        let src = "MATCH (m:Method {NAME: \"readObject\"})-[:CALL*1..5]->(s:Method) \
                   WHERE (s.IS_SINK = TRUE AND (NOT s.NAME ENDS WITH \"X\")) \
                   RETURN m.SIGNATURE, s.SIGNATURE LIMIT 10";
        let mut first = parse(src).unwrap();
        let printed = first.to_string();
        let mut second = parse(&printed).unwrap();
        first.strip_spans();
        second.strip_spans();
        assert_eq!(first, second, "printed form was: {printed}");
    }
}
