//! Span-carrying errors for TQL parsing and planning.

use std::fmt;

/// A byte range in the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The zero span, used after [`crate::ast::TqlQuery::strip_spans`].
    pub const ZERO: Span = Span { start: 0, end: 0 };

    /// Constructs a span.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }
}

/// A parse (or plan) error anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where in the source the problem is.
    pub span: Span,
}

impl ParseError {
    /// Constructs an error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing at the span:
    ///
    /// ```text
    /// error: expected `)` after node pattern
    ///   MATCH (m:Method RETURN m
    ///                   ^^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error: {}", self.message);
        if src.is_empty() {
            return out;
        }
        out.push_str("\n  ");
        out.push_str(src.trim_end());
        out.push_str("\n  ");
        let start = self.span.start.min(src.len());
        let end = self.span.end.clamp(start, src.len());
        let prefix_width = src[..start].chars().count();
        let caret_width = src[start..end].chars().count().max(1);
        for _ in 0..prefix_width {
            out.push(' ');
        }
        for _ in 0..caret_width {
            out.push('^');
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let err = ParseError::new("boom", Span::new(6, 8));
        let text = err.render("MATCH (m) RETURN m");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "error: boom");
        assert_eq!(lines[1], "  MATCH (m) RETURN m");
        assert_eq!(lines[2], "        ^^");
    }

    #[test]
    fn render_clamps_out_of_range_spans() {
        let err = ParseError::new("eof", Span::new(100, 120));
        let text = err.render("MATCH");
        assert!(text.contains('^'));
    }
}
