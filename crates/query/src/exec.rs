//! Streaming, budget-aware execution of planned TQL queries.
//!
//! [`rows`] returns an iterator that lazily pulls matches from the
//! `tabby_graph` pattern backend, applies the WHERE filter, and projects
//! each surviving match into a row of JSON cells. Budgets (expansion
//! count, wall-clock deadline, row cap) end the stream early and are
//! surfaced through [`RowIter::truncated`] — a malformed or explosive
//! query truncates; it never hangs or panics.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tabby_graph::csr::CsrSnapshot;
use tabby_graph::query::{ExecBudget, Match, QueryStream};
use tabby_graph::{Graph, Value};

use crate::ast::{Cmp, CmpOp, Expr, Literal};
use crate::error::ParseError;
use crate::parser::parse;
use crate::plan::{plan, Plan, VarBinding};

/// Execution limits for one query.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Maximum rows produced (beyond any LIMIT in the query text).
    pub max_rows: usize,
    /// Maximum edge expansions in the pattern search.
    pub max_expansions: usize,
    /// Optional wall-clock budget.
    pub timeout: Option<Duration>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            max_rows: 10_000,
            max_expansions: 2_000_000,
            timeout: None,
        }
    }
}

/// A fully-materialized query result (the collected form of [`rows`]).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct QueryOutput {
    /// Column headers, one per RETURN projection.
    pub columns: Vec<String>,
    /// Row cells, in projection order.
    pub rows: Vec<Vec<serde_json::Value>>,
    /// True when a budget (expansions, deadline, or row cap) ended the
    /// query before the match space was exhausted.
    pub truncated: bool,
    /// Edge expansions performed by the pattern search.
    pub expansions: usize,
    /// Planner notes (unknown names, anchor choice).
    pub warnings: Vec<String>,
    /// Human-readable anchor description.
    pub anchor: String,
}

/// Column headers for a plan, one per RETURN projection.
pub fn columns(plan: &Plan) -> Vec<String> {
    plan.returns.iter().map(|p| p.to_string()).collect()
}

/// Converts a graph property value into a JSON cell.
pub fn value_to_json(value: &Value) -> serde_json::Value {
    match value {
        Value::Int(i) => serde_json::Value::from(*i),
        Value::Float(f) => serde_json::Number::from_f64(*f)
            .map(serde_json::Value::Number)
            .unwrap_or(serde_json::Value::Null),
        Value::Bool(b) => serde_json::Value::from(*b),
        Value::Str(s) => serde_json::Value::from(s.as_str()),
        Value::IntList(xs) => {
            serde_json::Value::Array(xs.iter().map(|x| serde_json::Value::from(*x)).collect())
        }
        Value::StrList(xs) => serde_json::Value::Array(
            xs.iter()
                .map(|x| serde_json::Value::from(x.as_str()))
                .collect(),
        ),
        Value::Map(pairs) => serde_json::Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), serde_json::Value::from(v.as_str())))
                .collect(),
        ),
    }
}

/// A lazy row stream over one planned query.
pub struct RowIter<'a> {
    graph: &'a Graph,
    plan: &'a Plan,
    stream: Option<QueryStream<'a, 'a>>,
    emitted: usize,
    max_rows: usize,
    row_truncated: bool,
}

/// Starts streaming rows for `plan` over `graph`. Pass a [`CsrSnapshot`]
/// covering [`Plan::edge_types`] to expand variable-length hops through
/// frozen adjacency; results are identical either way.
pub fn rows<'a>(
    graph: &'a Graph,
    plan: &'a Plan,
    csr: Option<&'a CsrSnapshot>,
    cfg: &ExecConfig,
) -> RowIter<'a> {
    let budget = ExecBudget {
        max_expansions: cfg.max_expansions,
        deadline: cfg.timeout.map(|t| Instant::now() + t),
    };
    let stream = if plan.empty {
        None
    } else {
        Some(plan.query.stream_with(graph, budget, csr))
    };
    RowIter {
        graph,
        plan,
        stream,
        emitted: 0,
        max_rows: cfg.max_rows,
        row_truncated: false,
    }
}

impl RowIter<'_> {
    /// True when a budget ended the stream before exhaustion (the query's
    /// own LIMIT does not count as truncation).
    pub fn truncated(&self) -> bool {
        self.row_truncated || self.stream.as_ref().map(|s| s.truncated()).unwrap_or(false)
    }

    /// Edge expansions performed so far.
    pub fn expansions(&self) -> usize {
        self.stream
            .as_ref()
            .map(|s| s.stats().expansions)
            .unwrap_or(0)
    }

    fn project(&self, m: &Match) -> Vec<serde_json::Value> {
        let plan = self.plan;
        plan.returns
            .iter()
            .map(|proj| {
                let Some(binding) = plan.vars.get(&proj.var) else {
                    return serde_json::Value::Null;
                };
                match (binding, &proj.prop) {
                    (VarBinding::Node(j), None) => {
                        serde_json::Value::from(plan.node_of(m, *j).index() as u64)
                    }
                    (VarBinding::Node(j), Some(prop)) => {
                        match plan.prop_keys.get(prop).copied().flatten() {
                            Some(key) => self
                                .graph
                                .node_prop(plan.node_of(m, *j), key)
                                .map(value_to_json)
                                .unwrap_or(serde_json::Value::Null),
                            None => serde_json::Value::Null,
                        }
                    }
                    (VarBinding::Edge(h), None) => plan
                        .edge_of(m, *h)
                        .map(|e| serde_json::Value::from(e.index() as u64))
                        .unwrap_or(serde_json::Value::Null),
                    (VarBinding::Edge(h), Some(prop)) => {
                        match (
                            plan.edge_of(m, *h),
                            plan.prop_keys.get(prop).copied().flatten(),
                        ) {
                            (Some(edge), Some(key)) => self
                                .graph
                                .edge_prop(edge, key)
                                .map(value_to_json)
                                .unwrap_or(serde_json::Value::Null),
                            _ => serde_json::Value::Null,
                        }
                    }
                }
            })
            .collect()
    }
}

impl Iterator for RowIter<'_> {
    type Item = Vec<serde_json::Value>;

    fn next(&mut self) -> Option<Vec<serde_json::Value>> {
        loop {
            if let Some(limit) = self.plan.limit {
                if self.emitted >= limit {
                    return None;
                }
            }
            let m = self.stream.as_mut()?.next()?;
            if let Some(expr) = &self.plan.where_clause {
                if !eval_expr(self.graph, self.plan, &m, expr) {
                    continue;
                }
            }
            if self.emitted >= self.max_rows {
                // A row materialized past the cap: that is truncation, not
                // a clean LIMIT stop.
                self.row_truncated = true;
                return None;
            }
            self.emitted += 1;
            return Some(self.project(&m));
        }
    }
}

fn eval_expr(graph: &Graph, plan: &Plan, m: &Match, expr: &Expr) -> bool {
    match expr {
        Expr::Cmp(cmp) => eval_cmp(graph, plan, m, cmp),
        Expr::And(a, b) => eval_expr(graph, plan, m, a) && eval_expr(graph, plan, m, b),
        Expr::Or(a, b) => eval_expr(graph, plan, m, a) || eval_expr(graph, plan, m, b),
        Expr::Not(inner) => !eval_expr(graph, plan, m, inner),
    }
}

/// Missing variables, properties, or type-mismatched comparisons evaluate
/// to false (the SQL/Cypher "null comparison" convention).
fn eval_cmp(graph: &Graph, plan: &Plan, m: &Match, cmp: &Cmp) -> bool {
    let Some(binding) = plan.vars.get(&cmp.var) else {
        return false;
    };
    let Some(key) = plan.prop_keys.get(&cmp.prop).copied().flatten() else {
        return false;
    };
    let value = match binding {
        VarBinding::Node(j) => graph.node_prop(plan.node_of(m, *j), key),
        VarBinding::Edge(h) => plan.edge_of(m, *h).and_then(|e| graph.edge_prop(e, key)),
    };
    let Some(value) = value else {
        return false;
    };
    compare(value, cmp.op, &cmp.rhs)
}

fn compare(value: &Value, op: CmpOp, rhs: &Literal) -> bool {
    match (value, rhs) {
        (Value::Str(s), Literal::Str(r)) => match op {
            CmpOp::Eq => s == r,
            CmpOp::Ne => s != r,
            CmpOp::Lt => s < r,
            CmpOp::Le => s <= r,
            CmpOp::Gt => s > r,
            CmpOp::Ge => s >= r,
            CmpOp::Contains => s.contains(r.as_str()),
            CmpOp::StartsWith => s.starts_with(r.as_str()),
            CmpOp::EndsWith => s.ends_with(r.as_str()),
        },
        (Value::Int(i), Literal::Int(r)) => match op {
            CmpOp::Eq => i == r,
            CmpOp::Ne => i != r,
            CmpOp::Lt => i < r,
            CmpOp::Le => i <= r,
            CmpOp::Gt => i > r,
            CmpOp::Ge => i >= r,
            _ => false,
        },
        (Value::Bool(b), Literal::Bool(r)) => match op {
            CmpOp::Eq => b == r,
            CmpOp::Ne => b != r,
            _ => false,
        },
        _ => false,
    }
}

/// Parses, plans, and runs `text` against `graph` in one call, freezing a
/// CSR snapshot for variable-length patterns. This is the entry point the
/// CLI and the daemon share, so both paths produce identical rows.
pub fn run_query(graph: &Graph, text: &str, cfg: &ExecConfig) -> Result<QueryOutput, ParseError> {
    run_query_with(graph, text, cfg, |types| {
        // Freeze failure (u32 CSR overflow) falls back to graph-backed
        // expansion, which produces identical rows.
        CsrSnapshot::freeze(graph, types, None).ok()
    })
}

/// [`run_query`] with the variable-length-hop snapshot source abstracted:
/// `snapshot_for` receives the edge types the plan expands over and may
/// return a pre-built [`CsrSnapshot`] — the daemon hands one borrowed
/// zero-copy from a mapped flat CPG, skipping the per-query freeze. A
/// `None` return falls back to graph-backed expansion; rows are identical
/// either way (the snapshot preserves `edges_of` order), which the flat
/// round-trip tests assert.
pub fn run_query_with(
    graph: &Graph,
    text: &str,
    cfg: &ExecConfig,
    snapshot_for: impl FnOnce(&[tabby_graph::EdgeType]) -> Option<CsrSnapshot>,
) -> Result<QueryOutput, ParseError> {
    let ast = parse(text)?;
    let plan = plan(graph, &ast)?;
    let csr = if plan.has_varlen && !plan.empty {
        snapshot_for(&plan.edge_types())
    } else {
        None
    };
    let mut iter = rows(graph, &plan, csr.as_ref(), cfg);
    let collected: Vec<Vec<serde_json::Value>> = iter.by_ref().collect();
    Ok(QueryOutput {
        columns: columns(&plan),
        rows: collected,
        truncated: iter.truncated(),
        expansions: iter.expansions(),
        warnings: plan.warnings.clone(),
        anchor: plan.anchor.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Methods a→b→c over CALL with NAME/SIGNATURE props and an indexed
    /// NAME, plus POLLUTED_POSITION payloads on the edges.
    fn fixture() -> Graph {
        let mut g = Graph::new();
        let method = g.label("Method");
        let call = g.edge_type("CALL");
        let name = g.prop_key("NAME");
        let sig = g.prop_key("SIGNATURE");
        let pp = g.prop_key("POLLUTED_POSITION");
        g.create_index(method, name);
        let names = ["a", "b", "c"];
        let nodes: Vec<_> = names
            .iter()
            .map(|n| {
                let node = g.add_node(method);
                g.set_node_prop(node, name, Value::from(*n));
                g.set_node_prop(node, sig, Value::from(format!("p.C.{n}()")));
                node
            })
            .collect();
        for w in nodes.windows(2) {
            let e = g.add_edge(call, w[0], w[1]);
            g.set_edge_prop(e, pp, Value::IntList(vec![0, -1]));
        }
        g
    }

    fn run(g: &Graph, text: &str) -> QueryOutput {
        run_query(g, text, &ExecConfig::default()).unwrap()
    }

    #[test]
    fn projects_properties_and_ids() {
        let g = fixture();
        let out = run(&g, "MATCH (m:Method {NAME: \"a\"}) RETURN m, m.SIGNATURE");
        assert_eq!(out.columns, vec!["m", "m.SIGNATURE"]);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][1], serde_json::json!("p.C.a()"));
    }

    #[test]
    fn variable_length_path_rows() {
        let g = fixture();
        let out = run(
            &g,
            "MATCH (m:Method {NAME: \"a\"})-[:CALL*1..2]->(s:Method) RETURN s.NAME",
        );
        let mut names: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn where_filters_and_missing_props_are_false() {
        let g = fixture();
        let out = run(
            &g,
            "MATCH (m:Method) WHERE m.NAME = \"a\" OR m.NAME = \"c\" RETURN m.NAME",
        );
        assert_eq!(out.rows.len(), 2);
        let out = run(&g, "MATCH (m:Method) WHERE m.NO_SUCH = 1 RETURN m");
        assert!(out.rows.is_empty());
        assert!(out.warnings.iter().any(|w| w.contains("NO_SUCH")));
        // NOT over a missing property is true (missing comparisons are
        // false, and NOT flips them).
        let out = run(&g, "MATCH (m:Method) WHERE NOT m.NO_SUCH = 1 RETURN m");
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn edge_variable_projects_payload() {
        let g = fixture();
        let out = run(
            &g,
            "MATCH (m:Method {NAME: \"a\"})-[e:CALL]->(s) RETURN s.NAME, e.POLLUTED_POSITION",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], serde_json::json!("b"));
        assert_eq!(out.rows[0][1], serde_json::json!([0, -1]));
    }

    #[test]
    fn limit_is_not_truncation_but_row_cap_is() {
        let g = fixture();
        let out = run(&g, "MATCH (m:Method) RETURN m LIMIT 1");
        assert_eq!(out.rows.len(), 1);
        assert!(!out.truncated);
        let out = run_query(
            &g,
            "MATCH (m:Method) RETURN m",
            &ExecConfig {
                max_rows: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.truncated);
    }

    #[test]
    fn expansion_budget_truncates_varlen_queries() {
        let g = fixture();
        let out = run_query(
            &g,
            "MATCH (m:Method)-[:CALL*1..2]->(s) RETURN s",
            &ExecConfig {
                max_expansions: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(out.truncated);
        assert!(out.expansions <= 1);
    }

    #[test]
    fn unknown_label_yields_empty_with_warning() {
        let g = fixture();
        let out = run(&g, "MATCH (m:Clazz) RETURN m");
        assert!(out.rows.is_empty());
        assert!(!out.truncated);
        assert!(out.warnings.iter().any(|w| w.contains("Clazz")));
    }

    #[test]
    fn reversed_plan_projects_original_variables() {
        let g = fixture();
        // The right end is index-anchored, so the planner reverses; rows
        // must still read (m, s) in textual order.
        let out = run(
            &g,
            "MATCH (m:Method)-[:CALL*1..2]->(s:Method {NAME: \"c\"}) RETURN m.NAME, s.NAME",
        );
        let mut starts: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        starts.sort();
        assert_eq!(starts, vec!["a", "b"]);
        for row in &out.rows {
            assert_eq!(row[1], serde_json::json!("c"));
        }
    }

    #[test]
    fn malformed_queries_error_and_never_panic() {
        let g = fixture();
        for bad in [
            "",
            "MATCH",
            "MATCH (",
            "MATCH (m RETURN m",
            "MATCH (m) WHERE RETURN m",
            "MATCH (m) RETURN",
            "MATCH (m)-[:CALL*5..1]->(s) RETURN m",
            "MATCH (m) RETURN m LIMIT x",
            "RETURN m",
            "MATCH (m:Method) WHERE m.NAME ~ \"a\" RETURN m",
        ] {
            assert!(
                run_query(&g, bad, &ExecConfig::default()).is_err(),
                "expected parse error for {bad:?}"
            );
        }
    }
}
