//! The TQL abstract syntax tree and its canonical pretty-printer.
//!
//! The printer is the inverse of the parser: for every well-formed AST,
//! `parse(&ast.to_string())` yields the same AST up to spans (a property
//! the proptest suite enforces).

use std::fmt;

use crate::error::Span;
use crate::lexer::escape_string;

/// A complete query: `MATCH <pattern> [WHERE <expr>] RETURN <projections>
/// [LIMIT <n>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TqlQuery {
    /// The linear node/edge pattern.
    pub pattern: Pattern,
    /// Optional row filter.
    pub where_clause: Option<Expr>,
    /// Projected columns, in order.
    pub returns: Vec<Projection>,
    /// Optional row cap requested by the query text.
    pub limit: Option<usize>,
}

/// A linear pattern: `nodes[0] hops[0] nodes[1] hops[1] ... nodes[k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Node patterns; always one more than `hops`.
    pub nodes: Vec<NodePat>,
    /// Edge hops between consecutive nodes.
    pub hops: Vec<HopPat>,
}

/// One node pattern: `(var:Label {KEY: lit, ...})`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePat {
    /// Binding variable, if named.
    pub var: Option<String>,
    /// Label constraint, if any.
    pub label: Option<String>,
    /// Property equality constraints.
    pub props: Vec<(String, Literal)>,
    /// Source span of the node pattern.
    pub span: Span,
}

/// Hop orientation relative to reading order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDir {
    /// `-[...]->`: edge from the left node to the right node.
    Out,
    /// `<-[...]-`: edge from the right node to the left node.
    In,
    /// `-[...]-`: either orientation.
    Both,
}

/// One edge hop: `-[var:TY*min..max]->` (or `<-[...]-` / `-[...]-`).
#[derive(Debug, Clone, PartialEq)]
pub struct HopPat {
    /// Edge binding variable (only valid on single-step hops).
    pub var: Option<String>,
    /// Edge type name (required).
    pub ty: String,
    /// Orientation.
    pub dir: HopDir,
    /// Minimum repetitions.
    pub min: usize,
    /// Maximum repetitions.
    pub max: usize,
    /// Source span of the hop.
    pub span: Span,
}

impl HopPat {
    /// Whether the hop traverses exactly one edge (no `*` repetition).
    pub fn is_single(&self) -> bool {
        self.min == 1 && self.max == 1
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// String.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
}

/// One projected column: `var` or `var.PROP`.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// The pattern variable.
    pub var: String,
    /// Property to project; bare variables project the graph id.
    pub prop: Option<String>,
    /// Source span.
    pub span: Span,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` (also written `!=`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `CONTAINS` (strings)
    Contains,
    /// `STARTS WITH` (strings)
    StartsWith,
    /// `ENDS WITH` (strings)
    EndsWith,
}

/// One comparison: `var.PROP <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cmp {
    /// The pattern variable.
    pub var: String,
    /// The property name.
    pub prop: String,
    /// The operator.
    pub op: CmpOp,
    /// The right-hand literal.
    pub rhs: Literal,
    /// Source span.
    pub span: Span,
}

/// A boolean filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A single comparison.
    Cmp(Cmp),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl TqlQuery {
    /// Zeroes every span in the tree, so structural equality ignores
    /// source positions (used by the print/reparse property tests).
    pub fn strip_spans(&mut self) {
        for node in &mut self.pattern.nodes {
            node.span = Span::ZERO;
        }
        for hop in &mut self.pattern.hops {
            hop.span = Span::ZERO;
        }
        for proj in &mut self.returns {
            proj.span = Span::ZERO;
        }
        if let Some(expr) = &mut self.where_clause {
            strip_expr(expr);
        }
    }
}

fn strip_expr(expr: &mut Expr) {
    match expr {
        Expr::Cmp(cmp) => cmp.span = Span::ZERO,
        Expr::And(a, b) | Expr::Or(a, b) => {
            strip_expr(a);
            strip_expr(b);
        }
        Expr::Not(inner) => strip_expr(inner),
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{}\"", escape_string(s)),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Bool(true) => write!(f, "TRUE"),
            Literal::Bool(false) => write!(f, "FALSE"),
        }
    }
}

impl fmt::Display for NodePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        if let Some(var) = &self.var {
            write!(f, "{var}")?;
        }
        if let Some(label) = &self.label {
            write!(f, ":{label}")?;
        }
        if !self.props.is_empty() {
            if self.var.is_some() || self.label.is_some() {
                write!(f, " ")?;
            }
            write!(f, "{{")?;
            for (i, (key, value)) in self.props.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}: {value}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for HopPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = {
            let mut body = String::new();
            if let Some(var) = &self.var {
                body.push_str(var);
            }
            body.push(':');
            body.push_str(&self.ty);
            if !self.is_single() {
                body.push_str(&format!("*{}..{}", self.min, self.max));
            }
            body
        };
        match self.dir {
            HopDir::Out => write!(f, "-[{body}]->"),
            HopDir::In => write!(f, "<-[{body}]-"),
            HopDir::Both => write!(f, "-[{body}]-"),
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prop {
            Some(prop) => write!(f, "{}.{prop}", self.var),
            None => write!(f, "{}", self.var),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "CONTAINS",
            CmpOp::StartsWith => "STARTS WITH",
            CmpOp::EndsWith => "ENDS WITH",
        };
        f.write_str(text)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp(cmp) => write!(f, "{}.{} {} {}", cmp.var, cmp.prop, cmp.op, cmp.rhs),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(inner) => write!(f, "(NOT {inner})"),
        }
    }
}

impl fmt::Display for TqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MATCH {}", self.pattern.nodes[0])?;
        for (hop, node) in self.pattern.hops.iter().zip(&self.pattern.nodes[1..]) {
            write!(f, "{hop}{node}")?;
        }
        if let Some(expr) = &self.where_clause {
            write!(f, " WHERE {expr}")?;
        }
        write!(f, " RETURN ")?;
        for (i, proj) in self.returns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{proj}")?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}
