//! Built-in named queries reproducing the paper's analyst idioms —
//! the questions §II-B expects researchers to ask of the stored CPG.
//!
//! Each builtin is a TQL template; `{0}`, `{1}`, ... are replaced by the
//! caller's arguments (escaped as string-literal content).

use crate::lexer::escape_string;

/// One named query template.
#[derive(Debug, Clone, Copy)]
pub struct Builtin {
    /// CLI name (`tabby query --builtin <name>`).
    pub name: &'static str,
    /// Argument names, in order.
    pub args: &'static [&'static str],
    /// One-line description.
    pub description: &'static str,
    /// TQL text with `{i}` placeholders inside string literals.
    pub template: &'static str,
}

/// All built-in queries, in display order.
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "sinks",
        args: &[],
        description: "annotated sink methods with their category (Table IV tagging)",
        template: "MATCH (m:Method) WHERE m.IS_SINK = TRUE RETURN m.SIGNATURE, m.SINK_CATEGORY",
    },
    Builtin {
        name: "sources",
        args: &[],
        description: "annotated deserialization entry points (source tagging)",
        template: "MATCH (m:Method) WHERE m.IS_SOURCE = TRUE RETURN m.SIGNATURE, m.CLASS_NAME",
    },
    Builtin {
        name: "method",
        args: &["name"],
        description: "profile of every method with the given simple name",
        template: "MATCH (m:Method {NAME: \"{0}\"}) RETURN m.SIGNATURE, m.CLASS_NAME, m.PARAM_COUNT, m.IS_SERIALIZABLE",
    },
    Builtin {
        name: "alias-fanout",
        args: &["name"],
        description: "overriding implementations reachable from a declaration over ALIAS edges (MAG fan-out)",
        template: "MATCH (d:Method {NAME: \"{0}\"})<-[:ALIAS*1..4]-(o:Method) RETURN d.SIGNATURE, o.SIGNATURE",
    },
    Builtin {
        name: "callers",
        args: &["name"],
        description: "CALL neighborhood within two hops into the given method (sink triage)",
        template: "MATCH (c:Method)-[:CALL*1..2]->(m:Method {NAME: \"{0}\"}) RETURN c.SIGNATURE, m.SIGNATURE",
    },
    Builtin {
        name: "pp-into",
        args: &["name"],
        description: "direct CALL edges into the given method with their Polluted_Position labels",
        template: "MATCH (c:Method)-[e:CALL]->(m:Method {NAME: \"{0}\"}) RETURN c.SIGNATURE, e.POLLUTED_POSITION",
    },
];

/// Looks a builtin up by name.
pub fn find(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

impl Builtin {
    /// Substitutes `args` into the template, escaping each for embedding
    /// in a string literal. Errors on an argument-count mismatch.
    pub fn instantiate(&self, args: &[String]) -> Result<String, String> {
        if args.len() != self.args.len() {
            return Err(format!(
                "builtin `{}` takes {} argument(s) ({}), got {}",
                self.name,
                self.args.len(),
                self.args.join(", "),
                args.len()
            ));
        }
        let mut text = self.template.to_owned();
        for (i, arg) in args.iter().enumerate() {
            text = text.replace(&format!("{{{i}}}"), &escape_string(arg));
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn every_builtin_template_parses() {
        for builtin in BUILTINS {
            let args: Vec<String> = builtin
                .args
                .iter()
                .map(|_| "readObject".to_owned())
                .collect();
            let text = builtin.instantiate(&args).unwrap();
            parse(&text).unwrap_or_else(|e| {
                panic!(
                    "builtin `{}` failed to parse: {}\n{}",
                    builtin.name, e, text
                )
            });
        }
    }

    #[test]
    fn instantiate_escapes_arguments() {
        let b = find("method").unwrap();
        let text = b.instantiate(&["a\"b".to_owned()]).unwrap();
        assert!(text.contains("\"a\\\"b\""));
        parse(&text).unwrap();
    }

    #[test]
    fn instantiate_rejects_wrong_arity() {
        assert!(find("sinks")
            .unwrap()
            .instantiate(&["x".to_owned()])
            .is_err());
        assert!(find("method").unwrap().instantiate(&[]).is_err());
    }

    #[test]
    fn find_is_exact() {
        assert!(find("sinks").is_some());
        assert!(find("nope").is_none());
    }
}
