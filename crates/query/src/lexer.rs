//! Tokenizer for TQL. Produces a flat token stream with byte spans; the
//! parser assembles composite syntax (arrows, ranges) from the atoms.

use crate::error::{ParseError, Span};

/// One lexical atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser,
    /// case-insensitively).
    Ident(String),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// Unsigned integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `*`
    Star,
    /// `-`
    Dash,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// A token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// The atom.
    pub tok: Tok,
    /// Byte range in the source text.
    pub span: Span,
}

/// Tokenizes `src`, returning the token list or the first lexical error.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'(' => push(&mut out, Tok::LParen, start, &mut i, 1),
            b')' => push(&mut out, Tok::RParen, start, &mut i, 1),
            b'[' => push(&mut out, Tok::LBracket, start, &mut i, 1),
            b']' => push(&mut out, Tok::RBracket, start, &mut i, 1),
            b'{' => push(&mut out, Tok::LBrace, start, &mut i, 1),
            b'}' => push(&mut out, Tok::RBrace, start, &mut i, 1),
            b':' => push(&mut out, Tok::Colon, start, &mut i, 1),
            b',' => push(&mut out, Tok::Comma, start, &mut i, 1),
            b'*' => push(&mut out, Tok::Star, start, &mut i, 1),
            b'-' => push(&mut out, Tok::Dash, start, &mut i, 1),
            b'=' => push(&mut out, Tok::Eq, start, &mut i, 1),
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push(&mut out, Tok::DotDot, start, &mut i, 2);
                } else {
                    push(&mut out, Tok::Dot, start, &mut i, 1);
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'>') => push(&mut out, Tok::Ne, start, &mut i, 2),
                Some(&b'=') => push(&mut out, Tok::Le, start, &mut i, 2),
                _ => push(&mut out, Tok::Lt, start, &mut i, 1),
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Ge, start, &mut i, 2);
                } else {
                    push(&mut out, Tok::Gt, start, &mut i, 1);
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Ne, start, &mut i, 2);
                } else {
                    return Err(ParseError::new(
                        "unexpected `!` (did you mean `!=`?)",
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'"' => {
                let (text, next) = lex_string(src, i)?;
                out.push(Token {
                    tok: Tok::Str(text),
                    span: Span::new(start, next),
                });
                i = next;
            }
            b'0'..=b'9' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &src[i..j];
                let value: i64 = text.parse().map_err(|_| {
                    ParseError::new(
                        format!("integer literal `{text}` is out of range"),
                        Span::new(i, j),
                    )
                })?;
                out.push(Token {
                    tok: Tok::Int(value),
                    span: Span::new(i, j),
                });
                i = j;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'$')
                {
                    j += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[i..j].to_owned()),
                    span: Span::new(i, j),
                });
                i = j;
            }
            _ => {
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(ParseError::new(
                    format!("unexpected character `{ch}`"),
                    Span::new(start, start + ch.len_utf8()),
                ));
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Token>, tok: Tok, start: usize, i: &mut usize, len: usize) {
    out.push(Token {
        tok,
        span: Span::new(start, start + len),
    });
    *i = start + len;
}

/// Lexes a double-quoted string starting at byte `start` (which holds the
/// opening quote). Supports `\"`, `\\`, `\n`, and `\t` escapes. Returns
/// the unescaped text and the byte index just past the closing quote.
fn lex_string(src: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = src.as_bytes();
    let mut text = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((text, i + 1)),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(&b'"') => {
                        text.push('"');
                        i += 2;
                    }
                    Some(&b'\\') => {
                        text.push('\\');
                        i += 2;
                    }
                    Some(&b'n') => {
                        text.push('\n');
                        i += 2;
                    }
                    Some(&b't') => {
                        text.push('\t');
                        i += 2;
                    }
                    _ => return Err(ParseError::new(
                        "unsupported escape in string literal (expected \\\", \\\\, \\n, or \\t)",
                        Span::new(i, (i + 2).min(bytes.len())),
                    )),
                }
            }
            _ => {
                let ch = src[i..].chars().next().unwrap_or('?');
                text.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(ParseError::new(
        "unterminated string literal",
        Span::new(start, bytes.len()),
    ))
}

/// Escapes `text` for embedding in a TQL double-quoted literal.
pub fn escape_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_edge_syntax() {
        assert_eq!(
            toks("-[:CALL*1..5]->"),
            vec![
                Tok::Dash,
                Tok::LBracket,
                Tok::Colon,
                Tok::Ident("CALL".into()),
                Tok::Star,
                Tok::Int(1),
                Tok::DotDot,
                Tok::Int(5),
                Tok::RBracket,
                Tok::Dash,
                Tok::Gt,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""read\"Object\\""#),
            vec![Tok::Str("read\"Object\\".into())]
        );
        let roundtrip = format!("\"{}\"", escape_string("a\"b\\c\nd\te"));
        assert_eq!(toks(&roundtrip), vec![Tok::Str("a\"b\\c\nd\te".into())]);
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            toks("= <> != <= >= < >"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.span.start, 0);
    }

    #[test]
    fn rejects_stray_bang() {
        let err = lex("a ! b").unwrap_err();
        assert_eq!(err.span.start, 2);
    }
}
