//! Lowers a parsed TQL query onto the `tabby_graph` pattern backend.
//!
//! The planner resolves names against the target graph's interners,
//! pushes WHERE equality conjuncts into node patterns (so they
//! participate in index anchoring), scores both ends of the pattern
//! chain by estimated candidate count, and reverses the chain when the
//! right end is the cheaper anchor — the textual query's variables keep
//! their meaning through [`Plan::node_of`]/[`Plan::edge_of`].

use std::collections::HashMap;

use tabby_graph::query::{Match, NodePattern, Query as GraphQuery};
use tabby_graph::{Direction, EdgeId, EdgeType, Graph, NodeId, PropKey, Value};

use crate::ast::{Cmp, CmpOp, Expr, HopDir, Literal, Pattern, Projection, TqlQuery};
use crate::error::ParseError;

/// What a TQL variable is bound to, in original (textual) pattern order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarBinding {
    /// The j-th node pattern of the MATCH clause.
    Node(usize),
    /// The h-th hop of the MATCH clause (single-step hops only).
    Edge(usize),
}

/// An executable plan for one TQL query against one graph.
pub struct Plan {
    /// The lowered pattern query (in plan order, possibly reversed).
    pub query: GraphQuery,
    /// True when the pattern chain was reversed for anchor selectivity.
    pub reversed: bool,
    /// Number of node patterns in the MATCH clause.
    pub node_count: usize,
    /// Variable bindings, in original pattern order.
    pub vars: HashMap<String, VarBinding>,
    /// Property keys referenced by WHERE/RETURN, resolved against the
    /// graph (`None` = the key does not exist in this graph).
    pub prop_keys: HashMap<String, Option<PropKey>>,
    /// The WHERE clause, evaluated per match.
    pub where_clause: Option<Expr>,
    /// Projected columns.
    pub returns: Vec<Projection>,
    /// LIMIT from the query text.
    pub limit: Option<usize>,
    /// Non-fatal notes (unknown labels/types, anchor choice).
    pub warnings: Vec<String>,
    /// True when the pattern can never match this graph (unknown label,
    /// edge type, or property key in a node pattern).
    pub empty: bool,
    /// True when any hop is variable-length (worth freezing a CSR
    /// snapshot for).
    pub has_varlen: bool,
    /// Human-readable anchor description for EXPLAIN-style output.
    pub anchor: String,
}

impl Plan {
    /// The node bound to original pattern position `j` in `m`.
    pub fn node_of(&self, m: &Match, j: usize) -> NodeId {
        let pos = if self.reversed {
            self.node_count - 1 - j
        } else {
            j
        };
        m.binding(pos)
    }

    /// The edge bound to original hop `h` in `m`, for single-step hops.
    pub fn edge_of(&self, m: &Match, h: usize) -> Option<EdgeId> {
        let hops = self.node_count - 1;
        let pos = if self.reversed { hops - 1 - h } else { h };
        m.hop_edge(pos)
    }

    /// The edge types the plan traverses (for CSR freezing).
    pub fn edge_types(&self) -> Vec<EdgeType> {
        self.query.edge_types()
    }
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Int(i) => Value::Int(*i),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Top-level AND-chain equality comparisons — the conjuncts safe to push
/// into node patterns (they must hold for every returned row).
fn eq_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Cmp>) {
    match expr {
        Expr::Cmp(cmp) if cmp.op == CmpOp::Eq => out.push(cmp),
        Expr::Cmp(_) => {}
        Expr::And(a, b) => {
            eq_conjuncts(a, out);
            eq_conjuncts(b, out);
        }
        Expr::Or(_, _) | Expr::Not(_) => {}
    }
}

/// Collects every `var.PROP` reference in an expression.
fn cmp_refs<'e>(expr: &'e Expr, out: &mut Vec<&'e Cmp>) {
    match expr {
        Expr::Cmp(cmp) => out.push(cmp),
        Expr::And(a, b) | Expr::Or(a, b) => {
            cmp_refs(a, out);
            cmp_refs(b, out);
        }
        Expr::Not(inner) => cmp_refs(inner, out),
    }
}

/// Plans `ast` against `graph`. Errors carry the source span of the
/// offending variable; data-level misses (a label or property the graph
/// has never seen) produce an empty plan with a warning instead.
pub fn plan(graph: &Graph, ast: &TqlQuery) -> Result<Plan, ParseError> {
    let pattern = &ast.pattern;
    let mut vars: HashMap<String, VarBinding> = HashMap::new();
    for (j, node) in pattern.nodes.iter().enumerate() {
        if let Some(name) = &node.var {
            if vars.insert(name.clone(), VarBinding::Node(j)).is_some() {
                return Err(ParseError::new(
                    format!("variable `{name}` is bound more than once"),
                    node.span,
                ));
            }
        }
    }
    for (h, hop) in pattern.hops.iter().enumerate() {
        if let Some(name) = &hop.var {
            if vars.insert(name.clone(), VarBinding::Edge(h)).is_some() {
                return Err(ParseError::new(
                    format!("variable `{name}` is bound more than once"),
                    hop.span,
                ));
            }
        }
    }
    // Every variable the query reads must be bound by the pattern.
    for proj in &ast.returns {
        if !vars.contains_key(&proj.var) {
            return Err(ParseError::new(
                format!("unknown variable `{}` in RETURN", proj.var),
                proj.span,
            ));
        }
    }
    let mut where_cmps = Vec::new();
    if let Some(expr) = &ast.where_clause {
        cmp_refs(expr, &mut where_cmps);
        for cmp in &where_cmps {
            if !vars.contains_key(&cmp.var) {
                return Err(ParseError::new(
                    format!("unknown variable `{}` in WHERE", cmp.var),
                    cmp.span,
                ));
            }
        }
    }

    let mut warnings = Vec::new();
    let mut empty = false;

    // Resolve every property name WHERE/RETURN mentions, once.
    let mut prop_keys: HashMap<String, Option<PropKey>> = HashMap::new();
    for name in where_cmps
        .iter()
        .map(|c| c.prop.as_str())
        .chain(ast.returns.iter().filter_map(|p| p.prop.as_deref()))
    {
        if !prop_keys.contains_key(name) {
            let key = graph.get_prop_key(name);
            if key.is_none() {
                warnings.push(format!(
                    "property `{name}` does not exist in this graph; comparisons on it never match and projections of it are null"
                ));
            }
            prop_keys.insert(name.to_owned(), key);
        }
    }

    // Per-node constraint lists: the pattern's own props plus pushed-down
    // WHERE equality conjuncts on that node's variable.
    let mut node_props: Vec<Vec<(PropKey, Value)>> = Vec::with_capacity(pattern.nodes.len());
    let mut node_labels = Vec::with_capacity(pattern.nodes.len());
    for node in &pattern.nodes {
        let label = match &node.label {
            Some(name) => match graph.get_label(name) {
                Some(label) => Some(label),
                None => {
                    warnings.push(format!(
                        "label `{name}` does not exist in this graph; the pattern cannot match"
                    ));
                    empty = true;
                    None
                }
            },
            None => None,
        };
        node_labels.push(label);
        let mut props = Vec::new();
        for (key_name, lit) in &node.props {
            match graph.get_prop_key(key_name) {
                Some(key) => props.push((key, literal_value(lit))),
                None => {
                    warnings.push(format!(
                        "property `{key_name}` does not exist in this graph; the pattern cannot match"
                    ));
                    empty = true;
                }
            }
        }
        node_props.push(props);
    }
    if let Some(expr) = &ast.where_clause {
        let mut pushable = Vec::new();
        eq_conjuncts(expr, &mut pushable);
        for cmp in pushable {
            if let (Some(VarBinding::Node(j)), Some(Some(key))) =
                (vars.get(&cmp.var), prop_keys.get(&cmp.prop))
            {
                node_props[*j].push((*key, literal_value(&cmp.rhs)));
            }
        }
    }

    // Resolve edge types.
    let mut hop_types = Vec::with_capacity(pattern.hops.len());
    for hop in &pattern.hops {
        match graph.get_edge_type(&hop.ty) {
            Some(ty) => hop_types.push(Some(ty)),
            None => {
                warnings.push(format!(
                    "edge type `{}` does not exist in this graph; the pattern cannot match",
                    hop.ty
                ));
                empty = true;
                hop_types.push(None);
            }
        }
    }

    let build_pat = |j: usize| -> NodePattern {
        let mut pat = match node_labels[j] {
            Some(label) => NodePattern::label(label),
            None => NodePattern::any(),
        };
        for (key, value) in &node_props[j] {
            pat = pat.prop(*key, value.clone());
        }
        pat
    };

    // Anchor choice: start from whichever end of the chain is cheaper.
    let n = pattern.nodes.len();
    let (reversed, anchor) = if empty || n == 1 {
        (
            false,
            describe_anchor(graph, &build_pat(0), &pattern.nodes[0], false),
        )
    } else {
        let head = build_pat(0).estimated_candidates(graph);
        let tail = build_pat(n - 1).estimated_candidates(graph);
        if tail < head {
            (
                true,
                format!(
                    "{} (pattern reversed: {tail} right-end candidates vs {head} left-end)",
                    describe_anchor(graph, &build_pat(n - 1), &pattern.nodes[n - 1], true)
                ),
            )
        } else {
            (
                false,
                format!(
                    "{} ({head} left-end candidates vs {tail} right-end)",
                    describe_anchor(graph, &build_pat(0), &pattern.nodes[0], false)
                ),
            )
        }
    };

    // Assemble the backend query in plan order.
    let order: Vec<usize> = if reversed {
        (0..n).rev().collect()
    } else {
        (0..n).collect()
    };
    let mut query = GraphQuery::new(build_pat(order[0]));
    if !empty {
        for step in 0..pattern.hops.len() {
            // Hop between plan positions `step` and `step + 1`.
            let h = if reversed {
                pattern.hops.len() - 1 - step
            } else {
                step
            };
            let hop = &pattern.hops[h];
            let ty = hop_types[h].expect("non-empty plan has resolved types");
            let direction = match (hop.dir, reversed) {
                (HopDir::Out, false) | (HopDir::In, true) => Direction::Outgoing,
                (HopDir::In, false) | (HopDir::Out, true) => Direction::Incoming,
                (HopDir::Both, _) => Direction::Both,
            };
            query = query.repeat(ty, direction, hop.min, hop.max, build_pat(order[step + 1]));
        }
    }

    Ok(Plan {
        query,
        reversed,
        node_count: n,
        vars,
        prop_keys,
        where_clause: ast.where_clause.clone(),
        returns: ast.returns.clone(),
        limit: ast.limit,
        warnings,
        empty,
        has_varlen: pattern.hops.iter().any(|h| !h.is_single()),
        anchor,
    })
}

fn describe_anchor(
    graph: &Graph,
    pat: &NodePattern,
    node: &crate::ast::NodePat,
    reversed: bool,
) -> String {
    let which = if reversed { "right end" } else { "left end" };
    let how = if pat.is_indexed(graph) {
        "index lookup"
    } else if node.label.is_some() {
        "label scan"
    } else {
        "full scan"
    };
    format!("anchor: {which} via {how}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Methods m0..m3 in a CALL chain, NAME indexed.
    fn fixture() -> Graph {
        let mut g = Graph::new();
        let method = g.label("Method");
        let call = g.edge_type("CALL");
        let name = g.prop_key("NAME");
        g.create_index(method, name);
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(method)).collect();
        for (i, n) in nodes.iter().enumerate() {
            g.set_node_prop(*n, name, Value::from(format!("m{i}")));
        }
        for w in nodes.windows(2) {
            g.add_edge(call, w[0], w[1]);
        }
        g
    }

    #[test]
    fn reverses_when_right_end_is_selective() {
        let g = fixture();
        let ast =
            parse("MATCH (a:Method)-[:CALL*1..3]->(b:Method {NAME: \"m3\"}) RETURN a").unwrap();
        let plan = plan(&g, &ast).unwrap();
        assert!(plan.reversed, "anchor: {}", plan.anchor);
        let rows: Vec<_> = plan
            .query
            .stream(&g, tabby_graph::query::ExecBudget::default())
            .collect();
        // Three paths end at m3 (from m0, m1, m2); planned start is m3.
        assert_eq!(rows.len(), 3);
        for m in &rows {
            // Original variable `b` is pattern position 1 → still m3.
            let b = plan.node_of(m, 1);
            assert_eq!(
                g.node_prop(b, g.get_prop_key("NAME").unwrap()),
                Some(&Value::from("m3"))
            );
        }
    }

    #[test]
    fn keeps_forward_when_left_end_is_selective() {
        let g = fixture();
        let ast = parse("MATCH (a:Method {NAME: \"m0\"})-[:CALL]->(b) RETURN b").unwrap();
        let plan = plan(&g, &ast).unwrap();
        assert!(!plan.reversed);
    }

    #[test]
    fn where_equality_pushdown_anchors_the_pattern() {
        let g = fixture();
        let ast = parse("MATCH (a:Method)-[:CALL]->(b) WHERE a.NAME = \"m0\" RETURN b").unwrap();
        let plan = plan(&g, &ast).unwrap();
        assert!(!plan.reversed);
        assert!(
            plan.anchor.contains("index lookup"),
            "anchor: {}",
            plan.anchor
        );
    }

    #[test]
    fn unknown_label_plans_empty_with_warning() {
        let g = fixture();
        let ast = parse("MATCH (a:Clazz) RETURN a").unwrap();
        let plan = plan(&g, &ast).unwrap();
        assert!(plan.empty);
        assert!(plan.warnings.iter().any(|w| w.contains("Clazz")));
    }

    #[test]
    fn unknown_return_variable_is_an_error() {
        let g = fixture();
        let ast = parse("MATCH (a:Method) RETURN zz").unwrap();
        let err = plan(&g, &ast).unwrap_err();
        assert!(err.message.contains("zz"));
    }

    #[test]
    fn duplicate_variable_is_an_error() {
        let g = fixture();
        let ast = parse("MATCH (a:Method)-[:CALL]->(a:Method) RETURN a").unwrap();
        assert!(plan(&g, &ast).is_err());
    }
}
