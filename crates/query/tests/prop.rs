//! Property tests: pretty-printing a parsed TQL query reparses to the
//! same AST (up to spans), and the printer is canonical (printing the
//! reparse reproduces the printed text byte-for-byte). Also fuzzes the
//! parser with arbitrary input to check it never panics.

use proptest::prelude::*;
use tabby_query::ast::{
    Cmp, CmpOp, Expr, HopDir, HopPat, Literal, NodePat, Pattern, Projection, TqlQuery,
};
use tabby_query::error::Span;
use tabby_query::parse;

/// Keywords the parser claims case-insensitively; generated identifiers
/// must avoid them or the roundtrip would legitimately change shape.
const KEYWORDS: &[&str] = &[
    "match", "where", "return", "limit", "and", "or", "not", "true", "false", "contains", "starts",
    "ends", "with",
];

fn is_keyword(name: &str) -> bool {
    KEYWORDS.iter().any(|k| name.eq_ignore_ascii_case(k))
}

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_$]{0,7}".prop_filter("keyword", |s| !is_keyword(s))
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Printable ASCII plus the escapable control characters.
        "[ -~\n\t]{0,12}".prop_map(Literal::Str),
        // i64::MIN is excluded: `-9223372036854775808` re-lexes as an
        // out-of-range positive literal before the unary minus applies.
        any::<i64>()
            .prop_filter("i64::MIN", |i| *i != i64::MIN)
            .prop_map(Literal::Int),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn node_pat() -> impl Strategy<Value = NodePat> {
    (
        proptest::option::of(ident()),
        proptest::option::of(ident()),
        proptest::collection::vec((ident(), literal()), 0..3),
    )
        .prop_map(|(var, label, props)| NodePat {
            var,
            label,
            props,
            span: Span::ZERO,
        })
}

fn hop_dir() -> impl Strategy<Value = HopDir> {
    prop_oneof![Just(HopDir::Out), Just(HopDir::In), Just(HopDir::Both)]
}

fn hop_pat() -> impl Strategy<Value = HopPat> {
    (ident(), hop_dir(), 0usize..=3)
        .prop_flat_map(|(ty, dir, min)| (Just(ty), Just(dir), Just(min), min..=min + 3))
        .prop_flat_map(|(ty, dir, min, max)| {
            // Edge variables are only legal on single-step hops.
            let var = if min == 1 && max == 1 {
                proptest::option::of(ident()).boxed()
            } else {
                Just(None).boxed()
            };
            (Just(ty), Just(dir), Just(min), Just(max), var)
        })
        .prop_map(|(ty, dir, min, max, var)| HopPat {
            var,
            ty,
            dir,
            min,
            max,
            span: Span::ZERO,
        })
}

fn pattern() -> impl Strategy<Value = Pattern> {
    (
        node_pat(),
        proptest::collection::vec((hop_pat(), node_pat()), 0..3),
    )
        .prop_map(|(head, rest)| {
            let mut nodes = vec![head];
            let mut hops = Vec::new();
            for (hop, node) in rest {
                hops.push(hop);
                nodes.push(node);
            }
            Pattern { nodes, hops }
        })
}

fn cmp() -> impl Strategy<Value = Expr> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Contains),
        Just(CmpOp::StartsWith),
        Just(CmpOp::EndsWith),
    ];
    (ident(), ident(), op, literal()).prop_map(|(var, prop, op, rhs)| {
        Expr::Cmp(Cmp {
            var,
            prop,
            op,
            rhs,
            span: Span::ZERO,
        })
    })
}

fn expr() -> impl Strategy<Value = Expr> {
    cmp().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn projection() -> impl Strategy<Value = Projection> {
    (ident(), proptest::option::of(ident())).prop_map(|(var, prop)| Projection {
        var,
        prop,
        span: Span::ZERO,
    })
}

fn tql_query() -> impl Strategy<Value = TqlQuery> {
    (
        pattern(),
        proptest::option::of(expr()),
        proptest::collection::vec(projection(), 1..3),
        proptest::option::of(0usize..=50),
    )
        .prop_map(|(pattern, where_clause, returns, limit)| TqlQuery {
            pattern,
            where_clause,
            returns,
            limit,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printer is the inverse of the parser: parse(print(ast)) == ast.
    #[test]
    fn print_then_reparse_is_identity(ast in tql_query()) {
        let printed = ast.to_string();
        let mut reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {e}\n  {printed}"));
        reparsed.strip_spans();
        prop_assert_eq!(&reparsed, &ast, "printed form was: {}", printed);
        // The printer is canonical, so a second print is a fixed point.
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Arbitrary input never panics the lexer or parser.
    #[test]
    fn parser_never_panics(src in "[ -~\n\t]{0,60}") {
        let _ = parse(&src);
    }

    /// Parsing real-looking query prefixes never panics either.
    #[test]
    fn parser_never_panics_on_query_like_input(
        src in "(MATCH|match)?[ ]?[(){}\\[\\]:,.*<>=!a-zA-Z0-9_\" -]{0,50}"
    ) {
        let _ = parse(&src);
    }
}
