//! Executor oracle tests: TQL answers over the workloads scenes must
//! equal the same question asked directly of the `GraphStore` API
//! (index lookups, `edges_of`, and a handwritten path DFS).
//!
//! Rows are compared as sorted multisets — TQL emits one row per match
//! in depth-first order, the oracle in whatever order the store yields.

use serde_json::Value as Json;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_graph::{Direction, EdgeType, Graph, Label, NodeId, Value};
use tabby_pathfinder::{SinkCatalog, SourceCatalog};
use tabby_query::builtins;
use tabby_query::{run_query, value_to_json, ExecConfig, QueryOutput};
use tabby_workloads::scenes;

fn build_annotated(scene: &scenes::Scene) -> Cpg {
    let mut cpg = Cpg::build(&scene.component.program, AnalysisConfig::default());
    SinkCatalog::paper().annotate(&mut cpg);
    SourceCatalog::native_serialization().annotate(&mut cpg);
    cpg
}

fn run(graph: &Graph, text: &str) -> QueryOutput {
    let out = run_query(graph, text, &ExecConfig::default())
        .unwrap_or_else(|e| panic!("query failed: {e}\n  {text}"));
    assert!(!out.truncated, "oracle queries must not truncate: {text}");
    out
}

fn sorted(rows: &[Vec<Json>]) -> Vec<String> {
    let mut keys: Vec<String> = rows
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    keys.sort();
    keys
}

fn str_prop(graph: &Graph, node: NodeId, key: &str) -> Json {
    let k = graph.get_prop_key(key).expect("schema key");
    match graph.node_prop(node, k) {
        Some(v) => value_to_json(v),
        None => Json::Null,
    }
}

/// The method name with the largest outgoing-CALL fan-out — a
/// deterministic, scene-independent anchor for the hop oracles.
fn busiest_name(graph: &Graph) -> Option<String> {
    let method = graph.get_label("Method")?;
    let call = graph.get_edge_type("CALL")?;
    let name_key = graph.get_prop_key("NAME")?;
    graph
        .nodes_with_label(method)
        .into_iter()
        .max_by_key(|&n| {
            (
                graph.edges_of(n, Direction::Outgoing, Some(call)).len(),
                // Tie-break on id so the choice is stable.
                std::cmp::Reverse(n.index()),
            )
        })
        .and_then(|n| graph.node_prop(n, name_key))
        .and_then(|v| v.as_str())
        .map(str::to_owned)
}

#[test]
fn name_anchor_matches_store_index() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let Some(name) = busiest_name(g) else {
            continue;
        };
        let out = run(
            g,
            &format!("MATCH (m:Method {{NAME: \"{name}\"}}) RETURN m.SIGNATURE"),
        );
        let expected: Vec<Vec<Json>> = g
            .nodes_by(
                cpg.schema.method_label,
                cpg.schema.name,
                &Value::from(name.as_str()),
            )
            .into_iter()
            .map(|n| vec![str_prop(g, n, "SIGNATURE")])
            .collect();
        assert!(
            !expected.is_empty(),
            "{}: anchor name vanished",
            scene.component.name
        );
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{}",
            scene.component.name
        );
    }
}

#[test]
fn sink_builtin_matches_store_scan() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let text = builtins::find("sinks").unwrap().instantiate(&[]).unwrap();
        let out = run(g, &text);
        let is_sink = g.get_prop_key("IS_SINK").expect("annotated");
        let expected: Vec<Vec<Json>> = g
            .nodes_with_label(cpg.schema.method_label)
            .into_iter()
            .filter(|&n| g.node_prop(n, is_sink) == Some(&Value::Bool(true)))
            .map(|n| vec![str_prop(g, n, "SIGNATURE"), str_prop(g, n, "SINK_CATEGORY")])
            .collect();
        assert!(
            !expected.is_empty(),
            "{}: no sinks annotated",
            scene.component.name
        );
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{}",
            scene.component.name
        );
    }
}

#[test]
fn source_builtin_matches_store_scan() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let text = builtins::find("sources").unwrap().instantiate(&[]).unwrap();
        let out = run(g, &text);
        let is_source = g.get_prop_key("IS_SOURCE").expect("annotated");
        let expected: Vec<Vec<Json>> = g
            .nodes_with_label(cpg.schema.method_label)
            .into_iter()
            .filter(|&n| g.node_prop(n, is_source) == Some(&Value::Bool(true)))
            .map(|n| vec![str_prop(g, n, "SIGNATURE"), str_prop(g, n, "CLASS_NAME")])
            .collect();
        assert!(
            !expected.is_empty(),
            "{}: no sources annotated",
            scene.component.name
        );
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{}",
            scene.component.name
        );
    }
}

#[test]
fn single_call_hop_matches_edges_of() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let Some(name) = busiest_name(g) else {
            continue;
        };
        let out = run(
            g,
            &format!(
                "MATCH (a:Method {{NAME: \"{name}\"}})-[:CALL]->(b:Method) RETURN b.SIGNATURE"
            ),
        );
        let mut expected: Vec<Vec<Json>> = Vec::new();
        for a in g.nodes_by(
            cpg.schema.method_label,
            cpg.schema.name,
            &Value::from(name.as_str()),
        ) {
            for e in g.edges_of(a, Direction::Outgoing, Some(cpg.schema.call)) {
                let (_, b) = g.endpoints(e);
                // The matcher walks simple paths, so a self-call is no row.
                if b == a || g.node_label(b) != cpg.schema.method_label {
                    continue;
                }
                expected.push(vec![str_prop(g, b, "SIGNATURE")]);
            }
        }
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{}",
            scene.component.name
        );
    }
}

/// Reference DFS: all simple paths of `min..=max` edges of type `ty` out
/// of `start`, yielding each accepted endpoint once per path (matching
/// the one-row-per-match semantics of the executor).
fn reference_paths(
    g: &Graph,
    ty: EdgeType,
    end_label: Label,
    start: NodeId,
    min: usize,
    max: usize,
) -> Vec<NodeId> {
    fn go(
        g: &Graph,
        ty: EdgeType,
        end_label: Label,
        path: &mut Vec<NodeId>,
        steps: usize,
        min: usize,
        max: usize,
        out: &mut Vec<NodeId>,
    ) {
        let end = *path.last().unwrap();
        if steps >= min && g.node_label(end) == end_label {
            out.push(end);
        }
        if steps == max {
            return;
        }
        for e in g.edges_of(end, Direction::Outgoing, Some(ty)) {
            let (_, to) = g.endpoints(e);
            if path.contains(&to) {
                continue;
            }
            path.push(to);
            go(g, ty, end_label, path, steps + 1, min, max, out);
            path.pop();
        }
    }
    let mut out = Vec::new();
    go(g, ty, end_label, &mut vec![start], 0, min, max, &mut out);
    out
}

#[test]
fn varlen_call_paths_match_reference_dfs() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let Some(name) = busiest_name(g) else {
            continue;
        };
        let out = run(
            g,
            &format!(
                "MATCH (a:Method {{NAME: \"{name}\"}})-[:CALL*1..3]->(b:Method) RETURN b.SIGNATURE"
            ),
        );
        let mut expected: Vec<Vec<Json>> = Vec::new();
        for a in g.nodes_by(
            cpg.schema.method_label,
            cpg.schema.name,
            &Value::from(name.as_str()),
        ) {
            for b in reference_paths(g, cpg.schema.call, cpg.schema.method_label, a, 1, 3) {
                expected.push(vec![str_prop(g, b, "SIGNATURE")]);
            }
        }
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{} (anchor {name})",
            scene.component.name
        );
    }
}

#[test]
fn pp_into_builtin_matches_edge_scan() {
    for scene in scenes::smoke() {
        let cpg = build_annotated(&scene);
        let g = &cpg.graph;
        let Some(name) = busiest_name(g) else {
            continue;
        };
        let text = builtins::find("pp-into")
            .unwrap()
            .instantiate(&[name.clone()])
            .unwrap();
        let out = run(g, &text);
        let mut expected: Vec<Vec<Json>> = Vec::new();
        for m in g.nodes_by(
            cpg.schema.method_label,
            cpg.schema.name,
            &Value::from(name.as_str()),
        ) {
            for e in g.edges_of(m, Direction::Incoming, Some(cpg.schema.call)) {
                let (c, _) = g.endpoints(e);
                if c == m || g.node_label(c) != cpg.schema.method_label {
                    continue;
                }
                let pp = match g.edge_prop(e, cpg.schema.polluted_position) {
                    Some(v) => value_to_json(v),
                    None => Json::Null,
                };
                expected.push(vec![str_prop(g, c, "SIGNATURE"), pp]);
            }
        }
        assert_eq!(
            sorted(&out.rows),
            sorted(&expected),
            "{} (anchor {name})",
            scene.component.name
        );
    }
}

#[test]
fn varlen_budget_reports_truncation_instead_of_hanging() {
    let scene = &scenes::smoke()[0];
    let cpg = build_annotated(scene);
    let cfg = ExecConfig {
        max_expansions: 16,
        ..ExecConfig::default()
    };
    let out = run_query(
        &cpg.graph,
        "MATCH (a:Method)-[:CALL*1..8]->(b:Method) RETURN b.SIGNATURE",
        &cfg,
    )
    .unwrap();
    assert!(out.truncated, "a 16-expansion budget must truncate");
    assert!(out.expansions <= 16 + 1);
}
