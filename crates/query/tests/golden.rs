//! Parser golden tests: every malformed query must produce a stable,
//! helpful message anchored to the right span.

use tabby_query::{parse, ParseError};

struct Golden {
    src: &'static str,
    message_contains: &'static str,
    span: (usize, usize),
}

fn parse_err(src: &str) -> ParseError {
    match parse(src) {
        Ok(q) => panic!("expected a parse error for {src:?}, got {q}"),
        Err(e) => e,
    }
}

#[test]
fn golden_errors() {
    let cases = [
        Golden {
            src: "FETCH (m) RETURN m",
            message_contains: "expected `MATCH`, found `FETCH`",
            span: (0, 5),
        },
        Golden {
            src: "MATCH m RETURN m",
            message_contains: "expected `(` to start a node pattern",
            span: (6, 7),
        },
        Golden {
            src: "MATCH (m:Method RETURN m",
            message_contains: "expected `)` to close the node pattern, found `RETURN`",
            span: (16, 22),
        },
        Golden {
            src: "MATCH (m) RETURN",
            message_contains: "expected a variable in RETURN, found end of query",
            span: (16, 16),
        },
        Golden {
            src: "MATCH (a)-[]->(b) RETURN a",
            message_contains: "edge patterns must name a type",
            span: (11, 12),
        },
        Golden {
            src: "MATCH (a)-[:CALL*1..]->(b) RETURN a",
            message_contains: "explicit upper bound",
            span: (20, 21),
        },
        Golden {
            src: "MATCH (a)-[:CALL*5..2]->(b) RETURN a",
            message_contains: "`*5..2` is empty",
            span: (9, 22),
        },
        Golden {
            src: "MATCH (a)-[e:CALL*1..3]->(b) RETURN e",
            message_contains: "edge variables are not supported on variable-length hops",
            span: (9, 25),
        },
        Golden {
            src: "MATCH (a)<-[:CALL]->(b) RETURN a",
            message_contains: "cannot point both ways",
            span: (9, 20),
        },
        Golden {
            src: "MATCH (m) WHERE m.NAME ~ \"x\" RETURN m",
            message_contains: "unexpected character `~`",
            span: (23, 24),
        },
        Golden {
            src: "MATCH (m) WHERE m.NAME = RETURN m",
            message_contains: "expected a literal",
            span: (25, 31),
        },
        Golden {
            src: "MATCH (m) WHERE m.NAME STARTS \"x\" RETURN m",
            message_contains: "expected `WITH`",
            span: (30, 33),
        },
        Golden {
            src: "MATCH (m) RETURN m LIMIT x",
            message_contains: "expected a row count after LIMIT, found `x`",
            span: (25, 26),
        },
        Golden {
            src: "MATCH (m {NAME \"x\"}) RETURN m",
            message_contains: "expected `:` after the property name",
            span: (15, 18),
        },
        Golden {
            src: "MATCH (m) RETURN m extra",
            message_contains: "unexpected trailing `extra`",
            span: (19, 24),
        },
        Golden {
            src: "MATCH (m {NAME: \"unterminated}) RETURN m",
            message_contains: "unterminated string literal",
            span: (16, 40),
        },
    ];
    for case in cases {
        let err = parse_err(case.src);
        assert!(
            err.message.contains(case.message_contains),
            "for {:?}: message {:?} does not contain {:?}",
            case.src,
            err.message,
            case.message_contains
        );
        assert_eq!(
            (err.span.start, err.span.end),
            case.span,
            "for {:?}: wrong span (message: {})",
            case.src,
            err.message
        );
    }
}

#[test]
fn render_draws_a_caret_under_the_span() {
    let src = "MATCH (m:Method RETURN m";
    let err = parse_err(src);
    let rendered = err.render(src);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].starts_with("error: "));
    assert_eq!(lines[1], format!("  {src}"));
    // Caret under "RETURN" (columns 16..22, plus the two-space indent).
    assert_eq!(lines[2], format!("  {}{}", " ".repeat(16), "^".repeat(6)));
}

#[test]
fn empty_input_reports_missing_match() {
    let err = parse_err("");
    assert!(err.message.contains("expected `MATCH`"));
    assert_eq!((err.span.start, err.span.end), (0, 0));
}
