//! Class-file round-trip tests: IR → `.class` bytes → lifted IR.
//!
//! The lifted program is not syntactically identical to the original (the
//! lifter materializes stack cells as extra locals), but it must preserve
//! the *semantics the analysis consumes*: class hierarchy, field layout,
//! method signatures, and — crucially — the call structure and the dataflow
//! from fields/parameters into call arguments.

use tabby_ir::compile::compile_program;
use tabby_ir::lift::lift_program;
use tabby_ir::{CmpOp, InvokeKind, JType, Program, ProgramBuilder, Stmt};

fn roundtrip(p: &Program) -> Program {
    let bytes: Vec<Vec<u8>> = compile_program(p).into_iter().map(|(_, b)| b).collect();
    lift_program(&bytes).expect("lift")
}

fn method_by_name<'p>(p: &'p Program, name: &str) -> &'p tabby_ir::Method {
    let id = p
        .method_ids()
        .find(|id| p.name(p.method(*id).name) == name)
        .unwrap_or_else(|| panic!("method {name} not found"));
    p.method(id)
}

#[test]
fn hierarchy_and_members_survive() {
    let mut pb = ProgramBuilder::new();
    pb.class("p.Iface").interface().finish();
    let mut cb = pb
        .class("p.Impl")
        .extends("p.Base")
        .implements(&["p.Iface", "java.io.Serializable"]);
    let obj = cb.object_type("java.lang.Object");
    cb.field("payload", obj.clone());
    cb.field("count", JType::Int);
    cb.method("run", vec![obj.clone()], obj.clone())
        .abstract_()
        .finish();
    cb.finish();
    pb.class("p.Base").finish();
    let p = pb.build();
    let lifted = roundtrip(&p);

    let impl_id = lifted.class_by_str("p.Impl").expect("p.Impl");
    let class = lifted.class(impl_id);
    assert_eq!(lifted.name(class.superclass.unwrap()), "p.Base");
    let itf_names: Vec<&str> = class.interfaces.iter().map(|i| lifted.name(*i)).collect();
    assert_eq!(itf_names, vec!["p.Iface", "java.io.Serializable"]);
    assert_eq!(class.fields.len(), 2);
    assert_eq!(lifted.name(class.fields[0].name), "payload");
    assert_eq!(class.fields[1].ty, JType::Int);
    // Abstract method: no body after the round trip either.
    assert!(class.methods[0].body.is_none());
    assert!(lifted.class_by_str("p.Iface").is_some());
    assert!(lifted
        .class(lifted.class_by_str("p.Iface").unwrap())
        .flags
        .is_interface());
}

#[test]
fn call_structure_survives() {
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("p.Caller").serializable();
    let obj = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    cb.field("cmd", string.clone());
    let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
    let this = mb.this();
    let cmd = mb.fresh();
    mb.get_field(cmd, this, "p.Caller", "cmd", string.clone());
    let rt_ty = mb.object_type("java.lang.Runtime");
    let rt = mb.fresh();
    let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], rt_ty);
    mb.call_static(Some(rt), get_rt, &[]);
    let process = mb.object_type("java.lang.Process");
    let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], process);
    mb.call_virtual(None, rt, exec, &[cmd.into()]);
    mb.finish();
    cb.finish();
    let p = pb.build();
    let lifted = roundtrip(&p);
    let method = method_by_name(&lifted, "readObject");
    let body = method.body.as_ref().unwrap();
    let invokes: Vec<_> = body.stmts.iter().filter_map(|s| s.invoke()).collect();
    assert_eq!(invokes.len(), 2);
    assert_eq!(lifted.name(invokes[0].callee.name), "getRuntime");
    assert_eq!(invokes[0].kind, InvokeKind::Static);
    assert_eq!(lifted.name(invokes[1].callee.name), "exec");
    assert_eq!(invokes[1].kind, InvokeKind::Virtual);
    assert_eq!(lifted.name(invokes[1].callee.class), "java.lang.Runtime");
    assert_eq!(invokes[1].args.len(), 1);
}

#[test]
fn branches_survive() {
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("p.Branchy");
    let mut mb = cb.method("m", vec![JType::Int], JType::Int).static_();
    let p0 = mb.param(0);
    let end = mb.fresh_label();
    mb.if_(CmpOp::Eq, p0, mb.c_int(0), end);
    mb.nop();
    mb.place(end);
    let r = mb.fresh();
    mb.copy(r, mb.c_int(9));
    mb.ret(r);
    mb.finish();
    cb.finish();
    let p = pb.build();
    let lifted = roundtrip(&p);
    let body = method_by_name(&lifted, "m").body.as_ref().unwrap();
    let has_if = body.stmts.iter().any(|s| matches!(s, Stmt::If { .. }));
    assert!(has_if);
    // The branch target must resolve inside the body.
    for stmt in &body.stmts {
        for t in stmt.targets() {
            assert!(body.target(t) < body.stmts.len());
        }
    }
}

#[test]
fn switch_survives() {
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("p.Switchy");
    let mut mb = cb.method("m", vec![JType::Int], JType::Void).static_();
    let p0 = mb.param(0);
    let a = mb.fresh_label();
    let d = mb.fresh_label();
    mb.switch(p0, vec![(4, a), (9, a)], d);
    mb.place(a);
    mb.nop();
    mb.place(d);
    mb.ret_void();
    mb.finish();
    cb.finish();
    let p = pb.build();
    let lifted = roundtrip(&p);
    let body = method_by_name(&lifted, "m").body.as_ref().unwrap();
    let switch = body
        .stmts
        .iter()
        .find_map(|s| match s {
            Stmt::Switch { cases, .. } => Some(cases.clone()),
            _ => None,
        })
        .expect("switch survived");
    let keys: Vec<i64> = switch.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![4, 9]);
}

#[test]
fn dynamic_invoke_round_trips_to_dynamic() {
    use tabby_ir::{InvokeExpr, Operand};
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("p.Dyn").serializable();
    let obj = cb.object_type("java.lang.Object");
    let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
    let this = mb.this();
    let callee = mb.sig("p.Dyn", "lambda$0", &[obj.clone()], JType::Void);
    mb.push(Stmt::Invoke(InvokeExpr {
        kind: InvokeKind::Dynamic,
        base: None,
        callee,
        args: vec![Operand::Local(this)],
    }));
    mb.finish();
    cb.finish();
    let p = pb.build();
    let lifted = roundtrip(&p);
    let body = method_by_name(&lifted, "readObject").body.as_ref().unwrap();
    let inv = body
        .stmts
        .iter()
        .find_map(|s| s.invoke())
        .expect("invoke survived");
    assert_eq!(inv.kind, InvokeKind::Dynamic);
}

#[test]
fn static_fields_and_arrays_survive() {
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("p.Arr");
    let obj = cb.object_type("java.lang.Object");
    cb.static_field("shared", obj.clone());
    let mut mb = cb.method("m", vec![obj.clone()], obj.clone()).static_();
    let p0 = mb.param(0);
    mb.put_static("p.Arr", "shared", obj.clone(), p0);
    let arr = mb.fresh();
    mb.new_array(arr, obj.clone(), mb.c_int(2));
    mb.array_put(arr, mb.c_int(0), p0);
    let v = mb.fresh();
    mb.array_get(v, arr, mb.c_int(0));
    mb.ret(v);
    mb.finish();
    cb.finish();
    let p = pb.build();
    let lifted = roundtrip(&p);
    let body = method_by_name(&lifted, "m").body.as_ref().unwrap();
    use tabby_ir::{Expr, Place};
    assert!(body.stmts.iter().any(|s| matches!(
        s,
        Stmt::Assign {
            place: Place::StaticField(_),
            ..
        }
    )));
    assert!(body.stmts.iter().any(|s| matches!(
        s,
        Stmt::Assign {
            place: Place::ArrayElem { .. },
            ..
        }
    )));
    assert!(body.stmts.iter().any(|s| matches!(
        s,
        Stmt::Assign {
            rhs: Expr::NewArray { .. },
            ..
        }
    )));
}
