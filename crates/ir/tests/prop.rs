//! Property-based tests for the IR substrate: descriptor round trips,
//! interner behaviour, CFG well-formedness, and the compile→lift pipeline
//! on generated bodies.

use proptest::prelude::*;
use tabby_ir::{
    method_descriptor, parse_method_descriptor, CmpOp, Interner, JType, ProgramBuilder,
};

/// Strategy for arbitrary JVM types (bounded nesting).
fn jtype() -> impl Strategy<Value = fn(&mut Interner) -> JType> {
    prop_oneof![
        Just((|_: &mut Interner| JType::Int) as fn(&mut Interner) -> JType),
        Just((|_: &mut Interner| JType::Boolean) as fn(&mut Interner) -> JType),
        Just((|_: &mut Interner| JType::Long) as fn(&mut Interner) -> JType),
        Just((|_: &mut Interner| JType::Double) as fn(&mut Interner) -> JType),
        Just(
            (|i: &mut Interner| JType::object(i, "java.lang.String")) as fn(&mut Interner) -> JType
        ),
        Just((|i: &mut Interner| JType::object(i, "a.b.C$Inner")) as fn(&mut Interner) -> JType),
        Just(
            (|i: &mut Interner| JType::array(JType::object(i, "java.util.Map")))
                as fn(&mut Interner) -> JType
        ),
        Just(
            (|_: &mut Interner| JType::array(JType::array(JType::Byte)))
                as fn(&mut Interner) -> JType
        ),
    ]
}

proptest! {
    #[test]
    fn method_descriptors_round_trip(params in prop::collection::vec(jtype(), 0..6), ret in jtype()) {
        let mut interner = Interner::new();
        let params: Vec<JType> = params.into_iter().map(|f| f(&mut interner)).collect();
        let ret = ret(&mut interner);
        let desc = method_descriptor(&interner, &params, &ret);
        let (back_params, back_ret) = parse_method_descriptor(&mut interner, &desc).unwrap();
        prop_assert_eq!(back_params, params);
        prop_assert_eq!(back_ret, ret);
    }

    #[test]
    fn interner_is_stable_under_any_input(names in prop::collection::vec("[a-zA-Z0-9$./_]{1,40}", 1..50)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), name.as_str());
            prop_assert_eq!(interner.intern(name), *sym);
        }
    }

    #[test]
    fn cfg_successors_are_in_bounds(stmt_count in 1usize..20, branch_at in 0usize..20, target in 0usize..20) {
        // Build a body with a branch from `branch_at` to `target` (both
        // clamped) plus padding nops; the CFG must stay in bounds and the
        // RPO must cover every statement exactly once.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![JType::Int], JType::Void).static_();
        let p0 = mb.param(0);
        let label = mb.fresh_label();
        let branch_at = branch_at % stmt_count;
        for i in 0..stmt_count {
            if i == branch_at {
                mb.if_(CmpOp::Eq, p0, mb.c_int(0), label);
            } else {
                mb.nop();
            }
        }
        let target = target % 2; // place the label before the trailing return or at it
        if target == 0 {
            mb.place(label);
            mb.nop();
        } else {
            mb.place(label);
        }
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        let cfg = tabby_ir::Cfg::new(body);
        for i in 0..cfg.len() {
            for &s in cfg.succs(i) {
                prop_assert!(s < cfg.len());
                prop_assert!(cfg.preds(s).contains(&i));
            }
        }
        let rpo = cfg.reverse_post_order();
        prop_assert_eq!(rpo.len(), cfg.len());
        let mut seen = rpo.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), cfg.len());
    }

    #[test]
    fn compile_lift_preserves_invoke_count(calls in 1usize..8, fields in 0usize..4) {
        // A generated body with `fields` field loads and `calls` static
        // calls must keep its call count through compile -> parse -> lift.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.Gen").serializable();
        let obj = cb.object_type("java.lang.Object");
        for f in 0..fields {
            cb.field(&format!("f{f}"), obj.clone());
        }
        let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
        let this = mb.this();
        let mut cursor = mb.param(0);
        for f in 0..fields {
            let v = mb.fresh();
            mb.get_field(v, this, "t.Gen", &format!("f{f}"), obj.clone());
            cursor = v;
        }
        for k in 0..calls {
            let callee = mb.sig("t.Ext", &format!("step{k}"), &[obj.clone()], obj.clone());
            let r = mb.fresh();
            mb.call_static(Some(r), callee, &[cursor.into()]);
            cursor = r;
        }
        mb.finish();
        cb.finish();
        let p = pb.build();
        let bytes: Vec<Vec<u8>> = tabby_ir::compile::compile_program(&p)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let lifted = tabby_ir::lift::lift_program(&bytes).unwrap();
        let id = lifted
            .method_ids()
            .find(|id| lifted.name(lifted.method(*id).name) == "readObject")
            .unwrap();
        let body = lifted.method(id).body.as_ref().unwrap();
        let lifted_calls = body.stmts.iter().filter(|s| s.invoke().is_some()).count();
        prop_assert_eq!(lifted_calls, calls);
    }
}
