//! Statement-level control-flow graphs.
//!
//! The controllability analysis (§III-C, Algorithm 1) walks "Jimple Control
//! flow graphs"; we provide statement-granularity successor/predecessor
//! tables plus a reverse-post-order, which is the iteration order the
//! fixed-point dataflow uses.

use crate::model::Body;
use crate::stmt::Stmt;

/// A statement-level CFG for one method body.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG for `body`.
    ///
    /// Fall-through edges connect consecutive statements unless the earlier
    /// one is a terminator; branch edges follow [`Stmt::targets`]. `throw`
    /// and `ret` end their path (exceptional edges are not modeled, matching
    /// the paper's intraprocedural treatment).
    pub fn new(body: &Body) -> Self {
        let n = body.stmts.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, stmt) in body.stmts.iter().enumerate() {
            let add = |to: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<Vec<usize>>| {
                if to < n && !succs[i].contains(&to) {
                    succs[i].push(to);
                    preds[to].push(i);
                }
            };
            if !stmt.is_terminator() && i + 1 < n {
                add(i + 1, &mut succs, &mut preds);
            }
            match stmt {
                Stmt::Return(_) | Stmt::Throw(_) | Stmt::Ret(_) => {}
                _ => {
                    for label in stmt.targets() {
                        add(body.target(label), &mut succs, &mut preds);
                    }
                }
            }
        }
        Self { succs, preds }
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of statement `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Predecessors of statement `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Statements in reverse post-order from the entry (index 0); statements
    /// unreachable from the entry are appended at the end in index order so
    /// every statement is visited exactly once.
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        if n > 0 {
            // Iterative DFS computing postorder.
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            visited[0] = true;
            while let Some((node, child)) = stack.pop() {
                if child < self.succs[node].len() {
                    stack.push((node, child + 1));
                    let next = self.succs[node][child];
                    if !visited[next] {
                        visited[next] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(node);
                }
            }
        }
        post.reverse();
        for i in 0..n {
            if !visited[i] {
                post.push(i);
            }
        }
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::CmpOp;
    use crate::types::JType;

    fn body_of(build: impl FnOnce(&mut crate::builder::MethodBuilder<'_, '_>)) -> Body {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![JType::Int], JType::Void);
        build(&mut mb);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        p.method(id).body.clone().unwrap()
    }

    #[test]
    fn straight_line_cfg() {
        let body = body_of(|mb| {
            mb.nop();
            mb.nop();
            mb.ret_void();
        });
        let cfg = Cfg::new(&body);
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(1), &[0]);
    }

    #[test]
    fn branch_creates_two_successors() {
        let body = body_of(|mb| {
            let p0 = mb.param(0);
            let end = mb.fresh_label();
            mb.if_(CmpOp::Eq, p0, mb.c_int(0), end);
            mb.nop();
            mb.place(end);
            mb.ret_void();
        });
        // stmts: identity(p0), if, nop, return
        let cfg = Cfg::new(&body);
        assert_eq!(cfg.succs(1).len(), 2);
        assert!(cfg.succs(1).contains(&2));
        assert!(cfg.succs(1).contains(&3));
        assert_eq!(cfg.preds(3).len(), 2);
    }

    #[test]
    fn goto_has_no_fallthrough() {
        let body = body_of(|mb| {
            let end = mb.fresh_label();
            mb.goto(end);
            mb.nop(); // unreachable
            mb.place(end);
            mb.ret_void();
        });
        let cfg = Cfg::new(&body);
        assert_eq!(cfg.succs(0), &[2]);
        assert!(cfg.preds(1).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_everything() {
        let body = body_of(|mb| {
            let end = mb.fresh_label();
            mb.goto(end);
            mb.nop(); // unreachable
            mb.place(end);
            mb.ret_void();
        });
        let cfg = Cfg::new(&body);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 3);
        assert_eq!(rpo[0], 0);
        assert!(rpo.contains(&1));
    }

    #[test]
    fn loop_cfg_has_back_edge() {
        let body = body_of(|mb| {
            let p0 = mb.param(0);
            let head = mb.fresh_label();
            mb.place(head);
            mb.nop();
            mb.if_(CmpOp::Ne, p0, mb.c_int(0), head);
            mb.ret_void();
        });
        // stmts: identity, nop(head), if, return
        let cfg = Cfg::new(&body);
        assert!(cfg.succs(2).contains(&1));
        assert!(cfg.succs(2).contains(&3));
    }
}
