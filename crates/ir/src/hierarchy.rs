//! Class-hierarchy queries: supertypes, subtypes, serializability, and
//! virtual-method resolution.
//!
//! The Method Alias Graph (§III-B2, Formula 1) and the precise-call-graph
//! construction both need fast hierarchy queries, so [`Hierarchy`] is built
//! once per [`Program`] and memoizes the supertype/subtype relations.

use crate::model::{ClassId, MethodId, Program};
use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// Precomputed hierarchy relations over a [`Program`].
#[derive(Debug)]
pub struct Hierarchy<'p> {
    program: &'p Program,
    /// Direct supertypes (superclass + interfaces), resolved to ids; unknown
    /// names (classes outside the analyzed set) are skipped, mirroring how
    /// the paper analyzes jar sets without the full runtime.
    direct_supers: Vec<Vec<ClassId>>,
    /// Direct subtypes (reverse of `direct_supers`).
    direct_subs: Vec<Vec<ClassId>>,
    serializable: Symbol,
    externalizable: Symbol,
}

impl<'p> Hierarchy<'p> {
    /// Builds hierarchy tables for `program`.
    pub fn new(program: &'p Program) -> Self {
        let n = program.classes().len();
        let mut direct_supers: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        let mut direct_subs: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for (i, class) in program.classes().iter().enumerate() {
            let id = ClassId(i as u32);
            let mut supers = Vec::new();
            if let Some(sup) = class.superclass {
                if let Some(sid) = program.class_by_name(sup) {
                    supers.push(sid);
                }
            }
            for itf in &class.interfaces {
                if let Some(sid) = program.class_by_name(*itf) {
                    supers.push(sid);
                }
            }
            for s in &supers {
                direct_subs[s.index()].push(id);
            }
            direct_supers[id.index()] = supers;
        }
        // A marker name that was never interned cannot match any class name.
        let serializable = program
            .interner()
            .get("java.io.Serializable")
            .unwrap_or(Symbol::SENTINEL);
        let externalizable = program
            .interner()
            .get("java.io.Externalizable")
            .unwrap_or(Symbol::SENTINEL);
        Self {
            program,
            direct_supers,
            direct_subs,
            serializable,
            externalizable,
        }
    }

    /// The program this hierarchy was built for.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Direct supertypes (superclass followed by interfaces) that are present
    /// in the program.
    pub fn direct_supertypes(&self, id: ClassId) -> &[ClassId] {
        &self.direct_supers[id.index()]
    }

    /// Direct subtypes present in the program.
    pub fn direct_subtypes(&self, id: ClassId) -> &[ClassId] {
        &self.direct_subs[id.index()]
    }

    /// All transitive supertypes of `id` (excluding `id` itself), in BFS
    /// order.
    pub fn supertypes(&self, id: ClassId) -> Vec<ClassId> {
        self.closure(id, |h, c| h.direct_supertypes(c))
    }

    /// All transitive subtypes of `id` (excluding `id` itself), in BFS order.
    pub fn subtypes(&self, id: ClassId) -> Vec<ClassId> {
        self.closure(id, |h, c| h.direct_subtypes(c))
    }

    fn closure(&self, id: ClassId, step: impl Fn(&Self, ClassId) -> &[ClassId]) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        let mut queue = vec![id];
        seen.insert(id);
        while let Some(c) = queue.pop() {
            for &s in step(self, c) {
                if seen.insert(s) {
                    order.push(s);
                    queue.push(s);
                }
            }
        }
        order
    }

    /// Whether `sub` is `sup` or a transitive subtype of it.
    pub fn is_subtype_of(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        self.supertypes(sub).contains(&sup)
    }

    /// Whether the class participates in Java-native serialization, i.e.
    /// implements `java.io.Serializable` or `java.io.Externalizable`
    /// (directly or through any supertype).
    pub fn is_serializable(&self, id: ClassId) -> bool {
        let matches_marker = |c: ClassId| {
            let name = self.program.class(c).name;
            name == self.serializable || name == self.externalizable
        };
        // Interfaces named but not loaded still count: check raw names too.
        let class = self.program.class(id);
        if class
            .interfaces
            .iter()
            .any(|&i| i == self.serializable || i == self.externalizable)
        {
            return true;
        }
        self.supertypes(id).iter().any(|&s| {
            matches_marker(s)
                || self
                    .program
                    .class(s)
                    .interfaces
                    .iter()
                    .any(|&i| i == self.serializable || i == self.externalizable)
        })
    }

    /// Resolves a method *declaration*: starting at `class`, walks up the
    /// hierarchy until a method with the given name and parameter count is
    /// declared (JVMS §5.4.3.3 resolution, arity-keyed like the paper's
    /// alias matching).
    pub fn resolve_method(
        &self,
        class: ClassId,
        name: Symbol,
        param_count: usize,
    ) -> Option<MethodId> {
        if let Some(idx) = self.program.class(class).find_method(name, param_count) {
            return Some(MethodId { class, index: idx });
        }
        for sup in self.supertypes(class) {
            if let Some(idx) = self.program.class(sup).find_method(name, param_count) {
                return Some(MethodId {
                    class: sup,
                    index: idx,
                });
            }
        }
        None
    }

    /// All concrete *override* candidates for a declared method: methods with
    /// the same name/arity declared in `declared.class` itself or any of its
    /// subtypes. This is the dispatch set that the Method Alias Graph encodes
    /// as ALIAS edges.
    pub fn dispatch_targets(
        &self,
        declared: MethodId,
        name: Symbol,
        param_count: usize,
    ) -> Vec<MethodId> {
        let mut targets = vec![declared];
        for sub in self.subtypes(declared.class) {
            if let Some(idx) = self.program.class(sub).find_method(name, param_count) {
                targets.push(MethodId {
                    class: sub,
                    index: idx,
                });
            }
        }
        targets
    }

    /// A map from (name, arity) to every method declaring that key, used by
    /// graph construction to enumerate alias pairs in O(methods).
    pub fn methods_by_key(&self) -> HashMap<(Symbol, usize), Vec<MethodId>> {
        let mut map: HashMap<(Symbol, usize), Vec<MethodId>> = HashMap::new();
        for id in self.program.method_ids() {
            let m = self.program.method(id);
            map.entry((m.name, m.params.len())).or_default().push(id);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::JType;

    fn diamond() -> Program {
        // I (interface) <- A <- B ; I <- C
        let mut pb = ProgramBuilder::new();
        pb.class("p.I").interface().finish();
        pb.class("p.A").implements(&["p.I"]).finish();
        pb.class("p.B").extends("p.A").finish();
        pb.class("p.C").implements(&["p.I"]).finish();
        pb.build()
    }

    #[test]
    fn supertype_closure() {
        let p = diamond();
        let h = Hierarchy::new(&p);
        let b = p.class_by_str("p.B").unwrap();
        let supers = h.supertypes(b);
        assert!(supers.contains(&p.class_by_str("p.A").unwrap()));
        assert!(supers.contains(&p.class_by_str("p.I").unwrap()));
        assert_eq!(supers.len(), 2);
    }

    #[test]
    fn subtype_closure() {
        let p = diamond();
        let h = Hierarchy::new(&p);
        let i = p.class_by_str("p.I").unwrap();
        let subs = h.subtypes(i);
        assert_eq!(subs.len(), 3);
    }

    #[test]
    fn is_subtype_reflexive_and_transitive() {
        let p = diamond();
        let h = Hierarchy::new(&p);
        let b = p.class_by_str("p.B").unwrap();
        let i = p.class_by_str("p.I").unwrap();
        let c = p.class_by_str("p.C").unwrap();
        assert!(h.is_subtype_of(b, b));
        assert!(h.is_subtype_of(b, i));
        assert!(!h.is_subtype_of(i, b));
        assert!(!h.is_subtype_of(c, b));
    }

    #[test]
    fn serializable_via_interface_and_inheritance() {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        pb.class("p.S").serializable().finish();
        pb.class("p.T").extends("p.S").finish();
        pb.class("p.U").finish();
        let p = pb.build();
        let h = Hierarchy::new(&p);
        assert!(h.is_serializable(p.class_by_str("p.S").unwrap()));
        assert!(h.is_serializable(p.class_by_str("p.T").unwrap()));
        assert!(!h.is_serializable(p.class_by_str("p.U").unwrap()));
    }

    #[test]
    fn serializable_without_loaded_marker_class() {
        // java.io.Serializable is referenced but not itself loaded.
        let mut pb = ProgramBuilder::new();
        pb.class("p.S").serializable().finish();
        let p = pb.build();
        let h = Hierarchy::new(&p);
        assert!(h.is_serializable(p.class_by_str("p.S").unwrap()));
    }

    #[test]
    fn method_resolution_walks_up() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("p.Base");
        cb.method("m", vec![JType::Int], JType::Void)
            .abstract_()
            .finish();
        cb.finish();
        pb.class("p.Derived").extends("p.Base").finish();
        let p = pb.build();
        let h = Hierarchy::new(&p);
        let derived = p.class_by_str("p.Derived").unwrap();
        let base = p.class_by_str("p.Base").unwrap();
        let name = p.interner().get("m").unwrap();
        let resolved = h.resolve_method(derived, name, 1).unwrap();
        assert_eq!(resolved.class, base);
        assert!(h.resolve_method(derived, name, 2).is_none());
    }

    #[test]
    fn dispatch_targets_include_overrides() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("p.Base");
        cb.method("m", vec![], JType::Void).abstract_().finish();
        cb.finish();
        let mut cb = pb.class("p.D1");
        cb.extends_in_place("p.Base");
        cb.method("m", vec![], JType::Void).abstract_().finish();
        cb.finish();
        let p = pb.build();
        let h = Hierarchy::new(&p);
        let base = p.class_by_str("p.Base").unwrap();
        let name = p.interner().get("m").unwrap();
        let declared = h.resolve_method(base, name, 0).unwrap();
        let targets = h.dispatch_targets(declared, name, 0);
        assert_eq!(targets.len(), 2);
    }
}
