//! Access-flag sets for classes, methods, and fields.
//!
//! These mirror the JVM access-flag bit masks (JVMS §4.1/§4.5/§4.6) so the
//! class-file front end can pass them through unchanged, while offering typed
//! accessors to the analysis layers.

use std::fmt;

macro_rules! flag_type {
    ($(#[$doc:meta])* $name:ident { $($(#[$fdoc:meta])* $flag:ident = $bit:expr => $is:ident / $set:ident;)+ }) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
        pub struct $name(u16);

        impl $name {
            $(
                $(#[$fdoc])*
                pub const $flag: u16 = $bit;
            )+

            /// Creates an empty flag set.
            pub const fn new() -> Self {
                Self(0)
            }

            /// Creates a flag set from raw JVM access-flag bits.
            pub const fn from_bits(bits: u16) -> Self {
                Self(bits)
            }

            /// Raw JVM access-flag bits.
            pub const fn bits(self) -> u16 {
                self.0
            }

            $(
                /// Tests the corresponding flag bit.
                pub const fn $is(self) -> bool {
                    self.0 & Self::$flag != 0
                }

                /// Returns a copy with the corresponding flag bit set.
                #[must_use]
                pub const fn $set(self) -> Self {
                    Self(self.0 | Self::$flag)
                }
            )+
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                write!(f, concat!(stringify!($name), "("))?;
                $(
                    if self.$is() {
                        if !first {
                            write!(f, "|")?;
                        }
                        first = false;
                        write!(f, stringify!($flag))?;
                    }
                )+
                if first {
                    write!(f, "0")?;
                }
                write!(f, ")")
            }
        }
    };
}

flag_type! {
    /// Class access flags (JVMS Table 4.1-B).
    ClassFlags {
        /// `ACC_PUBLIC`
        PUBLIC = 0x0001 => is_public / public;
        /// `ACC_FINAL`
        FINAL = 0x0010 => is_final / final_;
        /// `ACC_INTERFACE`
        INTERFACE = 0x0200 => is_interface / interface;
        /// `ACC_ABSTRACT`
        ABSTRACT = 0x0400 => is_abstract / abstract_;
        /// `ACC_ENUM`
        ENUM = 0x4000 => is_enum / enum_;
    }
}

flag_type! {
    /// Method access flags (JVMS Table 4.6-A).
    MethodFlags {
        /// `ACC_PUBLIC`
        PUBLIC = 0x0001 => is_public / public;
        /// `ACC_PRIVATE`
        PRIVATE = 0x0002 => is_private / private;
        /// `ACC_PROTECTED`
        PROTECTED = 0x0004 => is_protected / protected;
        /// `ACC_STATIC`
        STATIC = 0x0008 => is_static / static_;
        /// `ACC_FINAL`
        FINAL = 0x0010 => is_final / final_;
        /// `ACC_SYNCHRONIZED`
        SYNCHRONIZED = 0x0020 => is_synchronized / synchronized;
        /// `ACC_NATIVE`
        NATIVE = 0x0100 => is_native / native;
        /// `ACC_ABSTRACT`
        ABSTRACT = 0x0400 => is_abstract / abstract_;
    }
}

flag_type! {
    /// Field access flags (JVMS Table 4.5-A).
    FieldFlags {
        /// `ACC_PUBLIC`
        PUBLIC = 0x0001 => is_public / public;
        /// `ACC_PRIVATE`
        PRIVATE = 0x0002 => is_private / private;
        /// `ACC_PROTECTED`
        PROTECTED = 0x0004 => is_protected / protected;
        /// `ACC_STATIC`
        STATIC = 0x0008 => is_static / static_;
        /// `ACC_FINAL`
        FINAL = 0x0010 => is_final / final_;
        /// `ACC_TRANSIENT`
        TRANSIENT = 0x0080 => is_transient / transient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_compose() {
        let f = MethodFlags::new().public().static_();
        assert!(f.is_public());
        assert!(f.is_static());
        assert!(!f.is_abstract());
        assert_eq!(f.bits(), 0x0009);
    }

    #[test]
    fn raw_bits_round_trip() {
        let f = ClassFlags::from_bits(0x0601);
        assert!(f.is_public());
        assert!(f.is_interface());
        assert!(f.is_abstract());
        assert_eq!(f.bits(), 0x0601);
    }

    #[test]
    fn debug_lists_set_flags() {
        let f = FieldFlags::new().private().transient();
        let s = format!("{f:?}");
        assert!(s.contains("PRIVATE"));
        assert!(s.contains("TRANSIENT"));
    }
}
