//! # tabby-ir — a Jimple-like three-address IR for JVM programs
//!
//! This crate is the Soot substrate of the Tabby reproduction (DSN 2023,
//! *Tabby: Automated Gadget Chain Detection for Java Deserialization
//! Vulnerabilities*). It provides:
//!
//! - a whole-program model ([`Program`], [`Class`], [`Method`], [`Body`]);
//! - the fifteen Jimple statement kinds ([`Stmt`]) over simple operands,
//!   which is exactly the statement set the paper's controllability analysis
//!   enumerates (§III-C, Table IV);
//! - statement-level control-flow graphs ([`Cfg`]);
//! - class-hierarchy queries ([`Hierarchy`]) for alias-edge construction and
//!   virtual-dispatch resolution;
//! - a fluent [`builder`] DSL used by the synthetic workloads;
//! - a [`lift`] pass from real JVM bytecode (via `tabby-classfile`) to this
//!   IR, and a [`compile`] pass back to bytecode, so workloads can round-trip
//!   through genuine `.class` bytes;
//! - a Jimple-style [`printer`].
//!
//! # Examples
//!
//! Build the paper's Figure 1 example and print it:
//!
//! ```
//! use tabby_ir::{JType, ProgramBuilder, printer};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut cb = pb.class("example.EvilObjectA");
//! cb.serializable_in_place();
//! let object = cb.object_type("java.lang.Object");
//! let string = cb.object_type("java.lang.String");
//! cb.field("val1", object.clone());
//! let ois = cb.object_type("java.io.ObjectInputStream");
//! let mut mb = cb.method("readObject", vec![ois], JType::Void);
//! let this = mb.this();
//! let v = mb.fresh();
//! mb.get_field(v, this, "example.EvilObjectA", "val1", object.clone());
//! let to_string = mb.sig("java.lang.Object", "toString", &[], string);
//! mb.call_virtual(None, v, to_string, &[]);
//! mb.finish();
//! cb.finish();
//! let program = pb.build();
//! assert!(printer::print_program(&program).contains("readObject"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod cfg;
pub mod compile;
pub mod flags;
pub mod hierarchy;
pub mod lift;
pub mod model;
pub mod printer;
pub mod stmt;
pub mod symbol;
pub mod types;

pub use builder::{ClassBuilder, MethodBuilder, ProgramBuilder};
pub use cfg::Cfg;
pub use flags::{ClassFlags, FieldFlags, MethodFlags};
pub use hierarchy::Hierarchy;
pub use lift::{lift_class, lift_program, lift_program_tolerant, LiftDiagnostic, LiftOutcome};
pub use model::{Body, Class, ClassId, Field, Method, MethodId, Program};
pub use stmt::{
    BinOp, CmpOp, Condition, Constant, Expr, FieldRef, IdentityRef, InvokeExpr, InvokeKind, Label,
    Local, MethodRef, Operand, Place, Stmt, UnOp,
};
pub use symbol::{Interner, Symbol};
pub use types::{method_descriptor, parse_method_descriptor, DescriptorError, JType};
