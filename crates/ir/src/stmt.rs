//! Statements, expressions, and values of the three-address IR.
//!
//! The IR mirrors Soot's Jimple: every method body is a flat list of
//! statements over typed locals, with at most one side effect per statement.
//! The fifteen statement kinds (see [`Stmt`]) correspond to Jimple's fifteen
//! statement classes, which are exactly the statements the paper's
//! `doAssignStmtAnalysis` enumerates (§III-C, Table IV).

use crate::symbol::Symbol;
use crate::types::JType;

/// A method-local variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Local(pub u32);

impl Local {
    /// Raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A branch target inside a method body.
///
/// Labels are resolved to statement indices by [`crate::Body::target`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// Any integral constant (`boolean`/`byte`/`char`/`short`/`int`/`long`).
    Int(i64),
    /// A floating-point constant (`float`/`double`).
    Float(f64),
    /// A string literal.
    Str(Symbol),
    /// A class literal (`Foo.class`).
    Class(Symbol),
    /// The `null` reference.
    Null,
}

/// A simple value: a local or a constant.
///
/// Jimple guarantees that operands of compound expressions are simple, which
/// keeps every dataflow transfer function a single table lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Read of a local variable.
    Local(Local),
    /// A constant.
    Const(Constant),
}

impl Operand {
    /// The local read by this operand, if any.
    pub fn as_local(&self) -> Option<Local> {
        match self {
            Operand::Local(l) => Some(*l),
            Operand::Const(_) => None,
        }
    }
}

impl From<Local> for Operand {
    fn from(l: Local) -> Self {
        Operand::Local(l)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Self {
        Operand::Const(c)
    }
}

/// A reference to a field, by owner class, name, and type.
///
/// Field references are symbolic: they name the *declared* owner and are
/// resolved against the class hierarchy by the analysis layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// Declaring class (dotted binary name).
    pub class: Symbol,
    /// Field name.
    pub name: Symbol,
    /// Declared field type.
    pub ty: JType,
}

/// A reference to a method, by owner class, name, and signature.
///
/// Like [`FieldRef`], method references are symbolic; virtual-dispatch
/// resolution happens during code-property-graph construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// Declared owner class (dotted binary name).
    pub class: Symbol,
    /// Method name.
    pub name: Symbol,
    /// Parameter types (excluding the receiver).
    pub params: Vec<JType>,
    /// Return type.
    pub ret: JType,
}

/// JVM invocation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// `invokevirtual` — virtual dispatch on the receiver's runtime class.
    Virtual,
    /// `invokeinterface` — like virtual, through an interface type.
    Interface,
    /// `invokespecial` — constructors, `super.…`, private methods.
    Special,
    /// `invokestatic` — no receiver.
    Static,
    /// `invokedynamic` — call-site bootstrapped at runtime (lambdas, string
    /// concat). Modeled opaquely; the paper lists reflection/dynamic features
    /// as a limitation (§V-B).
    Dynamic,
}

impl InvokeKind {
    /// Whether calls of this kind dispatch on the runtime type of the
    /// receiver (and therefore interact with ALIAS edges).
    pub fn is_dispatched(self) -> bool {
        matches!(self, InvokeKind::Virtual | InvokeKind::Interface)
    }

    /// Whether calls of this kind take a receiver.
    pub fn has_receiver(self) -> bool {
        !matches!(self, InvokeKind::Static | InvokeKind::Dynamic)
    }
}

/// A method invocation expression.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeExpr {
    /// How the call dispatches.
    pub kind: InvokeKind,
    /// Receiver, present unless [`InvokeKind::has_receiver`] is false.
    pub base: Option<Operand>,
    /// The symbolic callee.
    pub callee: MethodRef,
    /// Argument values, one per parameter.
    pub args: Vec<Operand>,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// A local variable.
    Local(Local),
    /// An instance field `base.field`.
    InstanceField {
        /// Object whose field is accessed.
        base: Local,
        /// The field.
        field: FieldRef,
    },
    /// A static field `Class.field`.
    StaticField(FieldRef),
    /// An array element `base[index]`.
    ArrayElem {
        /// The array.
        base: Local,
        /// Element index.
        index: Operand,
    },
}

/// Binary operators (arithmetic, comparison producing int, bitwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Ushr,
    And,
    Or,
    Xor,
    /// Three-way compare (`lcmp` / `fcmpl` / …) producing -1/0/1.
    Cmp,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
}

/// Conditional-branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A simple value copy: `a = b` / `a = const`.
    Use(Operand),
    /// A load from a field or array element: `a = b.f`, `a = b[i]`,
    /// `a = Class.field`.
    Load(Place),
    /// Object allocation: `a = new C` (constructor invoked separately, as in
    /// Jimple).
    New(Symbol),
    /// Array allocation: `a = new T[len]`.
    NewArray {
        /// Element type.
        elem: JType,
        /// Array length.
        len: Operand,
    },
    /// Checked cast: `a = (T) b`.
    Cast {
        /// Target type.
        ty: JType,
        /// Value being cast.
        value: Operand,
    },
    /// Type test: `a = b instanceof T`.
    InstanceOf {
        /// Tested type.
        ty: JType,
        /// Value being tested.
        value: Operand,
    },
    /// Arithmetic / bitwise binary expression.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary expression.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        value: Operand,
    },
    /// Array length: `a = b.length`.
    ArrayLength(Operand),
    /// Call with a result: `a = b.f(c)`.
    Invoke(InvokeExpr),
}

/// The source of an identity statement (Jimple `IdentityStmt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdentityRef {
    /// `this` of an instance method.
    This,
    /// The i-th declared parameter (0-based, excluding the receiver).
    Param(u16),
    /// The exception object at the start of a handler.
    CaughtException,
}

/// A branch condition `lhs <op> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
}

/// A statement of the IR.
///
/// The fifteen variants map one-to-one to Jimple's statement classes
/// (`JAssignStmt`, `JIdentityStmt`, `JInvokeStmt`, `JReturnStmt`,
/// `JReturnVoidStmt`, `JIfStmt`, `JGotoStmt`, `JTableSwitchStmt`,
/// `JLookupSwitchStmt`, `JThrowStmt`, `JEnterMonitorStmt`,
/// `JExitMonitorStmt`, `JNopStmt`, `JBreakpointStmt`, `JRetStmt`) — "all 15
/// statements, which contain semantic information" per §III-C. Table and
/// lookup switches share [`Stmt::Switch`]; subroutine return is [`Stmt::Ret`].
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `place = expr`
    Assign {
        /// Destination.
        place: Place,
        /// Source expression.
        rhs: Expr,
    },
    /// `local := @this | @parameterN | @caughtexception`
    Identity {
        /// Bound local.
        local: Local,
        /// What it is bound to.
        source: IdentityRef,
    },
    /// A call whose result (if any) is discarded.
    Invoke(InvokeExpr),
    /// `return value;` / `return;`
    Return(Option<Operand>),
    /// `if (cond) goto target;`
    If {
        /// The branch condition.
        cond: Condition,
        /// Taken branch target.
        target: Label,
    },
    /// `goto target;`
    Goto(Label),
    /// `switch (key) { case v: goto …; default: goto …; }` — covers both
    /// `tableswitch` and `lookupswitch`.
    Switch {
        /// Scrutinee.
        key: Operand,
        /// `(match value, target)` pairs.
        cases: Vec<(i64, Label)>,
        /// Default target.
        default: Label,
    },
    /// `throw value;`
    Throw(Operand),
    /// `monitorenter value;`
    EnterMonitor(Operand),
    /// `monitorexit value;`
    ExitMonitor(Operand),
    /// No operation.
    Nop,
    /// Debugger breakpoint (never emitted by javac; kept for Jimple parity).
    Breakpoint,
    /// `ret` from a JSR subroutine (obsolete since class-file v51; kept for
    /// Jimple parity, treated as an opaque terminator).
    Ret(Local),
}

impl Stmt {
    /// The invocation contained in this statement, if any — either a bare
    /// [`Stmt::Invoke`] or an [`Expr::Invoke`] right-hand side.
    pub fn invoke(&self) -> Option<&InvokeExpr> {
        match self {
            Stmt::Invoke(inv) => Some(inv),
            Stmt::Assign {
                rhs: Expr::Invoke(inv),
                ..
            } => Some(inv),
            _ => None,
        }
    }

    /// Whether this statement unconditionally ends the current control-flow
    /// path (no fall-through successor).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Stmt::Return(_) | Stmt::Goto(_) | Stmt::Switch { .. } | Stmt::Throw(_) | Stmt::Ret(_)
        )
    }

    /// Branch targets referenced by this statement.
    pub fn targets(&self) -> Vec<Label> {
        match self {
            Stmt::If { target, .. } => vec![*target],
            Stmt::Goto(t) => vec![*t],
            Stmt::Switch { cases, default, .. } => {
                let mut ts: Vec<Label> = cases.iter().map(|(_, l)| *l).collect();
                ts.push(*default);
                ts
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_invoke() -> InvokeExpr {
        InvokeExpr {
            kind: InvokeKind::Static,
            base: None,
            callee: MethodRef {
                class: Symbol::default_for_test(),
                name: Symbol::default_for_test(),
                params: vec![],
                ret: JType::Void,
            },
            args: vec![],
        }
    }

    impl Symbol {
        fn default_for_test() -> Symbol {
            let mut i = crate::Interner::new();
            i.intern("t")
        }
    }

    #[test]
    fn invoke_extraction() {
        let s = Stmt::Invoke(dummy_invoke());
        assert!(s.invoke().is_some());
        let s = Stmt::Assign {
            place: Place::Local(Local(0)),
            rhs: Expr::Invoke(dummy_invoke()),
        };
        assert!(s.invoke().is_some());
        let s = Stmt::Nop;
        assert!(s.invoke().is_none());
    }

    #[test]
    fn terminators() {
        assert!(Stmt::Return(None).is_terminator());
        assert!(Stmt::Goto(Label(0)).is_terminator());
        assert!(Stmt::Throw(Operand::Const(Constant::Null)).is_terminator());
        assert!(!Stmt::Nop.is_terminator());
        assert!(!Stmt::If {
            cond: Condition {
                op: CmpOp::Eq,
                lhs: Operand::Const(Constant::Int(0)),
                rhs: Operand::Const(Constant::Int(0)),
            },
            target: Label(0),
        }
        .is_terminator());
    }

    #[test]
    fn switch_targets_include_default() {
        let s = Stmt::Switch {
            key: Operand::Local(Local(1)),
            cases: vec![(1, Label(10)), (2, Label(20))],
            default: Label(30),
        };
        assert_eq!(s.targets(), vec![Label(10), Label(20), Label(30)]);
    }

    #[test]
    fn invoke_kind_properties() {
        assert!(InvokeKind::Virtual.is_dispatched());
        assert!(InvokeKind::Interface.is_dispatched());
        assert!(!InvokeKind::Special.is_dispatched());
        assert!(!InvokeKind::Static.has_receiver());
        assert!(InvokeKind::Special.has_receiver());
    }
}
