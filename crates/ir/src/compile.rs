//! Compiling IR classes to genuine `.class` bytes.
//!
//! Together with [`crate::lift`], this completes the class-file round trip:
//! workloads authored in IR can be emitted as real class files, re-parsed,
//! and lifted back — exercising the same front-end path the paper drives
//! through Soot. The emitted code uses a straightforward
//! one-IR-statement-at-a-time strategy (operands loaded from locals,
//! results stored back), so the stack is empty at every branch target.
//!
//! Known simplifications (documented, asserted by tests): numeric locals are
//! classified int-vs-reference by their defining statements; wide numeric
//! arithmetic is compiled with `int` opcodes (the lifter treats widths
//! uniformly, and the analysis is width-agnostic).

use crate::model::{Body, Class, Method, Program};
use crate::stmt::{
    BinOp, CmpOp, Constant, Expr, IdentityRef, InvokeExpr, InvokeKind, Label, Local, Operand,
    Place, Stmt, UnOp,
};
use crate::types::{method_descriptor, JType};
use std::collections::{HashMap, HashSet};
use tabby_classfile::{ClassAsm, CodeAsm, ConstantPool};

/// Compiles every class of `program` to `.class` bytes.
pub fn compile_program(program: &Program) -> Vec<(String, Vec<u8>)> {
    program
        .classes()
        .iter()
        .map(|c| (program.name(c.name).to_owned(), compile_class(program, c)))
        .collect()
}

/// Compiles one class to `.class` bytes.
pub fn compile_class(program: &Program, class: &Class) -> Vec<u8> {
    let name = program.name(class.name);
    let super_name = class
        .superclass
        .map(|s| program.name(s).to_owned())
        .unwrap_or_else(|| "java.lang.Object".to_owned());
    let mut asm = ClassAsm::new(name, &super_name, class.flags.bits());
    for &itf in &class.interfaces {
        asm.add_interface(program.name(itf));
    }
    for field in &class.fields {
        let desc = field.ty.to_descriptor(program.interner());
        asm.add_field(field.flags.bits(), program.name(field.name), &desc);
    }
    for method in &class.methods {
        let desc = method_descriptor(program.interner(), &method.params, &method.ret);
        let code = method
            .body
            .as_ref()
            .map(|body| compile_body(program, method, body, &mut asm.cp));
        asm.add_method(method.flags.bits(), program.name(method.name), &desc, code);
    }
    tabby_classfile::write_class(&asm.finish())
}

/// Kind classification for a local: reference or int.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Ref,
    Int,
}

fn int_type(ty: &JType) -> bool {
    matches!(
        ty,
        JType::Boolean | JType::Byte | JType::Char | JType::Short | JType::Int
    )
}

fn classify_locals(method: &Method, body: &Body) -> Vec<Slot> {
    let mut kinds = vec![Slot::Ref; body.locals as usize];
    for stmt in &body.stmts {
        match stmt {
            Stmt::Identity {
                local,
                source: IdentityRef::Param(i),
            } => {
                if let Some(ty) = method.params.get(*i as usize) {
                    if int_type(ty) {
                        kinds[local.index()] = Slot::Int;
                    }
                }
            }
            Stmt::Assign {
                place: Place::Local(l),
                rhs,
            } => {
                let int = match rhs {
                    Expr::Use(Operand::Const(Constant::Int(_)))
                    | Expr::Binary { .. }
                    | Expr::Unary { .. }
                    | Expr::ArrayLength(_)
                    | Expr::InstanceOf { .. } => true,
                    Expr::Cast { ty, .. } => int_type(ty),
                    Expr::Load(Place::StaticField(f)) => int_type(&f.ty),
                    Expr::Load(Place::InstanceField { field, .. }) => int_type(&field.ty),
                    Expr::Invoke(inv) => int_type(&inv.callee.ret),
                    _ => false,
                };
                if int {
                    kinds[l.index()] = Slot::Int;
                }
            }
            _ => {}
        }
    }
    kinds
}

struct BodyCompiler<'a> {
    program: &'a Program,
    asm: CodeAsm,
    labels: HashMap<Label, tabby_classfile::AsmLabel>,
    kinds: Vec<Slot>,
    /// IR locals map to JVM slots after `this` and the parameters.
    slot_base: u16,
    is_static: bool,
}

impl<'a> BodyCompiler<'a> {
    fn slot(&self, l: Local) -> u16 {
        self.slot_base + l.0 as u16
    }

    fn internal(&self, sym: crate::symbol::Symbol) -> String {
        self.program.name(sym).replace('.', "/")
    }

    fn load_local(&mut self, l: Local) {
        let slot = self.slot(l);
        match self.kinds[l.index()] {
            Slot::Ref => self.asm.aload(slot),
            Slot::Int => self.asm.iload(slot),
        }
    }

    fn store_local(&mut self, l: Local) {
        let slot = self.slot(l);
        match self.kinds[l.index()] {
            Slot::Ref => self.asm.astore(slot),
            Slot::Int => self.asm.istore(slot),
        }
    }

    fn push_operand(&mut self, op: &Operand, cp: &mut ConstantPool) {
        match op {
            Operand::Local(l) => self.load_local(*l),
            Operand::Const(c) => match c {
                Constant::Int(v) => {
                    if let Ok(v32) = i32::try_from(*v) {
                        self.asm.iconst(v32, cp);
                    } else {
                        self.asm.lconst(*v, cp);
                    }
                }
                Constant::Float(v) => {
                    // The analysis never distinguishes float values; the
                    // integer pool keeps the codec simple.
                    self.asm.iconst(*v as i32, cp);
                }
                Constant::Str(s) => {
                    let s = self.program.name(*s).to_owned();
                    self.asm.ldc_string(&s, cp);
                }
                Constant::Class(s) => {
                    let internal = self.internal(*s);
                    self.asm.ldc_class(&internal, cp);
                }
                Constant::Null => self.asm.aconst_null(),
            },
        }
    }

    fn asm_label(&mut self, l: Label) -> tabby_classfile::AsmLabel {
        if let Some(&al) = self.labels.get(&l) {
            return al;
        }
        let al = self.asm.fresh_label();
        self.labels.insert(l, al);
        al
    }

    fn push_invoke(&mut self, inv: &InvokeExpr, cp: &mut ConstantPool) {
        if let Some(base) = &inv.base {
            self.push_operand(base, cp);
        }
        for arg in &inv.args {
            self.push_operand(arg, cp);
        }
        let class = self.internal(inv.callee.class);
        let name = self.program.name(inv.callee.name).to_owned();
        let desc = method_descriptor(self.program.interner(), &inv.callee.params, &inv.callee.ret);
        let ret_slots = i32::from(inv.callee.ret != JType::Void);
        let popped = inv.args.len() as i32 + i32::from(inv.base.is_some());
        let delta = ret_slots - popped;
        match inv.kind {
            InvokeKind::Virtual => self.asm.invokevirtual(&class, &name, &desc, delta, cp),
            InvokeKind::Special => self.asm.invokespecial(&class, &name, &desc, delta, cp),
            InvokeKind::Static => self.asm.invokestatic(&class, &name, &desc, delta, cp),
            InvokeKind::Interface => {
                self.asm
                    .invokeinterface(&class, &name, &desc, inv.args.len() as u8, delta, cp)
            }
            // invokedynamic needs bootstrap-method plumbing; compile as a
            // static call to a marker owner the lifter maps back to Dynamic.
            InvokeKind::Dynamic => {
                let marker = format!("tabby/runtime/Indy${}", class.replace('/', "$"));
                self.asm.invokestatic(&marker, &name, &desc, delta, cp);
            }
        }
    }

    fn push_expr(&mut self, expr: &Expr, cp: &mut ConstantPool) {
        match expr {
            Expr::Use(op) => self.push_operand(op, cp),
            Expr::Load(place) => match place {
                Place::Local(l) => self.load_local(*l),
                Place::InstanceField { base, field } => {
                    self.asm.aload(self.slot(*base));
                    let class = self.internal(field.class);
                    let name = self.program.name(field.name).to_owned();
                    let desc = field.ty.to_descriptor(self.program.interner());
                    self.asm.getfield(&class, &name, &desc, cp);
                }
                Place::StaticField(field) => {
                    let class = self.internal(field.class);
                    let name = self.program.name(field.name).to_owned();
                    let desc = field.ty.to_descriptor(self.program.interner());
                    self.asm.getstatic(&class, &name, &desc, cp);
                }
                Place::ArrayElem { base, index } => {
                    self.asm.aload(self.slot(*base));
                    self.push_operand(index, cp);
                    self.asm.aaload();
                }
            },
            Expr::New(class) => {
                let internal = self.internal(*class);
                self.asm.new_object(&internal, cp);
            }
            Expr::NewArray { elem, len } => {
                self.push_operand(len, cp);
                match elem {
                    JType::Object(s) => {
                        let internal = self.internal(*s);
                        self.asm.anewarray(&internal, cp);
                    }
                    JType::Array(_) => self.asm.anewarray("[Ljava/lang/Object;", cp),
                    // Primitive newarray tags (JVMS Table 6.5.newarray-A).
                    JType::Boolean => self.asm.newarray(4),
                    JType::Char => self.asm.newarray(5),
                    JType::Float => self.asm.newarray(6),
                    JType::Double => self.asm.newarray(7),
                    JType::Byte => self.asm.newarray(8),
                    JType::Short => self.asm.newarray(9),
                    JType::Int | JType::Void => self.asm.newarray(10),
                    JType::Long => self.asm.newarray(11),
                }
            }
            Expr::Cast { ty, value } => {
                self.push_operand(value, cp);
                match ty {
                    JType::Object(s) => {
                        let internal = self.internal(*s);
                        self.asm.checkcast(&internal, cp);
                    }
                    JType::Array(_) => self.asm.checkcast("[Ljava/lang/Object;", cp),
                    // Primitive narrowing is a no-op at this fidelity.
                    _ => {}
                }
            }
            Expr::InstanceOf { ty, value } => {
                self.push_operand(value, cp);
                let internal = match ty {
                    JType::Object(s) => self.internal(*s),
                    _ => "java/lang/Object".to_owned(),
                };
                self.asm.instanceof(&internal, cp);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.push_operand(lhs, cp);
                self.push_operand(rhs, cp);
                let opcode = match op {
                    BinOp::Add => 0x60,
                    BinOp::Sub | BinOp::Cmp => 0x64,
                    BinOp::Mul => 0x68,
                    BinOp::Div => 0x6c,
                    BinOp::Rem => 0x70,
                    BinOp::Shl => 0x78,
                    BinOp::Shr => 0x7a,
                    BinOp::Ushr => 0x7c,
                    BinOp::And => 0x7e,
                    BinOp::Or => 0x80,
                    BinOp::Xor => 0x82,
                };
                self.asm.iarith(opcode);
            }
            Expr::Unary {
                op: UnOp::Neg,
                value,
            } => {
                self.push_operand(value, cp);
                self.asm.ineg();
            }
            Expr::ArrayLength(v) => {
                self.push_operand(v, cp);
                self.asm.arraylength();
            }
            Expr::Invoke(inv) => self.push_invoke(inv, cp),
        }
    }

    fn compile_stmt(&mut self, stmt: &Stmt, ret: &JType, cp: &mut ConstantPool) {
        match stmt {
            Stmt::Assign { place, rhs } => match place {
                Place::Local(l) => {
                    self.push_expr(rhs, cp);
                    self.store_local(*l);
                }
                Place::InstanceField { base, field } => {
                    self.asm.aload(self.slot(*base));
                    self.push_expr(rhs, cp);
                    let class = self.internal(field.class);
                    let name = self.program.name(field.name).to_owned();
                    let desc = field.ty.to_descriptor(self.program.interner());
                    self.asm.putfield(&class, &name, &desc, cp);
                }
                Place::StaticField(field) => {
                    self.push_expr(rhs, cp);
                    let class = self.internal(field.class);
                    let name = self.program.name(field.name).to_owned();
                    let desc = field.ty.to_descriptor(self.program.interner());
                    self.asm.putstatic(&class, &name, &desc, cp);
                }
                Place::ArrayElem { base, index } => {
                    self.asm.aload(self.slot(*base));
                    self.push_operand(index, cp);
                    self.push_expr(rhs, cp);
                    self.asm.aastore();
                }
            },
            Stmt::Identity { local, source } => {
                match source {
                    IdentityRef::This => self.asm.aload(0),
                    IdentityRef::Param(i) => {
                        let slot = u16::from(*i) + u16::from(!self.is_static);
                        match self.kinds[local.index()] {
                            Slot::Ref => self.asm.aload(slot),
                            Slot::Int => self.asm.iload(slot),
                        }
                    }
                    IdentityRef::CaughtException => {
                        // No handler context at this fidelity: bind null.
                        self.asm.aconst_null();
                    }
                }
                self.store_local(*local);
            }
            Stmt::Invoke(inv) => {
                self.push_invoke(inv, cp);
                if inv.callee.ret != JType::Void {
                    self.asm.pop();
                }
            }
            Stmt::Return(None) => self.asm.return_void(),
            Stmt::Return(Some(v)) => {
                self.push_operand(v, cp);
                if int_type(ret) || matches!(ret, JType::Long | JType::Float | JType::Double) {
                    self.asm.ireturn();
                } else {
                    self.asm.areturn();
                }
            }
            Stmt::If { cond, target } => {
                let label = self.asm_label(*target);
                let ref_compare = matches!(&cond.lhs, Operand::Const(Constant::Null))
                    || matches!(&cond.rhs, Operand::Const(Constant::Null))
                    || cond
                        .lhs
                        .as_local()
                        .map(|l| self.kinds[l.index()] == Slot::Ref)
                        .unwrap_or(false);
                self.push_operand(&cond.lhs, cp);
                self.push_operand(&cond.rhs, cp);
                if ref_compare {
                    self.asm.if_acmp(cond.op == CmpOp::Eq, label);
                } else {
                    let opcode = match cond.op {
                        CmpOp::Eq => 0x9f,
                        CmpOp::Ne => 0xa0,
                        CmpOp::Lt => 0xa1,
                        CmpOp::Ge => 0xa2,
                        CmpOp::Gt => 0xa3,
                        CmpOp::Le => 0xa4,
                    };
                    self.asm.if_icmp(opcode, label);
                }
            }
            Stmt::Goto(target) => {
                let label = self.asm_label(*target);
                self.asm.goto(label);
            }
            Stmt::Switch {
                key,
                cases,
                default,
            } => {
                self.push_operand(key, cp);
                let pairs: Vec<(i32, tabby_classfile::AsmLabel)> = cases
                    .iter()
                    .map(|(k, l)| (*k as i32, self.asm_label(*l)))
                    .collect();
                let d = self.asm_label(*default);
                self.asm.lookupswitch(&pairs, d);
            }
            Stmt::Throw(v) => {
                self.push_operand(v, cp);
                self.asm.athrow();
            }
            Stmt::EnterMonitor(v) => {
                self.push_operand(v, cp);
                self.asm.monitorenter();
            }
            Stmt::ExitMonitor(v) => {
                self.push_operand(v, cp);
                self.asm.monitorexit();
            }
            Stmt::Nop | Stmt::Breakpoint | Stmt::Ret(_) => self.asm.nop(),
        }
    }
}

fn compile_body(
    program: &Program,
    method: &Method,
    body: &Body,
    cp: &mut ConstantPool,
) -> tabby_classfile::CodeAttribute {
    let is_static = method.flags.is_static();
    let param_count = method.params.len() as u16;
    let slot_base = param_count + u16::from(!is_static);
    let mut compiler = BodyCompiler {
        program,
        asm: CodeAsm::new(),
        labels: HashMap::new(),
        kinds: classify_locals(method, body),
        slot_base,
        is_static,
    };
    let mut targets_at: HashMap<usize, Vec<Label>> = HashMap::new();
    for (label, idx) in &body.labels {
        targets_at.entry(*idx).or_default().push(*label);
    }
    // Only place labels that are actually referenced.
    let referenced: HashSet<Label> = body.stmts.iter().flat_map(|s| s.targets()).collect();
    for (i, stmt) in body.stmts.iter().enumerate() {
        if let Some(labels) = targets_at.get(&i) {
            for l in labels {
                if referenced.contains(l) {
                    let al = compiler.asm_label(*l);
                    compiler.asm.place(al);
                }
            }
        }
        compiler.compile_stmt(stmt, &method.ret, cp);
    }
    let max_locals = slot_base + body.locals as u16;
    compiler
        .asm
        .finish(max_locals)
        .unwrap_or_else(|e| panic!("all referenced labels are placed by construction: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use tabby_classfile::opcode::{decode, Insn};
    use tabby_classfile::parse_class;

    fn fig1_like() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("demo.Evil").serializable();
        let string = cb.object_type("java.lang.String");
        let ois = cb.object_type("java.io.ObjectInputStream");
        let runtime = cb.object_type("java.lang.Runtime");
        let process = cb.object_type("java.lang.Process");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![ois], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "demo.Evil", "cmd", string.clone());
        let rt = mb.fresh();
        let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
        mb.call_static(Some(rt), get_rt, &[]);
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], process);
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn compiles_to_parseable_class_bytes() {
        let p = fig1_like();
        let out = compile_program(&p);
        assert_eq!(out.len(), 1);
        let class = parse_class(&out[0].1).unwrap();
        assert_eq!(class.name().unwrap(), "demo.Evil");
        assert_eq!(
            class.interface_names().unwrap(),
            vec!["java.io.Serializable"]
        );
        let ro = &class.methods[0];
        assert_eq!(
            class.constant_pool.utf8(ro.name_index).unwrap(),
            "readObject"
        );
        let code = class.code_of(ro).unwrap().unwrap();
        let insns = decode(&code.code).unwrap();
        assert!(insns.iter().any(|(_, i)| matches!(i, Insn::GetField(_))));
        assert!(insns
            .iter()
            .any(|(_, i)| matches!(i, Insn::InvokeVirtual(_))));
        assert!(matches!(insns.last().unwrap().1, Insn::Return(None)));
    }

    #[test]
    fn compiles_branches_and_switches() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("demo.Branchy");
        let mut mb = cb.method("m", vec![JType::Int], JType::Int).static_();
        let p0 = mb.param(0);
        let alt = mb.fresh_label();
        let end = mb.fresh_label();
        let d = mb.fresh_label();
        mb.if_(CmpOp::Gt, p0, mb.c_int(10), alt);
        mb.switch(p0, vec![(1, end)], d);
        mb.place(d);
        mb.nop();
        mb.place(alt);
        mb.nop();
        mb.place(end);
        let r = mb.fresh();
        mb.copy(r, mb.c_int(7));
        mb.ret(r);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let bytes = compile_class(&p, &p.classes()[0]);
        let class = parse_class(&bytes).unwrap();
        let code = class.code_of(&class.methods[0]).unwrap().unwrap();
        let insns = decode(&code.code).unwrap();
        assert!(insns.iter().any(|(_, i)| matches!(i, Insn::IfICmp(..))));
        assert!(insns
            .iter()
            .any(|(_, i)| matches!(i, Insn::LookupSwitch { .. })));
        assert!(matches!(
            insns.last().unwrap().1,
            Insn::Return(Some(tabby_classfile::opcode::Kind::Int))
        ));
    }
}
