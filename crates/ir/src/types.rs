//! Java type representation and JVM descriptor syntax.

use crate::symbol::{Interner, Symbol};
use std::fmt;

/// A Java type, as it appears in field and method signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JType {
    /// `boolean`
    Boolean,
    /// `byte`
    Byte,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `void` (only valid as a return type)
    Void,
    /// A class or interface type, referenced by its dotted binary name
    /// (e.g. `java.lang.Object`).
    Object(Symbol),
    /// An array of the element type.
    Array(Box<JType>),
}

impl JType {
    /// Convenience constructor for an object type.
    pub fn object(interner: &mut Interner, name: &str) -> JType {
        JType::Object(interner.intern(name))
    }

    /// Convenience constructor for an array type.
    pub fn array(elem: JType) -> JType {
        JType::Array(Box::new(elem))
    }

    /// Whether this is a reference type (object or array).
    pub fn is_reference(&self) -> bool {
        matches!(self, JType::Object(_) | JType::Array(_))
    }

    /// Whether this type occupies two JVM stack slots (`long` / `double`).
    pub fn is_wide(&self) -> bool {
        matches!(self, JType::Long | JType::Double)
    }

    /// The class name if this is an object type.
    pub fn class_name(&self) -> Option<Symbol> {
        match self {
            JType::Object(s) => Some(*s),
            _ => None,
        }
    }

    /// Parses a single JVM type descriptor such as `I`, `[J`, or
    /// `Ljava/lang/String;`.
    ///
    /// Returns the parsed type and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError`] on malformed input.
    pub fn parse_descriptor(
        interner: &mut Interner,
        desc: &str,
    ) -> Result<(JType, usize), DescriptorError> {
        let bytes = desc.as_bytes();
        let Some(&first) = bytes.first() else {
            return Err(DescriptorError::empty());
        };
        let simple = |t: JType| Ok((t, 1));
        match first {
            b'Z' => simple(JType::Boolean),
            b'B' => simple(JType::Byte),
            b'C' => simple(JType::Char),
            b'S' => simple(JType::Short),
            b'I' => simple(JType::Int),
            b'J' => simple(JType::Long),
            b'F' => simple(JType::Float),
            b'D' => simple(JType::Double),
            b'V' => simple(JType::Void),
            b'L' => {
                let end = desc
                    .find(';')
                    .ok_or_else(|| DescriptorError::new(desc, "unterminated class descriptor"))?;
                let internal = &desc[1..end];
                let dotted = internal.replace('/', ".");
                Ok((JType::Object(interner.intern(&dotted)), end + 1))
            }
            b'[' => {
                let (elem, used) = JType::parse_descriptor(interner, &desc[1..])?;
                if elem == JType::Void {
                    return Err(DescriptorError::new(desc, "array of void"));
                }
                Ok((JType::Array(Box::new(elem)), used + 1))
            }
            _ => Err(DescriptorError::new(desc, "unknown type tag")),
        }
    }

    /// Renders this type as a JVM descriptor (`Ljava/lang/String;` style).
    pub fn to_descriptor(&self, interner: &Interner) -> String {
        let mut out = String::new();
        self.write_descriptor(interner, &mut out);
        out
    }

    fn write_descriptor(&self, interner: &Interner, out: &mut String) {
        match self {
            JType::Boolean => out.push('Z'),
            JType::Byte => out.push('B'),
            JType::Char => out.push('C'),
            JType::Short => out.push('S'),
            JType::Int => out.push('I'),
            JType::Long => out.push('J'),
            JType::Float => out.push('F'),
            JType::Double => out.push('D'),
            JType::Void => out.push('V'),
            JType::Object(sym) => {
                out.push('L');
                out.push_str(&interner.resolve(*sym).replace('.', "/"));
                out.push(';');
            }
            JType::Array(elem) => {
                out.push('[');
                elem.write_descriptor(interner, out);
            }
        }
    }

    /// Renders this type in Java source syntax (`java.lang.String[]`).
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        DisplayType { ty: self, interner }
    }
}

struct DisplayType<'a> {
    ty: &'a JType,
    interner: &'a Interner,
}

impl fmt::Display for DisplayType<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            JType::Boolean => f.write_str("boolean"),
            JType::Byte => f.write_str("byte"),
            JType::Char => f.write_str("char"),
            JType::Short => f.write_str("short"),
            JType::Int => f.write_str("int"),
            JType::Long => f.write_str("long"),
            JType::Float => f.write_str("float"),
            JType::Double => f.write_str("double"),
            JType::Void => f.write_str("void"),
            JType::Object(s) => f.write_str(self.interner.resolve(*s)),
            JType::Array(elem) => write!(
                f,
                "{}[]",
                DisplayType {
                    ty: elem,
                    interner: self.interner
                }
            ),
        }
    }
}

/// Parses a full JVM method descriptor such as `(ILjava/lang/String;)V`.
///
/// # Errors
///
/// Returns [`DescriptorError`] on malformed input.
pub fn parse_method_descriptor(
    interner: &mut Interner,
    desc: &str,
) -> Result<(Vec<JType>, JType), DescriptorError> {
    if !desc.starts_with('(') {
        return Err(DescriptorError::new(desc, "missing opening parenthesis"));
    }
    let close = desc
        .find(')')
        .ok_or_else(|| DescriptorError::new(desc, "missing closing parenthesis"))?;
    let mut params = Vec::new();
    let mut rest = &desc[1..close];
    while !rest.is_empty() {
        let (ty, used) = JType::parse_descriptor(interner, rest)?;
        if ty == JType::Void {
            return Err(DescriptorError::new(desc, "void parameter"));
        }
        params.push(ty);
        rest = &rest[used..];
    }
    let (ret, used) = JType::parse_descriptor(interner, &desc[close + 1..])?;
    if close + 1 + used != desc.len() {
        return Err(DescriptorError::new(desc, "trailing characters"));
    }
    Ok((params, ret))
}

/// Renders a full JVM method descriptor.
pub fn method_descriptor(interner: &Interner, params: &[JType], ret: &JType) -> String {
    let mut out = String::from("(");
    for p in params {
        p.write_descriptor(interner, &mut out);
    }
    out.push(')');
    ret.write_descriptor(interner, &mut out);
    out
}

/// Error produced when parsing a malformed type or method descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorError {
    descriptor: String,
    reason: &'static str,
}

impl DescriptorError {
    fn new(descriptor: &str, reason: &'static str) -> Self {
        Self {
            descriptor: descriptor.to_owned(),
            reason,
        }
    }

    fn empty() -> Self {
        Self::new("", "empty descriptor")
    }
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid descriptor {:?}: {}",
            self.descriptor, self.reason
        )
    }
}

impl std::error::Error for DescriptorError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(desc: &str) {
        let mut i = Interner::new();
        let (ty, used) = JType::parse_descriptor(&mut i, desc).unwrap();
        assert_eq!(used, desc.len());
        assert_eq!(ty.to_descriptor(&i), desc);
    }

    #[test]
    fn primitive_descriptors_round_trip() {
        for d in ["Z", "B", "C", "S", "I", "J", "F", "D", "V"] {
            roundtrip(d);
        }
    }

    #[test]
    fn object_and_array_descriptors_round_trip() {
        roundtrip("Ljava/lang/String;");
        roundtrip("[I");
        roundtrip("[[Ljava/util/Map;");
    }

    #[test]
    fn object_names_are_dotted_internally() {
        let mut i = Interner::new();
        let (ty, _) = JType::parse_descriptor(&mut i, "Ljava/lang/String;").unwrap();
        let sym = ty.class_name().unwrap();
        assert_eq!(i.resolve(sym), "java.lang.String");
    }

    #[test]
    fn method_descriptor_round_trips() {
        let mut i = Interner::new();
        let desc = "(ILjava/lang/String;[J)Ljava/lang/Object;";
        let (params, ret) = parse_method_descriptor(&mut i, desc).unwrap();
        assert_eq!(params.len(), 3);
        assert_eq!(method_descriptor(&i, &params, &ret), desc);
    }

    #[test]
    fn malformed_descriptors_error() {
        let mut i = Interner::new();
        assert!(JType::parse_descriptor(&mut i, "").is_err());
        assert!(JType::parse_descriptor(&mut i, "Q").is_err());
        assert!(JType::parse_descriptor(&mut i, "Ljava/lang/String").is_err());
        assert!(JType::parse_descriptor(&mut i, "[V").is_err());
        assert!(parse_method_descriptor(&mut i, "I)V").is_err());
        assert!(parse_method_descriptor(&mut i, "(V)V").is_err());
        assert!(parse_method_descriptor(&mut i, "(I)VX").is_err());
    }

    #[test]
    fn wide_types() {
        assert!(JType::Long.is_wide());
        assert!(JType::Double.is_wide());
        assert!(!JType::Int.is_wide());
    }

    #[test]
    fn display_java_syntax() {
        let mut i = Interner::new();
        let ty = JType::array(JType::object(&mut i, "java.lang.String"));
        assert_eq!(ty.display(&i).to_string(), "java.lang.String[]");
    }
}
