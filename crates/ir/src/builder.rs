//! Fluent builders for constructing IR programs in Rust code.
//!
//! The builders are the main authoring surface for the synthetic workloads:
//! they let a gadget-chain skeleton be written in a few lines per method
//! while guaranteeing well-formedness (placed labels, identity statements in
//! canonical order, a trailing `return` for void bodies).
//!
//! # Examples
//!
//! ```
//! use tabby_ir::{JType, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut cb = pb.class("com.example.Evil");
//! cb.serializable_in_place();
//! let string = cb.object_type("java.lang.String");
//! let mut mb = cb.method("toString", vec![], string.clone());
//! let this = mb.this();
//! let v = mb.fresh();
//! mb.get_field(v, this, "com.example.Evil", "cmd", string.clone());
//! mb.ret(v);
//! mb.finish();
//! cb.finish();
//! let program = pb.build();
//! assert_eq!(program.method_count(), 1);
//! ```

use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::model::{Body, Class, ClassId, Field, Method, Program};
use crate::stmt::{
    BinOp, CmpOp, Condition, Constant, Expr, FieldRef, IdentityRef, InvokeExpr, InvokeKind, Label,
    Local, MethodRef, Operand, Place, Stmt,
};
use crate::symbol::{Interner, Symbol};
use crate::types::JType;
use std::collections::HashMap;

/// Builds a [`Program`] class by class.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: Interner,
    classes: Vec<Class>,
    index: HashMap<Symbol, ClassId>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder seeded with an existing interner.
    ///
    /// The interner is append-only, so symbols already interned keep their
    /// indices in the built program. The scan daemon relies on this: by
    /// threading one long-lived interner through every job, symbols (and
    /// therefore cached per-method summaries, which embed them) stay valid
    /// across scans.
    pub fn with_interner(interner: Interner) -> Self {
        ProgramBuilder {
            interner,
            classes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Interns a name.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Mutable access to the interner (used by the class-file lifter, whose
    /// symbols must come from the same table as the classes it registers).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Registers an externally constructed class (e.g. a lifted one).
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name was already added.
    pub fn push_class(&mut self, class: Class) {
        let id = ClassId(self.classes.len() as u32);
        let prev = self.index.insert(class.name, id);
        assert!(
            prev.is_none(),
            "duplicate class {}",
            self.interner.resolve(class.name)
        );
        self.classes.push(class);
    }

    /// Convenience for an object type.
    pub fn object_type(&mut self, name: &str) -> JType {
        JType::Object(self.intern(name))
    }

    /// Starts a new class. Unless overridden, the superclass defaults to
    /// `java.lang.Object` (cleared automatically when building
    /// `java.lang.Object` itself or an interface).
    pub fn class(&mut self, name: &str) -> ClassBuilder<'_> {
        let name_sym = self.intern(name);
        let superclass = if name == "java.lang.Object" {
            None
        } else {
            Some(self.intern("java.lang.Object"))
        };
        ClassBuilder {
            pb: self,
            class: Class {
                name: name_sym,
                superclass,
                interfaces: Vec::new(),
                fields: Vec::new(),
                methods: Vec::new(),
                flags: ClassFlags::new().public(),
            },
        }
    }

    /// Finishes building and produces the immutable [`Program`].
    pub fn build(self) -> Program {
        Program {
            interner: self.interner,
            classes: self.classes,
            index: self.index,
        }
    }
}

/// Builds one [`Class`]; created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'p> {
    pb: &'p mut ProgramBuilder,
    class: Class,
}

impl<'p> ClassBuilder<'p> {
    /// Sets the superclass (chaining form).
    #[must_use]
    pub fn extends(mut self, name: &str) -> Self {
        self.extends_in_place(name);
        self
    }

    /// Sets the superclass (in-place form).
    pub fn extends_in_place(&mut self, name: &str) -> &mut Self {
        self.class.superclass = Some(self.pb.intern(name));
        self
    }

    /// Adds implemented interfaces (chaining form).
    #[must_use]
    pub fn implements(mut self, names: &[&str]) -> Self {
        self.implements_in_place(names);
        self
    }

    /// Adds implemented interfaces (in-place form).
    pub fn implements_in_place(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            let sym = self.pb.intern(n);
            self.class.interfaces.push(sym);
        }
        self
    }

    /// Marks the class `java.io.Serializable` (chaining form).
    #[must_use]
    pub fn serializable(self) -> Self {
        self.implements(&["java.io.Serializable"])
    }

    /// Marks the class `java.io.Serializable` (in-place form).
    pub fn serializable_in_place(&mut self) -> &mut Self {
        self.implements_in_place(&["java.io.Serializable"])
    }

    /// Marks the class as an interface (clears the implicit superclass).
    #[must_use]
    pub fn interface(mut self) -> Self {
        self.class.flags = self.class.flags.interface().abstract_();
        self.class.superclass = None;
        self
    }

    /// Marks the class abstract.
    #[must_use]
    pub fn abstract_(mut self) -> Self {
        self.class.flags = self.class.flags.abstract_();
        self
    }

    /// Interns a name through the underlying program builder.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.pb.intern(s)
    }

    /// Convenience for an object type.
    pub fn object_type(&mut self, name: &str) -> JType {
        self.pb.object_type(name)
    }

    /// Adds an instance field.
    pub fn field(&mut self, name: &str, ty: JType) -> &mut Self {
        let name = self.pb.intern(name);
        self.class.fields.push(Field {
            name,
            ty,
            flags: FieldFlags::new().private(),
        });
        self
    }

    /// Adds a static field.
    pub fn static_field(&mut self, name: &str, ty: JType) -> &mut Self {
        let name = self.pb.intern(name);
        self.class.fields.push(Field {
            name,
            ty,
            flags: FieldFlags::new().private().static_(),
        });
        self
    }

    /// Starts a method with the given name, parameter types, and return type.
    pub fn method(&mut self, name: &str, params: Vec<JType>, ret: JType) -> MethodBuilder<'_, 'p> {
        let name = self.pb.intern(name);
        let param_count = params.len();
        MethodBuilder {
            cb: self,
            name,
            params,
            ret,
            flags: MethodFlags::new().public(),
            stmts: Vec::new(),
            labels: HashMap::new(),
            next_label: 0,
            next_local: 0,
            this_local: None,
            param_locals: vec![None; param_count],
            no_body: false,
        }
    }

    /// Finalizes the class and registers it with the program builder.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name was already finished.
    pub fn finish(self) {
        let id = ClassId(self.pb.classes.len() as u32);
        let prev = self.pb.index.insert(self.class.name, id);
        assert!(
            prev.is_none(),
            "duplicate class {}",
            self.pb.interner.resolve(self.class.name)
        );
        self.pb.classes.push(self.class);
    }
}

/// Builds one [`Method`]; created by [`ClassBuilder::method`].
#[derive(Debug)]
pub struct MethodBuilder<'c, 'p> {
    cb: &'c mut ClassBuilder<'p>,
    name: Symbol,
    params: Vec<JType>,
    ret: JType,
    flags: MethodFlags,
    stmts: Vec<Stmt>,
    labels: HashMap<Label, usize>,
    next_label: u32,
    next_local: u32,
    this_local: Option<Local>,
    param_locals: Vec<Option<Local>>,
    no_body: bool,
}

impl<'c, 'p> MethodBuilder<'c, 'p> {
    // ----- modifiers -------------------------------------------------------

    /// Marks the method `static`.
    #[must_use]
    pub fn static_(mut self) -> Self {
        self.flags = self.flags.static_();
        self
    }

    /// Marks the method `abstract` (no body will be attached).
    #[must_use]
    pub fn abstract_(mut self) -> Self {
        self.flags = self.flags.abstract_();
        self.no_body = true;
        self
    }

    /// Marks the method `native` (no body will be attached).
    #[must_use]
    pub fn native(mut self) -> Self {
        self.flags = self.flags.native();
        self.no_body = true;
        self
    }

    /// Marks the method `private`.
    #[must_use]
    pub fn private(mut self) -> Self {
        self.flags = MethodFlags::from_bits(
            (self.flags.bits() & !MethodFlags::PUBLIC) | MethodFlags::PRIVATE,
        );
        self
    }

    // ----- names, types, values -------------------------------------------

    /// Interns a name.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.cb.pb.intern(s)
    }

    /// Convenience for an object type.
    pub fn object_type(&mut self, name: &str) -> JType {
        self.cb.pb.object_type(name)
    }

    /// Allocates a fresh local slot.
    pub fn fresh(&mut self) -> Local {
        let l = Local(self.next_local);
        self.next_local += 1;
        l
    }

    /// The local bound to `this` (allocated and identity-bound lazily).
    ///
    /// # Panics
    ///
    /// Panics on static methods.
    pub fn this(&mut self) -> Local {
        assert!(!self.flags.is_static(), "`this` in a static method");
        if let Some(l) = self.this_local {
            return l;
        }
        let l = self.fresh();
        self.this_local = Some(l);
        l
    }

    /// The local bound to parameter `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&mut self, i: usize) -> Local {
        assert!(i < self.params.len(), "parameter index out of range");
        if let Some(l) = self.param_locals[i] {
            return l;
        }
        let l = self.fresh();
        self.param_locals[i] = Some(l);
        l
    }

    /// Integer constant operand.
    pub fn c_int(&self, v: i64) -> Operand {
        Operand::Const(Constant::Int(v))
    }

    /// String constant operand.
    pub fn c_str(&mut self, v: &str) -> Operand {
        let s = self.intern(v);
        Operand::Const(Constant::Str(s))
    }

    /// `null` constant operand.
    pub fn c_null(&self) -> Operand {
        Operand::Const(Constant::Null)
    }

    /// Class-literal constant operand.
    pub fn c_class(&mut self, name: &str) -> Operand {
        let s = self.intern(name);
        Operand::Const(Constant::Class(s))
    }

    /// Builds a symbolic method reference.
    pub fn sig(&mut self, class: &str, name: &str, params: &[JType], ret: JType) -> MethodRef {
        MethodRef {
            class: self.intern(class),
            name: self.intern(name),
            params: params.to_vec(),
            ret,
        }
    }

    /// Builds a symbolic field reference.
    pub fn fref(&mut self, class: &str, name: &str, ty: JType) -> FieldRef {
        FieldRef {
            class: self.intern(class),
            name: self.intern(name),
            ty,
        }
    }

    // ----- statements ------------------------------------------------------

    /// Appends a raw statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        assert!(!self.no_body, "statement in an abstract/native method");
        self.stmts.push(stmt);
        self
    }

    /// `dst = src`
    pub fn copy(&mut self, dst: Local, src: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Use(src.into()),
        })
    }

    /// `dst = new C` (allocation only; pair with [`Self::ctor`]).
    pub fn new_obj(&mut self, dst: Local, class: &str) -> &mut Self {
        let c = self.intern(class);
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::New(c),
        })
    }

    /// `base.<init>(args)` — constructor call (`invokespecial`).
    pub fn ctor(
        &mut self,
        base: Local,
        class: &str,
        params: &[JType],
        args: &[Operand],
    ) -> &mut Self {
        let callee = self.sig(class, "<init>", params, JType::Void);
        self.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Special,
            base: Some(base.into()),
            callee,
            args: args.to_vec(),
        }))
    }

    /// Allocate-and-construct helper: `dst = new C(args)`.
    pub fn new_with_ctor(
        &mut self,
        dst: Local,
        class: &str,
        params: &[JType],
        args: &[Operand],
    ) -> &mut Self {
        self.new_obj(dst, class);
        self.ctor(dst, class, params, args)
    }

    /// `dst = base.field`
    pub fn get_field(
        &mut self,
        dst: Local,
        base: Local,
        class: &str,
        field: &str,
        ty: JType,
    ) -> &mut Self {
        let f = self.fref(class, field, ty);
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Load(Place::InstanceField { base, field: f }),
        })
    }

    /// `base.field = value`
    pub fn put_field(
        &mut self,
        base: Local,
        class: &str,
        field: &str,
        ty: JType,
        value: impl Into<Operand>,
    ) -> &mut Self {
        let f = self.fref(class, field, ty);
        self.push(Stmt::Assign {
            place: Place::InstanceField { base, field: f },
            rhs: Expr::Use(value.into()),
        })
    }

    /// `dst = Class.field`
    pub fn get_static(&mut self, dst: Local, class: &str, field: &str, ty: JType) -> &mut Self {
        let f = self.fref(class, field, ty);
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Load(Place::StaticField(f)),
        })
    }

    /// `Class.field = value`
    pub fn put_static(
        &mut self,
        class: &str,
        field: &str,
        ty: JType,
        value: impl Into<Operand>,
    ) -> &mut Self {
        let f = self.fref(class, field, ty);
        self.push(Stmt::Assign {
            place: Place::StaticField(f),
            rhs: Expr::Use(value.into()),
        })
    }

    /// `dst = base[index]`
    pub fn array_get(&mut self, dst: Local, base: Local, index: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Load(Place::ArrayElem {
                base,
                index: index.into(),
            }),
        })
    }

    /// `base[index] = value`
    pub fn array_put(
        &mut self,
        base: Local,
        index: impl Into<Operand>,
        value: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::ArrayElem {
                base,
                index: index.into(),
            },
            rhs: Expr::Use(value.into()),
        })
    }

    /// `dst = new T[len]`
    pub fn new_array(&mut self, dst: Local, elem: JType, len: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::NewArray {
                elem,
                len: len.into(),
            },
        })
    }

    /// `dst = (T) value`
    pub fn cast(&mut self, dst: Local, ty: JType, value: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Cast {
                ty,
                value: value.into(),
            },
        })
    }

    /// `dst = lhs <op> rhs`
    pub fn binop(
        &mut self,
        dst: Local,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs: Expr::Binary {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        })
    }

    fn invoke(
        &mut self,
        kind: InvokeKind,
        dst: Option<Local>,
        base: Option<Local>,
        callee: MethodRef,
        args: &[Operand],
    ) -> &mut Self {
        let inv = InvokeExpr {
            kind,
            base: base.map(Operand::from),
            callee,
            args: args.to_vec(),
        };
        match dst {
            Some(dst) => self.push(Stmt::Assign {
                place: Place::Local(dst),
                rhs: Expr::Invoke(inv),
            }),
            None => self.push(Stmt::Invoke(inv)),
        }
    }

    /// `dst = base.name(args)` via `invokevirtual`.
    pub fn call_virtual(
        &mut self,
        dst: Option<Local>,
        base: Local,
        callee: MethodRef,
        args: &[Operand],
    ) -> &mut Self {
        self.invoke(InvokeKind::Virtual, dst, Some(base), callee, args)
    }

    /// `dst = base.name(args)` via `invokeinterface`.
    pub fn call_interface(
        &mut self,
        dst: Option<Local>,
        base: Local,
        callee: MethodRef,
        args: &[Operand],
    ) -> &mut Self {
        self.invoke(InvokeKind::Interface, dst, Some(base), callee, args)
    }

    /// `dst = base.name(args)` via `invokespecial` (super/private calls).
    pub fn call_special(
        &mut self,
        dst: Option<Local>,
        base: Local,
        callee: MethodRef,
        args: &[Operand],
    ) -> &mut Self {
        self.invoke(InvokeKind::Special, dst, Some(base), callee, args)
    }

    /// `dst = Class.name(args)` via `invokestatic`.
    pub fn call_static(
        &mut self,
        dst: Option<Local>,
        callee: MethodRef,
        args: &[Operand],
    ) -> &mut Self {
        self.invoke(InvokeKind::Static, dst, None, callee, args)
    }

    /// `return value;`
    pub fn ret(&mut self, value: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Return(Some(value.into())))
    }

    /// `return;`
    pub fn ret_void(&mut self) -> &mut Self {
        self.push(Stmt::Return(None))
    }

    /// Allocates a fresh label (place it with [`Self::place`]).
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Places `label` at the next statement position.
    pub fn place(&mut self, label: Label) -> &mut Self {
        let prev = self.labels.insert(label, self.stmts.len());
        assert!(prev.is_none(), "label placed twice");
        self
    }

    /// `goto label;`
    pub fn goto(&mut self, label: Label) -> &mut Self {
        self.push(Stmt::Goto(label))
    }

    /// `if (lhs <op> rhs) goto label;`
    pub fn if_(
        &mut self,
        op: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.push(Stmt::If {
            cond: Condition {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            target: label,
        })
    }

    /// `switch (key) { … }`
    pub fn switch(
        &mut self,
        key: impl Into<Operand>,
        cases: Vec<(i64, Label)>,
        default: Label,
    ) -> &mut Self {
        self.push(Stmt::Switch {
            key: key.into(),
            cases,
            default,
        })
    }

    /// `throw value;`
    pub fn throw_(&mut self, value: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Throw(value.into()))
    }

    /// No-op statement.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Stmt::Nop)
    }

    // ----- finalization ----------------------------------------------------

    /// Validates and attaches the method to its class.
    ///
    /// Identity statements for `this` and every used parameter are prepended
    /// in canonical order; for a `void` body that does not end in a
    /// terminator, a trailing `return;` is appended.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed, or if a non-void body
    /// falls off the end without returning.
    pub fn finish(self) {
        let Self {
            cb,
            name,
            params,
            ret,
            flags,
            mut stmts,
            mut labels,
            next_local,
            this_local,
            param_locals,
            no_body,
            ..
        } = self;
        let body = if no_body {
            assert!(stmts.is_empty(), "abstract/native method with statements");
            None
        } else {
            // Prepend identity statements in canonical order.
            let mut prologue = Vec::new();
            if let Some(l) = this_local {
                prologue.push(Stmt::Identity {
                    local: l,
                    source: IdentityRef::This,
                });
            }
            for (i, pl) in param_locals.iter().enumerate() {
                if let Some(l) = pl {
                    prologue.push(Stmt::Identity {
                        local: *l,
                        source: IdentityRef::Param(i as u16),
                    });
                }
            }
            let shift = prologue.len();
            for idx in labels.values_mut() {
                *idx += shift;
            }
            prologue.append(&mut stmts);
            stmts = prologue;
            // Implicit `return;` for void bodies.
            let needs_ret = stmts.last().map_or(true, |s| !s.is_terminator());
            if needs_ret {
                assert!(ret == JType::Void, "non-void body falls off the end");
                stmts.push(Stmt::Return(None));
            }
            // All referenced labels must be placed.
            for (i, s) in stmts.iter().enumerate() {
                for t in s.targets() {
                    assert!(
                        labels.contains_key(&t),
                        "statement {i} references unplaced label {t:?}"
                    );
                }
            }
            Some(Body {
                locals: next_local,
                stmts,
                labels,
            })
        };
        cb.class.methods.push(Method {
            name,
            params,
            ret,
            flags,
            body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_prepended_in_order() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone(), obj.clone()], JType::Void);
        let p1 = mb.param(1);
        let p0 = mb.param(0);
        let this = mb.this();
        let tmp = mb.fresh();
        mb.copy(tmp, p0);
        mb.copy(tmp, p1);
        mb.copy(tmp, this);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        assert!(matches!(
            body.stmts[0],
            Stmt::Identity {
                source: IdentityRef::This,
                ..
            }
        ));
        assert!(matches!(
            body.stmts[1],
            Stmt::Identity {
                source: IdentityRef::Param(0),
                ..
            }
        ));
        assert!(matches!(
            body.stmts[2],
            Stmt::Identity {
                source: IdentityRef::Param(1),
                ..
            }
        ));
        // Implicit trailing return.
        assert!(matches!(body.stmts.last(), Some(Stmt::Return(None))));
    }

    #[test]
    fn labels_are_shifted_with_prologue() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![JType::Int], JType::Void);
        let p0 = mb.param(0);
        let end = mb.fresh_label();
        mb.if_(CmpOp::Eq, p0, mb.c_int(0), end);
        mb.nop();
        mb.place(end);
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        // stmts: identity, if, nop, return — label points at the return.
        let target = body.target(Label(0));
        assert!(matches!(body.stmts[target], Stmt::Return(None)));
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let l = mb.fresh_label();
        mb.goto(l);
        mb.finish();
    }

    #[test]
    #[should_panic(expected = "falls off the end")]
    fn non_void_fallthrough_panics() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Int);
        mb.nop();
        mb.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut pb = ProgramBuilder::new();
        pb.class("t.C").finish();
        pb.class("t.C").finish();
    }

    #[test]
    fn abstract_method_has_no_body() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        cb.method("m", vec![], JType::Void).abstract_().finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        assert!(p.method(id).body.is_none());
        assert!(p.method(id).flags.is_abstract());
    }

    #[test]
    fn new_with_ctor_emits_alloc_then_init() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let v = mb.fresh();
        mb.new_with_ctor(v, "t.D", &[], &[]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        assert!(matches!(
            &body.stmts[0],
            Stmt::Assign {
                rhs: Expr::New(_),
                ..
            }
        ));
        let inv = body.stmts[1].invoke().unwrap();
        assert_eq!(inv.kind, InvokeKind::Special);
        assert_eq!(p.name(inv.callee.name), "<init>");
    }
}
