//! Textual rendering of IR programs in a Jimple-like concrete syntax.
//!
//! The printer exists for debugging, documentation, and golden tests; it is
//! not meant to be re-parsed.

use crate::model::{Body, Class, Method, MethodId, Program};
use crate::stmt::{
    BinOp, CmpOp, Constant, Expr, IdentityRef, InvokeExpr, InvokeKind, Operand, Place, Stmt, UnOp,
};
use std::fmt::Write as _;

/// Renders the whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for class in program.classes() {
        print_class(program, class, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one method (declaration plus body).
pub fn print_method(program: &Program, id: MethodId) -> String {
    let mut out = String::new();
    let method = program.method(id);
    write_method(program, method, &mut out);
    out
}

fn print_class(program: &Program, class: &Class, out: &mut String) {
    let kind = if class.flags.is_interface() {
        "interface"
    } else {
        "class"
    };
    let _ = write!(out, "{kind} {}", program.name(class.name));
    if let Some(sup) = class.superclass {
        let _ = write!(out, " extends {}", program.name(sup));
    }
    if !class.interfaces.is_empty() {
        let names: Vec<_> = class.interfaces.iter().map(|i| program.name(*i)).collect();
        let _ = write!(out, " implements {}", names.join(", "));
    }
    out.push_str(" {\n");
    for field in &class.fields {
        let _ = writeln!(
            out,
            "    {}{} {};",
            if field.flags.is_static() {
                "static "
            } else {
                ""
            },
            field.ty.display(program.interner()),
            program.name(field.name)
        );
    }
    for method in &class.methods {
        write_method(program, method, out);
    }
    out.push_str("}\n");
}

fn write_method(program: &Program, method: &Method, out: &mut String) {
    let params: Vec<_> = method
        .params
        .iter()
        .map(|p| p.display(program.interner()).to_string())
        .collect();
    let _ = write!(
        out,
        "    {}{}{} {}({})",
        if method.flags.is_static() {
            "static "
        } else {
            ""
        },
        if method.flags.is_abstract() {
            "abstract "
        } else {
            ""
        },
        method.ret.display(program.interner()),
        program.name(method.name),
        params.join(", ")
    );
    match &method.body {
        None => out.push_str(";\n"),
        Some(body) => {
            out.push_str(" {\n");
            write_body(program, body, out);
            out.push_str("    }\n");
        }
    }
}

fn write_body(program: &Program, body: &Body, out: &mut String) {
    // Invert the label map so placements print as `Ln:`.
    let mut at: Vec<Vec<u32>> = vec![Vec::new(); body.stmts.len() + 1];
    for (label, idx) in &body.labels {
        at[*idx].push(label.0);
    }
    for (i, stmt) in body.stmts.iter().enumerate() {
        for l in &at[i] {
            let _ = writeln!(out, "      L{l}:");
        }
        let _ = writeln!(out, "        {};", render_stmt(program, stmt));
    }
}

fn render_stmt(p: &Program, stmt: &Stmt) -> String {
    match stmt {
        Stmt::Assign { place, rhs } => {
            format!("{} = {}", render_place(p, place), render_expr(p, rhs))
        }
        Stmt::Identity { local, source } => format!(
            "v{} := {}",
            local.0,
            match source {
                IdentityRef::This => "@this".to_owned(),
                IdentityRef::Param(i) => format!("@parameter{i}"),
                IdentityRef::CaughtException => "@caughtexception".to_owned(),
            }
        ),
        Stmt::Invoke(inv) => render_invoke(p, inv),
        Stmt::Return(None) => "return".to_owned(),
        Stmt::Return(Some(v)) => format!("return {}", render_operand(p, v)),
        Stmt::If { cond, target } => format!(
            "if {} {} {} goto L{}",
            render_operand(p, &cond.lhs),
            render_cmp(cond.op),
            render_operand(p, &cond.rhs),
            target.0
        ),
        Stmt::Goto(t) => format!("goto L{}", t.0),
        Stmt::Switch {
            key,
            cases,
            default,
        } => {
            let arms: Vec<_> = cases
                .iter()
                .map(|(v, l)| format!("case {v}: L{}", l.0))
                .collect();
            format!(
                "switch({}) {{ {}; default: L{} }}",
                render_operand(p, key),
                arms.join("; "),
                default.0
            )
        }
        Stmt::Throw(v) => format!("throw {}", render_operand(p, v)),
        Stmt::EnterMonitor(v) => format!("entermonitor {}", render_operand(p, v)),
        Stmt::ExitMonitor(v) => format!("exitmonitor {}", render_operand(p, v)),
        Stmt::Nop => "nop".to_owned(),
        Stmt::Breakpoint => "breakpoint".to_owned(),
        Stmt::Ret(l) => format!("ret v{}", l.0),
    }
}

fn render_place(p: &Program, place: &Place) -> String {
    match place {
        Place::Local(l) => format!("v{}", l.0),
        Place::InstanceField { base, field } => {
            format!(
                "v{}.<{}: {}>",
                base.0,
                p.name(field.class),
                p.name(field.name)
            )
        }
        Place::StaticField(field) => {
            format!("<{}: {}>", p.name(field.class), p.name(field.name))
        }
        Place::ArrayElem { base, index } => {
            format!("v{}[{}]", base.0, render_operand(p, index))
        }
    }
}

fn render_expr(p: &Program, expr: &Expr) -> String {
    match expr {
        Expr::Use(v) => render_operand(p, v),
        Expr::Load(place) => render_place(p, place),
        Expr::New(c) => format!("new {}", p.name(*c)),
        Expr::NewArray { elem, len } => format!(
            "new {}[{}]",
            elem.display(p.interner()),
            render_operand(p, len)
        ),
        Expr::Cast { ty, value } => format!(
            "({}) {}",
            ty.display(p.interner()),
            render_operand(p, value)
        ),
        Expr::InstanceOf { ty, value } => format!(
            "{} instanceof {}",
            render_operand(p, value),
            ty.display(p.interner())
        ),
        Expr::Binary { op, lhs, rhs } => format!(
            "{} {} {}",
            render_operand(p, lhs),
            render_binop(*op),
            render_operand(p, rhs)
        ),
        Expr::Unary { op, value } => match op {
            UnOp::Neg => format!("-{}", render_operand(p, value)),
        },
        Expr::ArrayLength(v) => format!("lengthof {}", render_operand(p, v)),
        Expr::Invoke(inv) => render_invoke(p, inv),
    }
}

fn render_invoke(p: &Program, inv: &InvokeExpr) -> String {
    let kind = match inv.kind {
        InvokeKind::Virtual => "virtualinvoke",
        InvokeKind::Interface => "interfaceinvoke",
        InvokeKind::Special => "specialinvoke",
        InvokeKind::Static => "staticinvoke",
        InvokeKind::Dynamic => "dynamicinvoke",
    };
    let args: Vec<_> = inv.args.iter().map(|a| render_operand(p, a)).collect();
    match &inv.base {
        Some(base) => format!(
            "{kind} {}.<{}: {}>({})",
            render_operand(p, base),
            p.name(inv.callee.class),
            p.name(inv.callee.name),
            args.join(", ")
        ),
        None => format!(
            "{kind} <{}: {}>({})",
            p.name(inv.callee.class),
            p.name(inv.callee.name),
            args.join(", ")
        ),
    }
}

fn render_operand(p: &Program, v: &Operand) -> String {
    match v {
        Operand::Local(l) => format!("v{}", l.0),
        Operand::Const(c) => match c {
            Constant::Int(i) => i.to_string(),
            Constant::Float(f) => f.to_string(),
            Constant::Str(s) => format!("{:?}", p.name(*s)),
            Constant::Class(s) => format!("class {}", p.name(*s)),
            Constant::Null => "null".to_owned(),
        },
    }
}

fn render_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Ushr => ">>>",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Cmp => "cmp",
    }
}

fn render_cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::JType;

    #[test]
    fn prints_class_and_method() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        cb.serializable_in_place();
        let obj = cb.object_type("java.lang.Object");
        cb.field("f", obj.clone());
        let mut mb = cb.method("m", vec![obj.clone()], JType::Void);
        let this = mb.this();
        let p0 = mb.param(0);
        mb.put_field(this, "t.C", "f", obj.clone(), p0);
        let callee = mb.sig("java.lang.Object", "toString", &[], obj.clone());
        mb.call_virtual(None, p0, callee, &[]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let text = print_program(&p);
        assert!(text.contains("class t.C"));
        assert!(text.contains("implements java.io.Serializable"));
        assert!(text.contains("@this"));
        assert!(text.contains("virtualinvoke"));
        assert!(text.contains("toString"));
    }

    #[test]
    fn prints_labels() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let l = mb.fresh_label();
        mb.goto(l);
        mb.place(l);
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let text = print_method(&p, id);
        assert!(text.contains("goto L0"));
        assert!(text.contains("L0:"));
    }
}
