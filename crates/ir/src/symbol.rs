//! String interning for class, method, and field names.
//!
//! Every name that appears in a [`crate::Program`] is interned into a
//! [`Symbol`], a cheap copyable handle. Interning keeps the IR compact and
//! makes name comparisons O(1), which matters because the controllability
//! analysis compares method names on every call-site visit.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A handle to an interned string.
///
/// Symbols are only meaningful together with the [`Interner`] (usually owned
/// by a [`crate::Program`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(u32);

impl Symbol {
    /// A symbol that can never be produced by interning (index `u32::MAX`).
    /// Used internally as a "name not present in this program" marker; it is
    /// only ever compared, never resolved.
    pub(crate) const SENTINEL: Symbol = Symbol(u32::MAX);

    /// Raw index of the symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// # Examples
///
/// ```
/// use tabby_ir::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("java.lang.Object");
/// let b = interner.intern("java.lang.Object");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "java.lang.Object");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).unwrap_or_else(|_| {
            panic!("interner overflow: {} strings interned", self.strings.len())
        }));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["x", "", "java.util.HashMap", "readObject"];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *n);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }
}
