//! Lifting `.class` bytes to the IR — the Soot front-end role.
//!
//! Stack-machine code is converted to three-address statements by giving
//! every operand-stack cell a dedicated local (Soot's classic naive-Jimple
//! construction): the cell holding stack depth *d* is `Local(max_locals +
//! d)`. Because every push/pop becomes an assignment to a fixed local,
//! control-flow merges need no phi handling — the lifter only has to know
//! the stack depth at each instruction, which a forward worklist computes.
//!
//! Fidelity notes: wide values (`long`/`double`) occupy one abstract cell
//! (`pop2`/`dup2` are treated as two-cell operations, which matches code
//! produced by [`crate::compile`] and common javac output on reference
//! values); `jsr` lifts to a goto; `invokedynamic` lifts to
//! [`InvokeKind::Dynamic`], which the analysis treats as opaque (§V-B).

use crate::builder::ProgramBuilder;
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::model::{Body, Class, Field, Method, Program};
use crate::stmt::{
    BinOp, CmpOp, Condition, Constant, Expr, FieldRef, InvokeExpr, InvokeKind, Label, Local,
    MethodRef, Operand, Place, Stmt, UnOp,
};
use crate::symbol::Interner;
use crate::types::{parse_method_descriptor, JType};
use std::collections::HashMap;
use tabby_classfile::opcode::{decode, ArithOp, Cond, Insn};
use tabby_classfile::{ClassFile, ClassFileError, CodeAttribute, ConstantPool, CpInfo};

/// Lifts a set of `.class` byte blobs into a [`Program`].
///
/// # Errors
///
/// Returns the first parse/lift error encountered.
pub fn lift_program(classes: &[Vec<u8>]) -> Result<Program, ClassFileError> {
    let mut pb = ProgramBuilder::new();
    let mut lifted = Vec::new();
    for bytes in classes {
        let cf = tabby_classfile::parse_class(bytes)?;
        lifted.push(lift_class(pb.interner_mut(), &cf)?);
    }
    for class in lifted {
        pb.push_class(class);
    }
    Ok(pb.build())
}

/// Why one class was quarantined during a tolerant lift.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LiftDiagnostic {
    /// Index of the blob in the input slice.
    pub index: usize,
    /// Fully-qualified class name, when the header parsed far enough to
    /// recover it.
    pub class_name: Option<String>,
    /// FNV-1a hash of the raw bytes, so a skipped blob can be located even
    /// without a name.
    pub byte_hash: u64,
    /// Human-readable parse/lift error (or panic payload).
    pub error: String,
}

/// Result of [`lift_program_tolerant`]: the surviving program plus one
/// diagnostic per quarantined class.
#[derive(Debug)]
pub struct LiftOutcome {
    /// Program built from the classes that lifted cleanly.
    pub program: Program,
    /// One entry per class that failed to parse or lift.
    pub skipped: Vec<LiftDiagnostic>,
}

/// FNV-1a over raw class bytes (the ir crate has no dependency on the graph
/// crate's hashing helpers, so the identical constant-folded loop lives here).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lifts every blob that parses, quarantining the rest.
///
/// Unlike [`lift_program`], a malformed class does not abort the whole
/// batch: it becomes a [`LiftDiagnostic`] and the survivors still form a
/// [`Program`]. Panics inside the per-class parse/lift are contained the
/// same way (the interner is append-only, so partial interning from an
/// aborted class is harmless).
pub fn lift_program_tolerant(classes: &[Vec<u8>]) -> LiftOutcome {
    let mut pb = ProgramBuilder::new();
    let mut skipped = Vec::new();
    for (index, bytes) in classes.iter().enumerate() {
        let interner = pb.interner_mut();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<Class, (Option<String>, String)> {
                let cf = tabby_classfile::parse_class(bytes).map_err(|e| (None, e.to_string()))?;
                let name = cf.name().ok();
                lift_class(interner, &cf).map_err(|e| (name.clone(), e.to_string()))
            },
        ));
        match attempt {
            Ok(Ok(class)) => pb.push_class(class),
            Ok(Err((class_name, error))) => skipped.push(LiftDiagnostic {
                index,
                class_name,
                byte_hash: fnv1a64(bytes),
                error,
            }),
            Err(payload) => skipped.push(LiftDiagnostic {
                index,
                class_name: None,
                byte_hash: fnv1a64(bytes),
                error: format!("panic while lifting: {}", panic_message(payload.as_ref())),
            }),
        }
    }
    LiftOutcome {
        program: pb.build(),
        skipped,
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Lifts one parsed class file into an IR [`Class`].
pub fn lift_class(interner: &mut Interner, cf: &ClassFile) -> Result<Class, ClassFileError> {
    let name = interner.intern(&cf.name()?);
    let superclass = cf.super_name()?.map(|s| interner.intern(&s));
    let interfaces = cf
        .interface_names()?
        .iter()
        .map(|i| interner.intern(i))
        .collect();
    let mut fields = Vec::new();
    for f in &cf.fields {
        let fname = interner.intern(cf.constant_pool.utf8(f.name_index)?);
        let desc = cf.constant_pool.utf8(f.descriptor_index)?.to_owned();
        let (ty, _) = JType::parse_descriptor(interner, &desc)
            .map_err(|e| ClassFileError::new(e.to_string()))?;
        fields.push(Field {
            name: fname,
            ty,
            flags: FieldFlags::from_bits(f.access_flags),
        });
    }
    let mut methods = Vec::new();
    for m in &cf.methods {
        let mname = interner.intern(cf.constant_pool.utf8(m.name_index)?);
        let desc = cf.constant_pool.utf8(m.descriptor_index)?.to_owned();
        let (params, ret) = parse_method_descriptor(interner, &desc)
            .map_err(|e| ClassFileError::new(e.to_string()))?;
        let flags = MethodFlags::from_bits(m.access_flags);
        let body = match cf.code_of(m)? {
            Some(code) => Some(lift_body(
                interner,
                &cf.constant_pool,
                &code,
                &params,
                flags.is_static(),
            )?),
            None => None,
        };
        methods.push(Method {
            name: mname,
            params,
            ret,
            flags,
            body,
        });
    }
    Ok(Class {
        name,
        superclass,
        interfaces,
        fields,
        methods,
        flags: ClassFlags::from_bits(cf.access_flags),
    })
}

/// Per-offset lift state.
struct Lifter<'a> {
    interner: &'a mut Interner,
    cp: &'a ConstantPool,
    max_locals: u16,
    stmts: Vec<Stmt>,
    /// Code offset → statement index (start of that instruction's stmts).
    stmt_at: HashMap<u32, usize>,
}

impl Lifter<'_> {
    fn cell(&self, depth: u32) -> Local {
        Local(u32::from(self.max_locals) + depth)
    }

    fn member(&mut self, index: u16) -> Result<(MethodRef, usize), ClassFileError> {
        let (class, name, desc) = self.cp.member_ref(index)?;
        let class = class.replace('/', ".");
        let (params, ret) = parse_method_descriptor(self.interner, desc)
            .map_err(|e| ClassFileError::new(e.to_string()))?;
        let argc = params.len();
        Ok((
            MethodRef {
                class: self.interner.intern(&class),
                name: self.interner.intern(name),
                params,
                ret,
            },
            argc,
        ))
    }

    fn field(&mut self, index: u16) -> Result<FieldRef, ClassFileError> {
        let (class, name, desc) = self.cp.member_ref(index)?;
        let class = class.replace('/', ".");
        let (ty, _) = JType::parse_descriptor(self.interner, desc)
            .map_err(|e| ClassFileError::new(e.to_string()))?;
        Ok(FieldRef {
            class: self.interner.intern(&class),
            name: self.interner.intern(name),
            ty,
        })
    }

    fn class_type(&mut self, index: u16) -> Result<JType, ClassFileError> {
        let internal = self.cp.class_name(index)?.to_owned();
        if internal.starts_with('[') {
            let (ty, _) = JType::parse_descriptor(self.interner, &internal)
                .map_err(|e| ClassFileError::new(e.to_string()))?;
            Ok(ty)
        } else {
            Ok(JType::Object(
                self.interner.intern(&internal.replace('/', ".")),
            ))
        }
    }

    fn assign(&mut self, dst: Local, rhs: Expr) {
        self.stmts.push(Stmt::Assign {
            place: Place::Local(dst),
            rhs,
        });
    }

    fn copy_cell(&mut self, dst: Local, src: Local) {
        self.assign(dst, Expr::Use(Operand::Local(src)));
    }
}

fn cond_of(c: Cond) -> CmpOp {
    match c {
        Cond::Eq => CmpOp::Eq,
        Cond::Ne => CmpOp::Ne,
        Cond::Lt => CmpOp::Lt,
        Cond::Ge => CmpOp::Ge,
        Cond::Gt => CmpOp::Gt,
        Cond::Le => CmpOp::Le,
    }
}

fn binop_of(op: ArithOp) -> BinOp {
    match op {
        ArithOp::Add => BinOp::Add,
        ArithOp::Sub => BinOp::Sub,
        ArithOp::Mul => BinOp::Mul,
        ArithOp::Div => BinOp::Div,
        ArithOp::Rem => BinOp::Rem,
        ArithOp::Shl => BinOp::Shl,
        ArithOp::Shr => BinOp::Shr,
        ArithOp::Ushr => BinOp::Ushr,
        ArithOp::And => BinOp::And,
        ArithOp::Or => BinOp::Or,
        ArithOp::Xor => BinOp::Xor,
    }
}

/// Stack effect (pop, push) of an instruction, with wide values as one cell.
fn stack_effect(insn: &Insn, cp: &ConstantPool) -> (u32, u32) {
    use Insn::*;
    match insn {
        Nop | Breakpoint | Iinc(..) | Goto(_) | Ret(_) => (0, 0),
        ConstNull | ConstInt(_) | ConstLong(_) | ConstFloat(_) | ConstDouble(_) | Ldc(_)
        | Load(..) | New(_) | GetStatic(_) | Jsr(_) => (0, 1),
        Store(..)
        | Pop
        | Pop2
        | IfZero(..)
        | IfNull(_)
        | IfNonNull(_)
        | TableSwitch { .. }
        | LookupSwitch { .. }
        | PutStatic(_)
        | AThrow
        | MonitorEnter
        | MonitorExit => (1, 0),
        ArrayLoad(_) => (2, 1),
        ArrayStore(_) => (3, 0),
        Dup => (1, 2),
        DupX1 => (2, 3),
        DupX2 => (3, 4),
        Dup2 => (2, 4),
        Dup2X1 => (3, 5),
        Dup2X2 => (4, 6),
        Swap => (2, 2),
        Arith(..) | Cmp => (2, 1),
        Neg(_) | Convert(_) | NewArray(_) | ANewArray(_) | ArrayLength | CheckCast(_)
        | InstanceOf(_) => (1, 1),
        IfICmp(..) | IfACmp(..) | PutField(_) => (2, 0),
        GetField(_) => (1, 1),
        Return(Some(_)) => (1, 0),
        Return(None) => (0, 0),
        InvokeVirtual(i) | InvokeSpecial(i) | InvokeInterface(i) => {
            let (argc, ret) = invoke_shape(cp, *i);
            (argc + 1, ret)
        }
        InvokeStatic(i) | InvokeDynamic(i) => {
            let (argc, ret) = invoke_shape(cp, *i);
            (argc, ret)
        }
        MultiANewArray(_, dims) => (u32::from(*dims), 1),
    }
}

fn invoke_shape(cp: &ConstantPool, index: u16) -> (u32, u32) {
    let desc = match cp.get(index) {
        Ok(CpInfo::InvokeDynamic(_, nat)) => cp.name_and_type(*nat).map(|(_, d)| d).ok(),
        _ => cp.member_ref(index).map(|(_, _, d)| d).ok(),
    };
    let Some(desc) = desc else { return (0, 0) };
    // Count parameters without interning types. Malformed descriptors (from
    // corrupt constant pools) terminate the walk instead of running off the
    // end of the byte slice.
    let mut argc = 0u32;
    let bytes = desc.as_bytes();
    let mut i = 1; // skip '('
    while i < bytes.len() && bytes[i] != b')' {
        argc += 1;
        while i < bytes.len() && bytes[i] == b'[' {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'L' {
            while i < bytes.len() && bytes[i] != b';' {
                i += 1;
            }
        }
        i += 1;
    }
    let ret = if desc.ends_with('V') { 0 } else { 1 };
    (argc, ret)
}

/// Computes the stack depth at every instruction offset.
fn compute_depths(
    insns: &[(u32, Insn)],
    code: &CodeAttribute,
    cp: &ConstantPool,
) -> Result<HashMap<u32, u32>, ClassFileError> {
    let index_of: HashMap<u32, usize> = insns
        .iter()
        .enumerate()
        .map(|(i, (o, _))| (*o, i))
        .collect();
    let mut depths: HashMap<u32, u32> = HashMap::new();
    let mut work: Vec<(u32, u32)> = vec![(0, 0)];
    for h in &code.exception_table {
        work.push((u32::from(h.handler_pc), 1));
    }
    while let Some((offset, depth)) = work.pop() {
        match depths.get(&offset) {
            Some(&d) => {
                if d != depth {
                    // Inconsistent merge: keep the larger estimate (the
                    // analysis is depth-tolerant; cells simply stay stale).
                    if depth > d {
                        depths.insert(offset, depth);
                    } else {
                        continue;
                    }
                } else {
                    continue;
                }
            }
            None => {
                depths.insert(offset, depth);
            }
        }
        let Some(&i) = index_of.get(&offset) else {
            return Err(ClassFileError::new(format!(
                "branch into the middle of an instruction at {offset}"
            )));
        };
        let insn = &insns[i].1;
        let (pop, push) = stack_effect(insn, cp);
        let next = depth.saturating_sub(pop) + push;
        let follow = |target: u32, work: &mut Vec<(u32, u32)>| {
            work.push((target, next));
        };
        match insn {
            Insn::Goto(t) | Insn::Jsr(t) => follow(*t, &mut work),
            Insn::IfZero(_, t)
            | Insn::IfICmp(_, t)
            | Insn::IfACmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t) => {
                follow(*t, &mut work);
                if let Some((o, _)) = insns.get(i + 1) {
                    follow(*o, &mut work);
                }
            }
            Insn::TableSwitch {
                default, offsets, ..
            } => {
                follow(*default, &mut work);
                for &t in offsets {
                    follow(t, &mut work);
                }
            }
            Insn::LookupSwitch { default, pairs } => {
                follow(*default, &mut work);
                for (_, t) in pairs {
                    follow(*t, &mut work);
                }
            }
            Insn::Return(_) | Insn::AThrow | Insn::Ret(_) => {}
            _ => {
                if let Some((o, _)) = insns.get(i + 1) {
                    follow(*o, &mut work);
                }
            }
        }
    }
    Ok(depths)
}

/// Lifts one `Code` attribute into a [`Body`].
pub fn lift_body(
    interner: &mut Interner,
    cp: &ConstantPool,
    code: &CodeAttribute,
    params: &[JType],
    is_static: bool,
) -> Result<Body, ClassFileError> {
    let insns = decode(&code.code)?;
    let depths = compute_depths(&insns, code, cp)?;
    let mut lifter = Lifter {
        interner,
        cp,
        max_locals: code.max_locals.max(1),
        stmts: Vec::new(),
        stmt_at: HashMap::new(),
    };

    // Identity statements: this and parameters into their JVM slots (wide
    // parameters consume two slots).
    let mut slot = 0u16;
    if !is_static {
        lifter.stmts.push(Stmt::Identity {
            local: Local(0),
            source: crate::stmt::IdentityRef::This,
        });
        slot = 1;
    }
    for (i, ty) in params.iter().enumerate() {
        lifter.stmts.push(Stmt::Identity {
            local: Local(u32::from(slot)),
            source: crate::stmt::IdentityRef::Param(i as u16),
        });
        slot += if ty.is_wide() { 2 } else { 1 };
    }

    let mut max_cell_depth = 0u32;
    for (offset, insn) in &insns {
        lifter.stmt_at.insert(*offset, lifter.stmts.len());
        let d = depths.get(offset).copied().unwrap_or(0);
        max_cell_depth = max_cell_depth.max(d + 4);
        lift_insn(&mut lifter, insn, d)?;
        // Guarantee instruction boundaries are visible for branch targets
        // even when an instruction lifts to no statements.
        if lifter.stmt_at[offset] == lifter.stmts.len() {
            lifter.stmts.push(Stmt::Nop);
        }
    }

    // Resolve labels: one label per referenced code offset.
    let mut labels: HashMap<Label, usize> = HashMap::new();
    let mut label_of: HashMap<u32, Label> = HashMap::new();
    let mut next_label = 0u32;
    let mut resolve = |offset: u32,
                       label_of: &mut HashMap<u32, Label>,
                       labels: &mut HashMap<Label, usize>,
                       stmt_at: &HashMap<u32, usize>|
     -> Result<Label, ClassFileError> {
        if let Some(&l) = label_of.get(&offset) {
            return Ok(l);
        }
        let idx = *stmt_at
            .get(&offset)
            .ok_or_else(|| ClassFileError::new(format!("branch to bad offset {offset}")))?;
        let l = Label(next_label);
        next_label += 1;
        label_of.insert(offset, l);
        labels.insert(l, idx);
        Ok(l)
    };
    let stmt_at = lifter.stmt_at.clone();
    for stmt in &mut lifter.stmts {
        match stmt {
            Stmt::If { target, .. } | Stmt::Goto(target) => {
                let offset = target.0;
                *target = resolve(offset, &mut label_of, &mut labels, &stmt_at)?;
            }
            Stmt::Switch { cases, default, .. } => {
                for (_, l) in cases.iter_mut() {
                    *l = resolve(l.0, &mut label_of, &mut labels, &stmt_at)?;
                }
                *default = resolve(default.0, &mut label_of, &mut labels, &stmt_at)?;
            }
            _ => {}
        }
    }

    Ok(Body {
        locals: u32::from(lifter.max_locals) + max_cell_depth + 4,
        stmts: lifter.stmts,
        labels,
    })
}

#[allow(clippy::too_many_lines)]
fn lift_insn(l: &mut Lifter<'_>, insn: &Insn, d: u32) -> Result<(), ClassFileError> {
    use Insn::*;
    // Corrupt bytecode can claim a stack effect deeper than the computed
    // depth at this offset; the `d - k` cell arithmetic below would then
    // underflow. Reject the method instead of panicking (debug) or aliasing
    // real locals (release).
    let (pop, _) = stack_effect(insn, l.cp);
    if d < pop {
        return Err(ClassFileError::new(format!(
            "operand stack underflow: depth {d} < pop {pop}"
        )));
    }
    // NOTE: branch targets are stored as `Label(code_offset)` placeholders
    // and rewritten to real labels afterwards.
    let placeholder = Label;
    match insn {
        Nop | Breakpoint => l.stmts.push(Stmt::Nop),
        ConstNull => {
            let c = l.cell(d);
            l.assign(c, Expr::Use(Operand::Const(Constant::Null)));
        }
        ConstInt(v) => {
            let c = l.cell(d);
            l.assign(c, Expr::Use(Operand::Const(Constant::Int(i64::from(*v)))));
        }
        ConstLong(v) => {
            let c = l.cell(d);
            l.assign(c, Expr::Use(Operand::Const(Constant::Int(*v))));
        }
        ConstFloat(v) => {
            let c = l.cell(d);
            l.assign(c, Expr::Use(Operand::Const(Constant::Float(f64::from(*v)))));
        }
        ConstDouble(v) => {
            let c = l.cell(d);
            l.assign(c, Expr::Use(Operand::Const(Constant::Float(*v))));
        }
        Ldc(index) => {
            let c = l.cell(d);
            let constant = match l.cp.get(*index)? {
                CpInfo::Integer(v) => Constant::Int(i64::from(*v)),
                CpInfo::Long(v) => Constant::Int(*v),
                CpInfo::Float(v) => Constant::Float(f64::from(*v)),
                CpInfo::Double(v) => Constant::Float(*v),
                CpInfo::Str(utf8) => {
                    let s = l.cp.utf8(*utf8)?.to_owned();
                    Constant::Str(l.interner.intern(&s))
                }
                CpInfo::Class(utf8) => {
                    let s = l.cp.utf8(*utf8)?.replace('/', ".");
                    Constant::Class(l.interner.intern(&s))
                }
                other => {
                    return Err(ClassFileError::new(format!("ldc of {other:?}")));
                }
            };
            l.assign(c, Expr::Use(Operand::Const(constant)));
        }
        Load(_, idx) => {
            let c = l.cell(d);
            l.copy_cell(c, Local(u32::from(*idx)));
        }
        Store(_, idx) => {
            let c = l.cell(d - 1);
            l.copy_cell(Local(u32::from(*idx)), c);
        }
        ArrayLoad(_) => {
            let base = l.cell(d - 2);
            let idx = l.cell(d - 1);
            l.assign(
                base,
                Expr::Load(Place::ArrayElem {
                    base,
                    index: Operand::Local(idx),
                }),
            );
        }
        ArrayStore(_) => {
            let base = l.cell(d - 3);
            let idx = l.cell(d - 2);
            let val = l.cell(d - 1);
            l.stmts.push(Stmt::Assign {
                place: Place::ArrayElem {
                    base,
                    index: Operand::Local(idx),
                },
                rhs: Expr::Use(Operand::Local(val)),
            });
        }
        Pop => l.stmts.push(Stmt::Nop),
        Pop2 => l.stmts.push(Stmt::Nop),
        Dup => {
            let top = l.cell(d - 1);
            let c = l.cell(d);
            l.copy_cell(c, top);
        }
        DupX1 => {
            // [a b] -> [b a b]: save a, rewrite the three cells bottom-up.
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            let t = l.cell(d + 1);
            l.copy_cell(t, a);
            l.copy_cell(a, b);
            l.copy_cell(b, t);
            l.copy_cell(l.cell(d), a);
        }
        DupX2 | Dup2X1 | Dup2X2 => {
            // Rare forms: approximate by duplicating the top cell upward.
            let top = l.cell(d - 1);
            let c = l.cell(d);
            l.copy_cell(c, top);
        }
        Dup2 => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            l.copy_cell(l.cell(d), a);
            l.copy_cell(l.cell(d + 1), b);
        }
        Swap => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            let t = l.cell(d);
            l.copy_cell(t, a);
            l.copy_cell(a, b);
            l.copy_cell(b, t);
        }
        Arith(op, _) => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            l.assign(
                a,
                Expr::Binary {
                    op: binop_of(*op),
                    lhs: Operand::Local(a),
                    rhs: Operand::Local(b),
                },
            );
        }
        Neg(_) => {
            let a = l.cell(d - 1);
            l.assign(
                a,
                Expr::Unary {
                    op: UnOp::Neg,
                    value: Operand::Local(a),
                },
            );
        }
        Iinc(idx, delta) => {
            let local = Local(u32::from(*idx));
            l.assign(
                local,
                Expr::Binary {
                    op: BinOp::Add,
                    lhs: Operand::Local(local),
                    rhs: Operand::Const(Constant::Int(i64::from(*delta))),
                },
            );
        }
        Convert(_) => {
            // Width/precision changes do not affect controllability.
            l.stmts.push(Stmt::Nop);
        }
        Cmp => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            l.assign(
                a,
                Expr::Binary {
                    op: BinOp::Cmp,
                    lhs: Operand::Local(a),
                    rhs: Operand::Local(b),
                },
            );
        }
        IfZero(c, t) => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::If {
                cond: Condition {
                    op: cond_of(*c),
                    lhs: Operand::Local(v),
                    rhs: Operand::Const(Constant::Int(0)),
                },
                target: placeholder(*t),
            });
        }
        IfICmp(c, t) => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            l.stmts.push(Stmt::If {
                cond: Condition {
                    op: cond_of(*c),
                    lhs: Operand::Local(a),
                    rhs: Operand::Local(b),
                },
                target: placeholder(*t),
            });
        }
        IfACmp(c, t) => {
            let a = l.cell(d - 2);
            let b = l.cell(d - 1);
            l.stmts.push(Stmt::If {
                cond: Condition {
                    op: cond_of(*c),
                    lhs: Operand::Local(a),
                    rhs: Operand::Local(b),
                },
                target: placeholder(*t),
            });
        }
        IfNull(t) => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::If {
                cond: Condition {
                    op: CmpOp::Eq,
                    lhs: Operand::Local(v),
                    rhs: Operand::Const(Constant::Null),
                },
                target: placeholder(*t),
            });
        }
        IfNonNull(t) => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::If {
                cond: Condition {
                    op: CmpOp::Ne,
                    lhs: Operand::Local(v),
                    rhs: Operand::Const(Constant::Null),
                },
                target: placeholder(*t),
            });
        }
        Goto(t) | Jsr(t) => l.stmts.push(Stmt::Goto(placeholder(*t))),
        Ret(idx) => l.stmts.push(Stmt::Ret(Local(u32::from(*idx)))),
        TableSwitch {
            default,
            low,
            offsets,
        } => {
            let key = l.cell(d - 1);
            let cases = offsets
                .iter()
                .enumerate()
                .map(|(i, t)| (i64::from(*low) + i as i64, placeholder(*t)))
                .collect();
            l.stmts.push(Stmt::Switch {
                key: Operand::Local(key),
                cases,
                default: placeholder(*default),
            });
        }
        LookupSwitch { default, pairs } => {
            let key = l.cell(d - 1);
            let cases = pairs
                .iter()
                .map(|(k, t)| (i64::from(*k), placeholder(*t)))
                .collect();
            l.stmts.push(Stmt::Switch {
                key: Operand::Local(key),
                cases,
                default: placeholder(*default),
            });
        }
        Return(Some(_)) => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::Return(Some(Operand::Local(v))));
        }
        Return(None) => l.stmts.push(Stmt::Return(None)),
        GetStatic(i) => {
            let field = l.field(*i)?;
            let c = l.cell(d);
            l.assign(c, Expr::Load(Place::StaticField(field)));
        }
        PutStatic(i) => {
            let field = l.field(*i)?;
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::Assign {
                place: Place::StaticField(field),
                rhs: Expr::Use(Operand::Local(v)),
            });
        }
        GetField(i) => {
            let field = l.field(*i)?;
            let base = l.cell(d - 1);
            l.assign(base, Expr::Load(Place::InstanceField { base, field }));
        }
        PutField(i) => {
            let field = l.field(*i)?;
            let base = l.cell(d - 2);
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::Assign {
                place: Place::InstanceField { base, field },
                rhs: Expr::Use(Operand::Local(v)),
            });
        }
        InvokeVirtual(i) | InvokeSpecial(i) | InvokeInterface(i) | InvokeStatic(i)
        | InvokeDynamic(i) => {
            let has_receiver = matches!(
                insn,
                InvokeVirtual(_) | InvokeSpecial(_) | InvokeInterface(_)
            );
            let (callee, argc, kind) = match insn {
                InvokeDynamic(_) => {
                    // Resolve name/descriptor through the NameAndType; the
                    // callee class is a synthetic dynamic marker.
                    let (bootstrap_nat, name, desc) = match l.cp.get(*i)? {
                        CpInfo::InvokeDynamic(_, nat) => {
                            let (n, dsc) = l.cp.name_and_type(*nat)?;
                            (*nat, n.to_owned(), dsc.to_owned())
                        }
                        other => {
                            return Err(ClassFileError::new(format!("invokedynamic of {other:?}")))
                        }
                    };
                    let _ = bootstrap_nat;
                    let (params, ret) = parse_method_descriptor(l.interner, &desc)
                        .map_err(|e| ClassFileError::new(e.to_string()))?;
                    let argc = params.len();
                    (
                        MethodRef {
                            class: l.interner.intern("java.lang.invoke.CallSite"),
                            name: l.interner.intern(&name),
                            params,
                            ret,
                        },
                        argc,
                        InvokeKind::Dynamic,
                    )
                }
                _ => {
                    let (callee, argc) = l.member(*i)?;
                    // The compiler encodes Dynamic calls as static calls to
                    // a marker owner; map them back.
                    let kind = if l
                        .interner
                        .resolve(callee.class)
                        .starts_with("tabby.runtime.Indy$")
                    {
                        InvokeKind::Dynamic
                    } else {
                        match insn {
                            InvokeVirtual(_) => InvokeKind::Virtual,
                            InvokeSpecial(_) => InvokeKind::Special,
                            InvokeInterface(_) => InvokeKind::Interface,
                            _ => InvokeKind::Static,
                        }
                    };
                    (callee, argc, kind)
                }
            };
            let total_popped = argc as u32 + u32::from(has_receiver);
            let base_cell = d - total_popped;
            let base = if has_receiver {
                Some(Operand::Local(l.cell(base_cell)))
            } else {
                None
            };
            let args: Vec<Operand> = (0..argc)
                .map(|k| Operand::Local(l.cell(base_cell + u32::from(has_receiver) + k as u32)))
                .collect();
            let ret_void = callee.ret == JType::Void;
            let inv = InvokeExpr {
                kind,
                base,
                callee,
                args,
            };
            if ret_void {
                l.stmts.push(Stmt::Invoke(inv));
            } else {
                let dst = l.cell(base_cell);
                l.assign(dst, Expr::Invoke(inv));
            }
        }
        New(i) => {
            let ty = l.class_type(*i)?;
            let c = l.cell(d);
            match ty {
                JType::Object(sym) => l.assign(c, Expr::New(sym)),
                other => l.assign(
                    c,
                    Expr::NewArray {
                        elem: other,
                        len: Operand::Const(Constant::Int(0)),
                    },
                ),
            }
        }
        NewArray(_) => {
            let len = l.cell(d - 1);
            l.assign(
                len,
                Expr::NewArray {
                    elem: JType::Int,
                    len: Operand::Local(len),
                },
            );
        }
        ANewArray(i) => {
            let ty = l.class_type(*i)?;
            let len = l.cell(d - 1);
            l.assign(
                len,
                Expr::NewArray {
                    elem: ty,
                    len: Operand::Local(len),
                },
            );
        }
        ArrayLength => {
            let v = l.cell(d - 1);
            l.assign(v, Expr::ArrayLength(Operand::Local(v)));
        }
        AThrow => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::Throw(Operand::Local(v)));
        }
        CheckCast(i) => {
            let ty = l.class_type(*i)?;
            let v = l.cell(d - 1);
            l.assign(
                v,
                Expr::Cast {
                    ty,
                    value: Operand::Local(v),
                },
            );
        }
        InstanceOf(i) => {
            let ty = l.class_type(*i)?;
            let v = l.cell(d - 1);
            l.assign(
                v,
                Expr::InstanceOf {
                    ty,
                    value: Operand::Local(v),
                },
            );
        }
        MonitorEnter => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::EnterMonitor(Operand::Local(v)));
        }
        MonitorExit => {
            let v = l.cell(d - 1);
            l.stmts.push(Stmt::ExitMonitor(Operand::Local(v)));
        }
        MultiANewArray(i, dims) => {
            let ty = l.class_type(*i)?;
            let dst = l.cell(d - u32::from(*dims));
            l.assign(
                dst,
                Expr::NewArray {
                    elem: ty,
                    len: Operand::Const(Constant::Int(0)),
                },
            );
        }
    }
    Ok(())
}
