//! The program model: classes, fields, methods, and bodies.

use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::stmt::{Label, Stmt};
use crate::symbol::{Interner, Symbol};
use crate::types::JType;
use std::collections::HashMap;

/// Index of a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identity of a method within a [`Program`]: its class plus its index in
/// the class's method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    /// Owning class.
    pub class: ClassId,
    /// Index within [`Class::methods`].
    pub index: u32,
}

/// A field declaration.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: Symbol,
    /// Declared type.
    pub ty: JType,
    /// Access flags.
    pub flags: FieldFlags,
}

/// A method body: a flat statement list plus label resolution.
#[derive(Debug, Clone, Default)]
pub struct Body {
    /// Number of local slots used ([`crate::Local`] indices are `< locals`).
    pub locals: u32,
    /// The statements, in textual order.
    pub stmts: Vec<Stmt>,
    /// Label → statement-index resolution.
    pub labels: HashMap<Label, usize>,
}

impl Body {
    /// Resolves a branch label to its statement index.
    ///
    /// # Panics
    ///
    /// Panics if the label was never placed; bodies produced by
    /// [`crate::builder::MethodBuilder`] are checked at build time.
    pub fn target(&self, label: Label) -> usize {
        *self
            .labels
            .get(&label)
            .unwrap_or_else(|| panic!("unresolved label {label:?}"))
    }
}

/// A method declaration, possibly with a body.
#[derive(Debug, Clone)]
pub struct Method {
    /// Method name.
    pub name: Symbol,
    /// Parameter types (excluding the receiver).
    pub params: Vec<JType>,
    /// Return type.
    pub ret: JType,
    /// Access flags.
    pub flags: MethodFlags,
    /// Body; `None` for `abstract` and `native` methods.
    pub body: Option<Body>,
}

impl Method {
    /// Whether this method has no receiver.
    pub fn is_static(&self) -> bool {
        self.flags.is_static()
    }

    /// Number of *value* parameters including the receiver slot, i.e. the
    /// length of a Polluted_Position vector for calls to this method.
    pub fn arity_with_receiver(&self) -> usize {
        self.params.len() + 1
    }
}

/// A class or interface declaration.
#[derive(Debug, Clone)]
pub struct Class {
    /// Dotted binary name (`java.util.HashMap`).
    pub name: Symbol,
    /// Superclass; `None` only for `java.lang.Object` and interfaces modeled
    /// without an explicit superclass.
    pub superclass: Option<Symbol>,
    /// Directly implemented interfaces.
    pub interfaces: Vec<Symbol>,
    /// Declared fields.
    pub fields: Vec<Field>,
    /// Declared methods.
    pub methods: Vec<Method>,
    /// Access flags.
    pub flags: ClassFlags,
}

impl Class {
    /// Finds a declared method by name and parameter count.
    ///
    /// The paper matches alias candidates by "the same method name, return
    /// value, and number of method parameters" (§III-B2); declared-method
    /// lookup uses the same key.
    pub fn find_method(&self, name: Symbol, param_count: usize) -> Option<u32> {
        self.methods
            .iter()
            .position(|m| m.name == name && m.params.len() == param_count)
            .map(|i| i as u32)
    }

    /// Finds a declared field by name.
    pub fn find_field(&self, name: Symbol) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A whole-program view: all classes loaded for analysis, plus the interner
/// that owns their names.
///
/// # Examples
///
/// ```
/// use tabby_ir::ProgramBuilder;
///
/// let mut pb = ProgramBuilder::new();
/// pb.class("java.lang.Object").finish();
/// let program = pb.build();
/// assert_eq!(program.classes().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) interner: Interner,
    pub(crate) classes: Vec<Class>,
    pub(crate) index: HashMap<Symbol, ClassId>,
}

impl Program {
    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// The class with the given id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.class(id.class).methods[id.index as usize]
    }

    /// Looks up a class by its interned name.
    pub fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.index.get(&name).copied()
    }

    /// Looks up a class by its string name.
    pub fn class_by_str(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name(sym)
    }

    /// The interner that owns all names in this program.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolves an interned name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Iterates over every method id in the program, in class order.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.classes.iter().enumerate().flat_map(|(ci, c)| {
            (0..c.methods.len() as u32).map(move |mi| MethodId {
                class: ClassId(ci as u32),
                index: mi,
            })
        })
    }

    /// Total number of methods across all classes.
    pub fn method_count(&self) -> usize {
        self.classes.iter().map(|c| c.methods.len()).sum()
    }

    /// A human-readable method signature, `Class.name(n args)` style.
    pub fn describe_method(&self, id: MethodId) -> String {
        let class = self.class(id.class);
        let method = self.method(id);
        format!(
            "{}.{}({})",
            self.name(class.name),
            self.name(method.name),
            method
                .params
                .iter()
                .map(|p| p.display(&self.interner).to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn program_lookup() {
        let mut pb = ProgramBuilder::new();
        pb.class("a.A").finish();
        pb.class("b.B").finish();
        let p = pb.build();
        let a = p.class_by_str("a.A").unwrap();
        assert_eq!(p.name(p.class(a).name), "a.A");
        assert!(p.class_by_str("c.C").is_none());
    }

    #[test]
    fn method_ids_cover_all_methods() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("a.A");
        cb.method("m1", vec![], JType::Void).abstract_().finish();
        cb.method("m2", vec![], JType::Void).abstract_().finish();
        cb.finish();
        let p = pb.build();
        assert_eq!(p.method_ids().count(), 2);
        assert_eq!(p.method_count(), 2);
    }

    #[test]
    fn find_method_by_name_and_arity() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("a.A");
        cb.method("m", vec![], JType::Void).abstract_().finish();
        cb.method("m", vec![JType::Int], JType::Void)
            .abstract_()
            .finish();
        cb.finish();
        let p = pb.build();
        let a = p.class_by_str("a.A").unwrap();
        let name = p.interner().get("m").unwrap();
        assert_eq!(p.class(a).find_method(name, 0), Some(0));
        assert_eq!(p.class(a).find_method(name, 1), Some(1));
        assert_eq!(p.class(a).find_method(name, 2), None);
    }
}
