//! The snapshot data model: one scan of one corpus version, reduced to the
//! symbolic facts a later diff needs.
//!
//! A snapshot never stores the CPG itself — it stores a *content-addressed
//! reference* to it (the same FNV key the service cache uses) plus the
//! search-relevant projection: method signatures, CALL/ALIAS/EXTEND/
//! INTERFACE edges with their Polluted_Position payloads, annotated sinks
//! and sources, the canonical chain set, per-method summary digests, and
//! the scan's [`ScanDiagnostics`]. Node ids are deliberately absent —
//! they are not stable across builds — so everything is keyed by
//! `Class.method` signature, the same identity
//! [`tabby_pathfinder::canonical_chain_order`] dedups chains by.
//!
//! Snapshots of degraded scans are refused at construction
//! ([`Snapshot::build`]): a diff against a partial chain set would report
//! phantom activations, so the registry follows the service cache's
//! "never cache faulty results" rule.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use tabby_core::{Cpg, CpgSchema, ScanDiagnostics};
use tabby_graph::{content_hash64, Fnv64, Graph, NodeId, Value};
use tabby_pathfinder::{
    canonical_chain_order, GadgetChain, SinkCatalog, SourceCatalog, TriggerCondition,
};

/// On-disk snapshot format version.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// The CPG edge families a snapshot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub enum EdgeKind {
    /// PCG `CALL` edge (carries a Polluted_Position payload).
    Call,
    /// MAG `ALIAS` edge.
    Alias,
    /// ORG `EXTEND` edge.
    Extend,
    /// ORG `INTERFACE` edge.
    Interface,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EdgeKind::Call => "CALL",
            EdgeKind::Alias => "ALIAS",
            EdgeKind::Extend => "EXTEND",
            EdgeKind::Interface => "INTERFACE",
        })
    }
}

/// One CPG edge, identified symbolically (signatures, not node ids) so it
/// compares across independently built graphs of different corpus versions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub struct SymbolicEdge {
    /// Edge family.
    pub kind: EdgeKind,
    /// Source endpoint (`Class.method` for CALL/ALIAS, class name for
    /// EXTEND/INTERFACE).
    pub from: String,
    /// Target endpoint.
    pub to: String,
    /// The Polluted_Position payload (CALL edges; empty otherwise). Part
    /// of the edge identity: a PP change is a *changed* edge.
    pub payload: Vec<i64>,
}

impl std::fmt::Display for SymbolicEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} -> {}", self.kind, self.from, self.to)?;
        if !self.payload.is_empty() {
            write!(f, " PP{:?}", self.payload)?;
        }
        Ok(())
    }
}

/// An annotated sink method, by signature.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SinkEntry {
    /// `Class.method`.
    pub method: String,
    /// The sink's Trigger_Condition positions.
    pub trigger_condition: Vec<u16>,
    /// Exploit-effect category (Table VII).
    pub category: String,
}

/// One versioned scan snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// On-disk format version ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Corpus name (the part before `@` in `corpus@v1`).
    pub corpus: String,
    /// Version number (the `1` in `corpus@v1`).
    pub version: u32,
    /// Content-addressed CPG reference: FNV-1a over the sorted
    /// `(file, content hash)` pairs — the same key the service's CPG cache
    /// files use, so a daemon can locate the cached CPG for a snapshot.
    pub content_key: String,
    /// Per-input content hashes (input name → FNV-1a of its bytes).
    pub class_hashes: BTreeMap<String, u64>,
    /// Search depth the chain set was computed at.
    pub depth: usize,
    /// Every method signature in the CPG, sorted.
    pub methods: Vec<String>,
    /// Every CALL/ALIAS/EXTEND/INTERFACE edge, sorted.
    pub edges: Vec<SymbolicEdge>,
    /// Annotated sinks, sorted by method signature.
    pub sinks: Vec<SinkEntry>,
    /// Annotated source signatures, sorted.
    pub sources: Vec<String>,
    /// The canonical chain set of the scan.
    pub chains: Vec<GadgetChain>,
    /// Per-method summary digest: FNV-1a over the method's outgoing
    /// CALL/ALIAS edges (targets + payloads) — two versions disagree on a
    /// method exactly when its observable summary changed.
    pub summary_digests: BTreeMap<String, u64>,
    /// Diagnostics of the scan that produced this snapshot (always clean:
    /// degraded scans are refused).
    pub diagnostics: ScanDiagnostics,
}

fn describe(graph: &Graph, schema: &CpgSchema, n: NodeId) -> String {
    let name = graph
        .node_prop(n, schema.name)
        .and_then(Value::as_str)
        .unwrap_or("?");
    match graph
        .node_prop(n, schema.class_name)
        .and_then(Value::as_str)
    {
        Some(class) => format!("{class}.{name}"),
        None => name.to_owned(),
    }
}

/// The content-addressed corpus key: FNV-1a over the sorted
/// `(name, content hash)` pairs.
pub fn corpus_content_key(class_hashes: &BTreeMap<String, u64>) -> String {
    let mut h = Fnv64::new();
    for (name, hash) in class_hashes {
        h.write(name.as_bytes()).write_u64(*hash);
    }
    format!("{:016x}", h.finish())
}

/// Hashes raw input blobs into the `class_hashes` map [`Snapshot::build`]
/// expects (name → FNV-1a of bytes).
pub fn hash_inputs<'a>(
    inputs: impl IntoIterator<Item = (&'a str, &'a [u8])>,
) -> BTreeMap<String, u64> {
    inputs
        .into_iter()
        .map(|(name, bytes)| (name.to_owned(), content_hash64(bytes)))
        .collect()
}

impl Snapshot {
    /// The `corpus@vN` reference of this snapshot.
    pub fn reference(&self) -> String {
        format!("{}@v{}", self.corpus, self.version)
    }

    /// Why a scan with these diagnostics cannot be snapshotted, if it
    /// cannot: truncated searches and quarantined/skipped inputs make the
    /// chain set a lower bound, and diffing lower bounds fabricates
    /// activations. `None` means the scan is clean.
    pub fn reject_reason(diagnostics: &ScanDiagnostics) -> Option<String> {
        if diagnostics.is_degraded() {
            Some(format!(
                "refusing to snapshot a degraded scan ({}): a partial chain set \
                 would make every later diff report phantom activations",
                diagnostics.summary()
            ))
        } else {
            None
        }
    }

    /// Builds a snapshot from a completed scan.
    ///
    /// `sinks` and `sources` are the annotated node sets the search ran
    /// over (`(node, trigger condition, category)` / node), `chains` its
    /// canonical result, and `class_hashes` the per-input content hashes
    /// (see [`hash_inputs`]).
    ///
    /// # Errors
    ///
    /// Returns the [`Snapshot::reject_reason`] message when `diagnostics`
    /// records a degraded scan.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        corpus: &str,
        version: u32,
        graph: &Graph,
        schema: &CpgSchema,
        sinks: &[(NodeId, Vec<u16>, String)],
        sources: &[NodeId],
        chains: &[GadgetChain],
        diagnostics: &ScanDiagnostics,
        class_hashes: BTreeMap<String, u64>,
        depth: usize,
    ) -> Result<Snapshot, String> {
        if let Some(reason) = Snapshot::reject_reason(diagnostics) {
            return Err(reason);
        }
        let mut methods: BTreeSet<String> = BTreeSet::new();
        for n in graph.nodes_with_label(schema.method_label) {
            methods.insert(describe(graph, schema, n));
        }
        let mut edges: BTreeSet<SymbolicEdge> = BTreeSet::new();
        // Outgoing CALL/ALIAS facts per method, for the summary digests.
        let mut outgoing: HashMap<String, Vec<(EdgeKind, String, Vec<i64>)>> = HashMap::new();
        for e in graph.edge_ids() {
            let ty = graph.edge_ty(e);
            let kind = if ty == schema.call {
                EdgeKind::Call
            } else if ty == schema.alias {
                EdgeKind::Alias
            } else if ty == schema.extend {
                EdgeKind::Extend
            } else if ty == schema.interface {
                EdgeKind::Interface
            } else {
                continue; // HAS containment is derivable from `methods`.
            };
            let (from, to) = graph.endpoints(e);
            let payload: Vec<i64> = if kind == EdgeKind::Call {
                graph
                    .edge_prop(e, schema.polluted_position)
                    .and_then(Value::as_int_list)
                    .unwrap_or(&[])
                    .to_vec()
            } else {
                Vec::new()
            };
            let from_sig = describe(graph, schema, from);
            let to_sig = describe(graph, schema, to);
            if matches!(kind, EdgeKind::Call | EdgeKind::Alias) {
                outgoing.entry(from_sig.clone()).or_default().push((
                    kind,
                    to_sig.clone(),
                    payload.clone(),
                ));
            }
            edges.insert(SymbolicEdge {
                kind,
                from: from_sig,
                to: to_sig,
                payload,
            });
        }
        let summary_digests: BTreeMap<String, u64> = methods
            .iter()
            .map(|m| {
                let mut facts = outgoing.remove(m).unwrap_or_default();
                facts.sort();
                let mut h = Fnv64::new();
                for (kind, to, payload) in &facts {
                    h.write(kind.to_string().as_bytes()).write(to.as_bytes());
                    for &w in payload {
                        h.write_u64(w as u64);
                    }
                    h.write_u64(payload.len() as u64);
                }
                (m.clone(), h.finish())
            })
            .collect();
        let mut sink_entries: Vec<SinkEntry> = sinks
            .iter()
            .map(|(n, tc, category)| SinkEntry {
                method: describe(graph, schema, *n),
                trigger_condition: tc.clone(),
                category: category.clone(),
            })
            .collect();
        sink_entries.sort();
        sink_entries.dedup();
        let mut source_sigs: Vec<String> = sources
            .iter()
            .map(|n| describe(graph, schema, *n))
            .collect();
        source_sigs.sort();
        source_sigs.dedup();
        let mut chains = chains.to_vec();
        canonical_chain_order(&mut chains);
        Ok(Snapshot {
            format: SNAPSHOT_FORMAT,
            corpus: corpus.to_owned(),
            version,
            content_key: corpus_content_key(&class_hashes),
            class_hashes,
            depth,
            methods: methods.into_iter().collect(),
            edges: edges.into_iter().collect(),
            sinks: sink_entries,
            sources: source_sigs,
            chains,
            summary_digests,
            diagnostics: diagnostics.clone(),
        })
    }

    /// Builds a snapshot from a completed scan's CPG by re-annotating the
    /// sink/source catalogs (annotation is idempotent, so this is safe on a
    /// CPG the search already ran over). Convenience wrapper around
    /// [`Snapshot::build`] with the same degraded-scan rejection.
    ///
    /// # Errors
    ///
    /// Returns the [`Snapshot::reject_reason`] message when `diagnostics`
    /// records a degraded scan.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cpg(
        corpus: &str,
        version: u32,
        cpg: &mut Cpg,
        sink_catalog: &SinkCatalog,
        source_catalog: &SourceCatalog,
        chains: &[GadgetChain],
        diagnostics: &ScanDiagnostics,
        class_hashes: BTreeMap<String, u64>,
        depth: usize,
    ) -> Result<Snapshot, String> {
        let sink_nodes = sink_catalog.annotate(cpg);
        let sinks: Vec<(NodeId, Vec<u16>, String)> = sink_nodes
            .iter()
            .map(|(n, spec)| {
                (
                    *n,
                    spec.trigger_condition.clone(),
                    spec.category.as_str().to_owned(),
                )
            })
            .collect();
        let sources: Vec<NodeId> = source_catalog.annotate(cpg).into_iter().collect();
        Snapshot::build(
            corpus,
            version,
            &cpg.graph,
            &cpg.schema,
            &sinks,
            &sources,
            chains,
            diagnostics,
            class_hashes,
            depth,
        )
    }

    /// Rebuilds the searchable projection of the snapshot: a graph with one
    /// method node per signature and the CALL/ALIAS edges (Polluted_Position
    /// restored), plus the annotated sink/source node sets — enough for the
    /// pathfinder's near-chain relaxation to run without re-scanning the
    /// corpus. EXTEND/INTERFACE edges are not materialized (the backward
    /// search never crosses them).
    #[allow(clippy::type_complexity)]
    pub fn rebuild_search_graph(
        &self,
    ) -> (
        Graph,
        CpgSchema,
        Vec<(NodeId, TriggerCondition)>,
        Vec<(NodeId, String)>,
        HashSet<NodeId>,
    ) {
        let mut graph = Graph::new();
        let schema = CpgSchema::install(&mut graph);
        let mut by_sig: HashMap<&str, NodeId> = HashMap::new();
        let intern = |graph: &mut Graph, sig: &str| {
            // Split `Class.method` at the last dot; bare names (EXTEND
            // endpoints never land here) keep the whole string as name.
            let node = graph.add_node(schema.method_label);
            let (class, name) = match sig.rfind('.') {
                Some(i) => (&sig[..i], &sig[i + 1..]),
                None => ("", sig),
            };
            graph.set_node_prop(node, schema.class_name, Value::from(class));
            graph.set_node_prop(node, schema.name, Value::from(name));
            node
        };
        for sig in &self.methods {
            let node = intern(&mut graph, sig);
            by_sig.insert(sig.as_str(), node);
        }
        // Edges referencing endpoints absent from `methods` are skipped
        // defensively (`methods` covers phantoms at build time).
        for edge in &self.edges {
            let layer = match edge.kind {
                EdgeKind::Call => schema.call,
                EdgeKind::Alias => schema.alias,
                EdgeKind::Extend | EdgeKind::Interface => continue,
            };
            let (from, to) = match (
                by_sig.get(edge.from.as_str()).copied(),
                by_sig.get(edge.to.as_str()).copied(),
            ) {
                (Some(f), Some(t)) => (f, t),
                _ => continue,
            };
            let e = graph.add_edge(layer, from, to);
            if edge.kind == EdgeKind::Call {
                graph.set_edge_prop(
                    e,
                    schema.polluted_position,
                    Value::IntList(edge.payload.clone()),
                );
            }
        }
        let sinks: Vec<(NodeId, TriggerCondition)> = self
            .sinks
            .iter()
            .filter_map(|s| {
                by_sig
                    .get(s.method.as_str())
                    .map(|n| (*n, s.trigger_condition.iter().copied().collect()))
            })
            .collect();
        let categories: Vec<(NodeId, String)> = self
            .sinks
            .iter()
            .filter_map(|s| {
                by_sig
                    .get(s.method.as_str())
                    .map(|n| (*n, s.category.clone()))
            })
            .collect();
        let sources: HashSet<NodeId> = self
            .sources
            .iter()
            .filter_map(|s| by_sig.get(s.as_str()).copied())
            .collect();
        (graph, schema, sinks, categories, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::QuarantinedMethod;

    fn tiny_graph() -> (Graph, CpgSchema, Vec<NodeId>) {
        let mut g = Graph::new();
        let schema = CpgSchema::install(&mut g);
        let mk = |g: &mut Graph, class: &str, name: &str| {
            let n = g.add_node(schema.method_label);
            g.set_node_prop(n, schema.name, Value::from(name));
            g.set_node_prop(n, schema.class_name, Value::from(class));
            n
        };
        let sink = mk(&mut g, "java.lang.Runtime", "exec");
        let mid = mk(&mut g, "t.Helper", "run");
        let src = mk(&mut g, "t.Pivot", "readObject");
        let e = g.add_edge(schema.call, mid, sink);
        g.set_edge_prop(e, schema.polluted_position, Value::IntList(vec![-1, 1]));
        let e = g.add_edge(schema.call, src, mid);
        g.set_edge_prop(e, schema.polluted_position, Value::IntList(vec![0, 1]));
        (g, schema, vec![sink, mid, src])
    }

    fn build(diagnostics: &ScanDiagnostics) -> Result<Snapshot, String> {
        let (g, schema, nodes) = tiny_graph();
        Snapshot::build(
            "demo",
            1,
            &g,
            &schema,
            &[(nodes[0], vec![1], "EXEC".to_owned())],
            &[nodes[2]],
            &[],
            diagnostics,
            BTreeMap::from([("A.class".to_owned(), 7u64)]),
            12,
        )
    }

    #[test]
    fn clean_scan_snapshots_with_sorted_projection() {
        let snap = build(&ScanDiagnostics::default()).expect("clean scan snapshots");
        assert_eq!(snap.reference(), "demo@v1");
        assert_eq!(snap.methods.len(), 3);
        assert!(snap.methods.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(snap.edges.len(), 2);
        assert_eq!(snap.sinks[0].method, "java.lang.Runtime.exec");
        assert_eq!(snap.sources, vec!["t.Pivot.readObject".to_owned()]);
        assert_eq!(snap.summary_digests.len(), 3);
        // Methods with no outgoing edges share the empty digest; methods
        // with different callees do not.
        assert_ne!(
            snap.summary_digests["t.Helper.run"],
            snap.summary_digests["t.Pivot.readObject"]
        );
    }

    #[test]
    fn degraded_scan_is_refused() {
        let mut diagnostics = ScanDiagnostics::default();
        diagnostics.quarantined_methods.push(QuarantinedMethod {
            method: "t.Bad.m".to_owned(),
            error: "panic".to_owned(),
        });
        let err = build(&diagnostics).expect_err("degraded scan must be refused");
        assert!(
            err.contains("refusing to snapshot a degraded scan"),
            "{err}"
        );
        assert!(err.contains("degraded"), "{err}");
    }

    #[test]
    fn truncated_search_is_refused() {
        let diagnostics = ScanDiagnostics {
            search_truncated: true,
            ..ScanDiagnostics::default()
        };
        let err = build(&diagnostics).expect_err("truncated search must be refused");
        assert!(err.contains("refusing to snapshot"), "{err}");
    }

    #[test]
    fn rebuild_round_trips_the_search_projection() {
        let snap = build(&ScanDiagnostics::default()).expect("snapshot");
        let (graph, schema, sinks, categories, sources) = snap.rebuild_search_graph();
        assert_eq!(graph.node_count(), 3);
        assert_eq!(sinks.len(), 1);
        assert_eq!(categories[0].1, "EXEC");
        assert_eq!(sources.len(), 1);
        // The chain search over the rebuilt projection finds the chain the
        // original graph contains.
        let chains = tabby_pathfinder::find_chains_raw(
            &graph,
            &schema,
            sinks,
            categories,
            &sources,
            &tabby_pathfinder::SearchConfig::default(),
        );
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].source(), "t.Pivot.readObject");
        assert_eq!(chains[0].sink(), "java.lang.Runtime.exec");
    }

    #[test]
    fn content_key_is_order_independent_and_content_sensitive() {
        let a = BTreeMap::from([("a".to_owned(), 1u64), ("b".to_owned(), 2u64)]);
        let b = BTreeMap::from([("b".to_owned(), 2u64), ("a".to_owned(), 1u64)]);
        assert_eq!(corpus_content_key(&a), corpus_content_key(&b));
        let c = BTreeMap::from([("a".to_owned(), 1u64), ("b".to_owned(), 3u64)]);
        assert_ne!(corpus_content_key(&a), corpus_content_key(&c));
    }
}
